//! Per-cohort kernel profiling: everything the solver needs that can
//! be measured *exactly*, from two fault-free executions.
//!
//! 1. An [`ExecutionTape`] of the precise path gives the compute cycle
//!    count, per-step PCs (for task-region attribution) and the skim
//!    arm point.
//! 2. One [`run_intermittent`] under a continuous 1 W trace — four
//!    orders of magnitude above the ~6 mW execution drain, so the
//!    device never browns out — gives the substrate's own fault-free
//!    counters: checkpoints, commits, overhead cycles, and the
//!    committed output's error.
//!
//! Nothing in this module estimates; the expectations live in the
//! solver.

use wn_core::intermittent::{run_intermittent, SubstrateKind};
use wn_core::{PreparedRun, WnError};
use wn_energy::{PowerTrace, SupplyConfig};
use wn_sim::{ExecutionTape, TapeKind};

/// Step budget for the profiling tape; generous multiple of the
/// largest fleet-scale kernel.
const MAX_PROFILE_STEPS: u64 = 200_000_000;

/// Skim-point facts read off the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkimProfile {
    /// Compute cycles retired when the first `SKM` completes (the
    /// earliest point a post-outage restore can take the skim jump).
    pub arm_compute_cycles: u64,
    /// The skim target PC.
    pub target: u32,
}

/// Exact fault-free measurements for one (prepared kernel, substrate,
/// supply) triple.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Compute cycles of the precise path (tape total; no substrate
    /// overhead).
    pub compute_cycles: u64,
    /// Instructions retired on the precise path.
    pub instructions: u64,
    /// Substrate overhead cycles under continuous power.
    pub overhead_ff: u64,
    /// Total executed cycles under continuous power
    /// (`compute + overhead`, as the simulator counts them).
    pub executed_ff: u64,
    /// Checkpoints taken under continuous power.
    pub checkpoints_ff: u64,
    /// Commits under continuous power.
    pub commits_ff: u64,
    /// Output NRMSE (%) of the fault-free committed output.
    pub error_percent_ff: f64,
    /// Task substrates: compute cycles of each dynamic region entry.
    pub region_entry_cycles: Vec<u64>,
    /// First skim arm, if the kernel plants one.
    pub skim: Option<SkimProfile>,
}

/// A wrapping constant-power trace (the `power_at` lookup wraps by
/// trace length, so one second of samples covers any run).
fn continuous_trace(power_w: f32) -> PowerTrace {
    PowerTrace::from_samples(vec![power_w; 1000])
}

/// Profiles `prepared` for the solver. Runs the precise path twice
/// (once on a tape, once under the substrate with continuous power);
/// both runs are deterministic.
pub fn profile_kernel(
    prepared: &PreparedRun,
    substrate: SubstrateKind,
    supply: &SupplyConfig,
) -> Result<KernelProfile, WnError> {
    let mut core = prepared.fresh_core()?;
    let tape = ExecutionTape::record(&mut core, MAX_PROFILE_STEPS)?.ok_or(WnError::Sim(
        wn_sim::SimError::CycleLimit {
            limit: MAX_PROFILE_STEPS,
        },
    ))?;

    let outcome = run_intermittent(prepared, substrate, &continuous_trace(1.0), *supply, 1e9)?;
    debug_assert_eq!(outcome.outages, 0, "continuous power must not brown out");

    let compute_cycles = tape.total_cycles();
    let overhead_ff = outcome.substrate.overhead_cycles;
    let region_entry_cycles = if matches!(substrate, SubstrateKind::Task(_)) {
        region_entries(prepared, &tape)
    } else {
        Vec::new()
    };
    let skim = (0..tape.len())
        .find(|&i| tape.kind(i) == TapeKind::Skim)
        .map(|i| SkimProfile {
            arm_compute_cycles: tape.span_cycles(0, i + 1),
            target: tape.skim(i),
        });

    Ok(KernelProfile {
        compute_cycles,
        instructions: tape.len() as u64,
        overhead_ff,
        executed_ff: outcome.active_cycles,
        checkpoints_ff: outcome.substrate.checkpoints,
        commits_ff: outcome.substrate.commits,
        error_percent_ff: outcome.error_percent,
        region_entry_cycles,
        skim,
    })
}

/// Splits the tape's compute cycles into dynamic task-region entries:
/// each maximal run of consecutive steps whose PCs fall in the same
/// [`TaskSpan`](wn_compiler::TaskSpan) is one entry. Matches the task
/// substrate's own region attribution (`partition_point` over span
/// starts).
fn region_entries(prepared: &PreparedRun, tape: &ExecutionTape) -> Vec<u64> {
    let spans = &prepared.compiled.tasks;
    if spans.is_empty() {
        return vec![tape.total_cycles()];
    }
    let region_of = |pc: u32| -> usize {
        spans
            .partition_point(|r| r.start_pc <= pc)
            .saturating_sub(1)
    };
    let mut entries = Vec::new();
    let mut cur = region_of(tape.pc(0));
    let mut acc = 0u64;
    for i in 0..tape.len() {
        let region = region_of(tape.pc(i));
        if region != cur {
            entries.push(acc);
            acc = 0;
            cur = region;
        }
        acc += tape.cost(i);
    }
    if acc > 0 {
        entries.push(acc);
    }
    entries
}

/// Deterministic skim-path replay: executes the precise path until
/// `jump_at_compute_cycles` cycles have retired (the expected progress
/// when the decisive outage hits), takes the armed skim jump, and runs
/// the commit tail to `HALT`. Returns the tail's compute cycles and
/// the committed approximate output's error. `None` when the skim
/// point was not yet armed at the jump position (the run would simply
/// resume refinement — callers fall back to the precise model).
pub fn skim_replay(
    prepared: &PreparedRun,
    jump_at_compute_cycles: u64,
) -> Result<Option<(u64, f64)>, WnError> {
    let mut core = prepared.fresh_core()?;
    let mut cycles = 0u64;
    let mut steps = 0u64;
    while cycles < jump_at_compute_cycles && !core.is_halted() {
        let info = core.step().map_err(WnError::Sim)?;
        cycles += info.cycles;
        steps += 1;
        if steps > MAX_PROFILE_STEPS {
            return Err(WnError::Sim(wn_sim::SimError::CycleLimit {
                limit: MAX_PROFILE_STEPS,
            }));
        }
    }
    let Some(target) = core.cpu.skm else {
        return Ok(None);
    };
    if core.is_halted() {
        return Ok(None);
    }
    core.cpu.pc = target;
    core.cpu.skm = None;
    let tail = core.run(u64::MAX).map_err(WnError::Sim)?.cycles;
    let error = prepared
        .error_percent_checked(&core)?
        .unwrap_or(f64::INFINITY);
    Ok(Some((tail, error)))
}
