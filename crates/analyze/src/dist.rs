//! Distribution helpers for the analytic predictor: a dependency-free
//! standard-normal CDF / inverse CDF pair, and the deterministic phase
//! quadrature that replaces them for the solar-diurnal family (whose
//! per-device variability is a seeded phase offset, not a renewal
//! process).

use std::f64::consts::PI;

/// Standard normal CDF via the Abramowitz & Stegun 7.1.26 erf
/// approximation (|error| < 1.5e-7 — far inside the predictor's
/// tolerance bands).
pub fn norm_cdf(x: f64) -> f64 {
    let z = x / std::f64::consts::SQRT_2;
    0.5 * (1.0 + erf(z))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9). `p` outside `(0, 1)` is clamped to the
/// nearest representable quantile.
// The coefficient tables are Acklam's published constants, kept
// verbatim (the lint would trim a trailing zero).
#[allow(clippy::excessive_precision)]
pub fn inv_norm_cdf(p: f64) -> f64 {
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Cumulative harvested energy (joules) of the solar half-sinusoid
/// from day-start to `t ∈ [0, day_s)`: daylight occupies the first
/// half-day with `p(t) = peak·sin(2πt/D)`, night is dark.
fn solar_cumulative_j(peak_w: f64, day_s: f64, t: f64) -> f64 {
    let half = day_s / 2.0;
    let t = t.clamp(0.0, day_s);
    if t >= half {
        peak_w * day_s / PI
    } else {
        peak_w * day_s / (2.0 * PI) * (1.0 - (2.0 * PI * t / day_s).cos())
    }
}

/// Time (seconds) from a start offset `phase ∈ [0, day_s)` until
/// `need_j` joules have been harvested from the solar half-sinusoid.
pub fn solar_time_to_harvest(peak_w: f64, day_s: f64, phase: f64, need_j: f64) -> f64 {
    if need_j <= 0.0 {
        return 0.0;
    }
    let e_day = peak_w * day_s / PI;
    if e_day <= 0.0 {
        return f64::INFINITY;
    }
    let already = solar_cumulative_j(peak_w, day_s, phase);
    let total = already + need_j;
    let mut full_days = (total / e_day).floor();
    let mut rem = total - full_days * e_day;
    // Exact multiples of a day's energy complete at dusk of the last
    // day, not a full night later.
    if rem <= 0.0 && full_days > 0.0 {
        full_days -= 1.0;
        rem = e_day;
    }
    // Invert the within-day cumulative for the remainder.
    let frac = (1.0 - 2.0 * PI * rem / (peak_w * day_s)).clamp(-1.0, 1.0);
    let t_in_day = if rem >= e_day {
        day_s / 2.0
    } else {
        day_s / (2.0 * PI) * frac.acos()
    };
    full_days * day_s + t_in_day - phase
}

/// Deterministic completion-time quadrature for solar cohorts: `k`
/// evenly spaced start phases (matching the uniformly seeded per-device
/// phase), each solved exactly for `need_j`, returned sorted. Flicker
/// (±20 % multiplicative, mean 1) averages out over whole days and is
/// absorbed by the tolerance band.
pub fn solar_completion_times(peak_w: f64, day_s: f64, need_j: f64, k: usize) -> Vec<f64> {
    let mut times: Vec<f64> = (0..k)
        .map(|i| {
            let phase = (i as f64 + 0.5) / k as f64 * day_s;
            solar_time_to_harvest(peak_w, day_s, phase, need_j)
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times
}

/// Linear-interpolated quantile of a sorted slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_cdf_and_inverse_round_trip() {
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let x = inv_norm_cdf(p);
            assert!((norm_cdf(x) - p).abs() < 1e-6, "p={p}: x={x}");
        }
        assert!((inv_norm_cdf(0.5)).abs() < 1e-9);
        assert!((inv_norm_cdf(0.9) - 1.2816).abs() < 1e-3);
    }

    #[test]
    fn solar_harvest_inversion_matches_cumulative() {
        let (peak, day) = (250e-6, 10.0);
        let e_day = peak * day / PI;
        // Exactly one day of harvest starting at dawn.
        let t = solar_time_to_harvest(peak, day, 0.0, e_day);
        assert!(
            (t - day / 2.0).abs() < 1e-9,
            "one day's energy arrives by dusk: {t}"
        );
        // Starting at dusk, the night must pass first.
        let t = solar_time_to_harvest(peak, day, day / 2.0, e_day * 0.5);
        assert!(t > day / 2.0, "night first: {t}");
        // Tiny need from dawn: strictly positive, less than half a day.
        let t = solar_time_to_harvest(peak, day, 0.0, e_day * 1e-3);
        assert!(t > 0.0 && t < day / 2.0);
    }

    #[test]
    fn solar_quadrature_is_sorted_and_day_bounded() {
        let times = solar_completion_times(250e-6, 10.0, 250e-6 * 10.0 / PI * 2.5, 64);
        assert_eq!(times.len(), 64);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // 2.5 days of energy: everyone finishes within 4 days.
        assert!(*times.last().unwrap() <= 40.0);
        assert!(
            times[0] >= 20.0,
            "no phase finishes before 2 full days: {}",
            times[0]
        );
    }
}
