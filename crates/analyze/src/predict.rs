//! The analytic solver: per-cohort completion-time distributions,
//! expected substrate counter movements, and completion probability —
//! without simulating a single outage.
//!
//! The model (assumptions and exactness boundaries in DESIGN.md §13):
//!
//! * **Per-period budget.** One power cycle drains the capacitor from
//!   `v_on` to `v_off`, delivering `B = E_use / (ε − h_on/f)` executed
//!   cycles, where `E_use = ½C(v_on² − v_off²)`, `ε` is the per-cycle
//!   execution energy and `h_on` the expected harvest while executing.
//! * **Outage recurrence.** Each outage costs the substrate's expected
//!   dead cycles (discarded work + restore + re-taken persistence), so
//!   `n = ⌈(W − B) / (B − dead)⌉` outages complete a workload of `W`
//!   fault-free executed cycles.
//! * **Energy conservation.** Every harvested joule is absorbed (the
//!   capacitor idles below `v_on`, and drain far exceeds harvest while
//!   on), so completion time is the time the environment needs to
//!   deliver the total drained energy, less the stored-energy credit:
//!   `T ≈ (ε·executed − ΔE_stored) / P̄`.
//! * **Spread.** RF/piezo completion-time spread follows the
//!   renewal-reward CLT (`HarvestStats::harvest_variance_rate`);
//!   solar-diurnal spread is the deterministic seeded phase offset,
//!   handled by exact quadrature over the phase.
//! * **Skim.** An armed skim point turns the first post-arm restore
//!   into a jump: the device runs to the decisive outage, then executes
//!   the commit tail. The tail and its output error are measured by a
//!   deterministic replay, not estimated.

use wn_core::intermittent::SubstrateKind;
use wn_core::{telemetry, PreparedRun, WnError};
use wn_energy::{EnvModel, HarvestStats, SupplyConfig};
use wn_intermittent::{FaultFreeProfile, ProgressModel};

use crate::dist::{inv_norm_cdf, quantile_sorted, solar_completion_times};
use crate::profile::{profile_kernel, skim_replay, KernelProfile};

/// The fleet's starvation guard: a device waiting longer than this for
/// `v_on` is declared starved. Mirrors `wn_energy::supply`.
const STARVATION_LIMIT_S: f64 = 3600.0;

/// Phase-quadrature resolution for solar cohorts.
const SOLAR_PHASES: usize = 256;

/// One cohort's prediction request.
pub struct CohortQuery<'a> {
    /// The prepared kernel — same artifact the fleet executes.
    pub prepared: &'a PreparedRun,
    pub substrate: SubstrateKind,
    pub supply: SupplyConfig,
    pub env: EnvModel,
    /// Devices in the cohort (sets the quantile grid).
    pub devices: u64,
    /// Per-device wall-clock limit, seconds.
    pub wall_limit_s: f64,
}

/// Predictor output for one cohort: either a prediction, or an honest
/// refusal with the reason.
#[derive(Debug, Clone, PartialEq)]
pub enum CohortPrediction {
    /// The model cannot handle this cohort; it must be *reported* as
    /// unsupported, never silently skipped.
    Unsupported {
        reason: String,
    },
    Predicted(Box<Prediction>),
}

/// Analytic prediction for one cohort.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    pub devices: u64,
    /// Predicted device fates (sum to `devices`).
    pub completed: u64,
    pub skimmed: u64,
    pub starved: u64,
    pub timed_out: u64,
    /// `completed / devices`.
    pub completion_probability: f64,
    /// Completion times of the predicted-completed devices, sorted —
    /// the quantile grid `(i + 0.5) / devices` pushed through the
    /// family's time distribution. Feed these to a sketch to compare
    /// with the fleet's.
    pub times_s: Vec<f64>,
    /// Mean over `times_s` (conditional on completion, like the
    /// fleet's `StreamStats` mean).
    pub mean_time_s: f64,
    /// Model spread (normal σ for RF/piezo; sample σ of the phase
    /// quadrature for solar).
    pub sigma_time_s: f64,
    /// Powered-on execution time per device, seconds.
    pub on_time_s: f64,
    /// Expected outages per completed device.
    pub outages: f64,
    /// Expected checkpoints per completed device.
    pub checkpoints: f64,
    /// Expected commits per completed device.
    pub commits: f64,
    /// Expected re-executed (discarded) cycles per device.
    pub reexecuted_cycles: f64,
    /// Total executed cycles per device (compute + overhead + redo).
    pub executed_cycles: f64,
    /// `(lost + overhead) / executed` — complement of the fleet's
    /// forward-progress ratio.
    pub dead_cycle_fraction: f64,
    /// `1 − dead_cycle_fraction`.
    pub forward_progress: f64,
    /// Predicted output NRMSE (%): the fault-free error, or the
    /// skim-replay error when completion happens via skim.
    pub error_percent: f64,
    /// Whether completion goes through the skim jump.
    pub via_skim: bool,
    /// The exact fault-free measurements the solver consumed.
    pub profile: KernelProfile,
}

/// Predicts one cohort. Profiling cost: two fault-free runs of the
/// kernel; everything else is closed-form.
pub fn predict(q: &CohortQuery) -> Result<CohortPrediction, WnError> {
    if q.prepared.core_config.memo.is_some() {
        return Ok(CohortPrediction::Unsupported {
            reason: "memoization-enabled core: memo hit rates make block costs \
                     data-dependent, outside the static cost model"
                .into(),
        });
    }
    if telemetry::is_enabled() {
        return Ok(CohortPrediction::Unsupported {
            reason: "global telemetry collector enabled: the analytic model predicts \
                     aggregates, not event streams"
                .into(),
        });
    }

    let profile = profile_kernel(q.prepared, q.substrate, &q.supply)?;
    let pm = progress_model(&q.substrate, &profile);
    Ok(CohortPrediction::Predicted(Box::new(solve(
        q, profile, pm,
    )?)))
}

fn progress_model(substrate: &SubstrateKind, p: &KernelProfile) -> ProgressModel {
    let ff = FaultFreeProfile {
        active_cycles: p.compute_cycles,
        instructions: p.instructions,
        overhead_cycles: p.overhead_ff,
        checkpoints: p.checkpoints_ff,
        commits: p.commits_ff,
        region_entry_cycles: p.region_entry_cycles.clone(),
    };
    match substrate {
        SubstrateKind::Clank(c) => ProgressModel::clank(c, &ff),
        SubstrateKind::Nvp(c) => ProgressModel::nvp(c, &ff),
        SubstrateKind::Task(c) => ProgressModel::task(c, &ff),
    }
}

/// Everything after profiling: pure arithmetic.
fn solve(
    q: &CohortQuery,
    profile: KernelProfile,
    pm: ProgressModel,
) -> Result<Prediction, WnError> {
    let sup = &q.supply;
    let clk = sup.clock_hz;
    let eps_j = sup.pj_per_cycle * 1e-12;
    let e_use = 0.5 * sup.capacitance_f * (sup.v_on * sup.v_on - sup.v_off * sup.v_off);
    let p_bar = q.env.stationary_mean_power_w();
    let h_on = q.env.active_power_w();
    // Executed cycles one full charge affords (harvest-while-on credit
    // included; infinite when harvest sustains the drain).
    let net_drain_j = eps_j - h_on / clk;
    let b = if net_drain_j > 0.0 {
        e_use / net_drain_j
    } else {
        f64::INFINITY
    };
    // Cold-boot charge time (scenarios default to start-charged).
    let t0 = if sup.start_charged || p_bar <= 0.0 {
        0.0
    } else {
        0.5 * sup.capacitance_f * sup.v_on * sup.v_on / p_bar
    };

    let w_ff = profile.executed_ff as f64;
    let overhead_ratio = w_ff / profile.compute_cycles.max(1) as f64;

    // ---- fault-free-on-first-charge fast path -------------------------
    if w_ff <= b {
        let t = t0 + w_ff / clk;
        return Ok(fill(
            q, &profile, &pm, /* n */ 0.0, w_ff, t, 0.0, /* skim */ None, b,
        ));
    }

    // ---- starvation / infeasibility gates ----------------------------
    if p_bar <= 0.0 || e_use / p_bar > STARVATION_LIMIT_S {
        // Recharging one period exceeds the supply's starvation guard.
        return Ok(all_fate(q, &profile, Fate::Starved));
    }
    let net = b - pm.dead_cycles_per_outage();

    // ---- skim path ----------------------------------------------------
    // An armed skim point converts the first post-arm restore into the
    // commit tail; the run no longer needs the full workload.
    if let Some(skim) = profile.skim {
        let s1_exec = skim.arm_compute_cycles as f64 * overhead_ratio;
        let k = if s1_exec <= b {
            Some(1.0)
        } else if net > 0.0 && pm.feasible(b) {
            Some(1.0 + ((s1_exec - b) / net).ceil())
        } else {
            None // arm unreachable: fall through to the precise gates
        };
        if let Some(k) = k {
            // Useful progress when the decisive outage lands, deflated
            // back to compute cycles for the replay.
            let u_exec = b + (k - 1.0) * net;
            let u_compute = ((u_exec / overhead_ratio) as u64)
                .clamp(skim.arm_compute_cycles, profile.compute_cycles);
            if let Some((tail_compute, tail_error)) = skim_replay(q.prepared, u_compute)? {
                let w_tail = pm.restore_cycles as f64 + tail_compute as f64 * overhead_ratio;
                let m = if w_tail <= b {
                    0.0
                } else if net > 0.0 {
                    ((w_tail - b) / net).ceil()
                } else {
                    return Ok(all_fate(q, &profile, Fate::TimedOut));
                };
                let n = k + m;
                let executed = k * b + w_tail + m * pm.dead_cycles_per_outage();
                let t_mean = completion_mean(executed, eps_j, e_use, p_bar, clk, t0);
                let frac = (u_compute + tail_compute) as f64 / profile.compute_cycles.max(1) as f64;
                return Ok(fill(
                    q,
                    &profile,
                    &pm,
                    n,
                    executed,
                    t_mean,
                    frac,
                    Some(tail_error),
                    b,
                ));
            }
        }
    }

    // ---- precise path -------------------------------------------------
    if !pm.feasible(b) {
        // The substrate can never advance past some atomic unit on one
        // charge: the simulator spins until the wall clock.
        return Ok(all_fate(q, &profile, Fate::TimedOut));
    }
    let n = ((w_ff - b) / net).ceil().max(1.0);
    let executed = w_ff + n * pm.dead_cycles_per_outage();
    let t_mean = completion_mean(executed, eps_j, e_use, p_bar, clk, t0);
    Ok(fill(q, &profile, &pm, n, executed, t_mean, 1.0, None, b))
}

/// Energy-conservation completion time: the environment must deliver
/// the drained energy minus the stored credit (start charged at
/// `v_on`, end mid-discharge in expectation).
fn completion_mean(executed: f64, eps_j: f64, e_use: f64, p_bar: f64, clk: f64, t0: f64) -> f64 {
    let on_time = executed / clk;
    let h_req = executed * eps_j - e_use / 2.0;
    t0 + (h_req / p_bar).max(on_time)
}

enum Fate {
    Starved,
    TimedOut,
}

/// Uniform-fate prediction (all devices starved or timed out).
fn all_fate(q: &CohortQuery, profile: &KernelProfile, fate: Fate) -> Prediction {
    let (starved, timed_out) = match fate {
        Fate::Starved => (q.devices, 0),
        Fate::TimedOut => (0, q.devices),
    };
    Prediction {
        devices: q.devices,
        completed: 0,
        skimmed: 0,
        starved,
        timed_out,
        completion_probability: 0.0,
        times_s: Vec::new(),
        mean_time_s: f64::NAN,
        sigma_time_s: f64::NAN,
        on_time_s: 0.0,
        outages: 0.0,
        checkpoints: 0.0,
        commits: 0.0,
        reexecuted_cycles: 0.0,
        executed_cycles: 0.0,
        dead_cycle_fraction: 1.0,
        forward_progress: 0.0,
        error_percent: f64::NAN,
        via_skim: false,
        profile: profile.clone(),
    }
}

/// Builds the full prediction once outage count, executed cycles and
/// the mean completion time are settled. `useful_fraction` scales the
/// fault-free checkpoint/commit counters for skim runs that execute
/// only part of the program; `skim_error` switches the error source.
#[allow(clippy::too_many_arguments)]
fn fill(
    q: &CohortQuery,
    profile: &KernelProfile,
    pm: &ProgressModel,
    n: f64,
    executed: f64,
    t_mean: f64,
    useful_fraction: f64,
    skim_error: Option<f64>,
    _b: f64,
) -> Prediction {
    let clk = q.supply.clock_hz;
    let on_time = executed / clk;
    let via_skim = skim_error.is_some();
    let frac = if via_skim { useful_fraction } else { 1.0 };

    // Counter expectations.
    let checkpoints = profile.checkpoints_ff as f64 * frac + n * pm.checkpoints_per_outage;
    let commits = profile.commits_ff as f64 * frac + n * pm.commits_per_outage;
    let lost = n * pm.loss_per_outage_cycles;
    let overhead = profile.overhead_ff as f64 * frac
        + n * (pm.restore_cycles as f64 + pm.extra_overhead_per_outage_cycles);
    let dead_fraction = if executed > 0.0 {
        ((lost + overhead) / executed).clamp(0.0, 1.0)
    } else {
        0.0
    };

    // Per-device completion times over the quantile grid.
    let (times, sigma) = completion_grid(q, t_mean, on_time, executed);
    let completed = times.iter().filter(|&&t| t <= q.wall_limit_s).count() as u64;
    let times_s: Vec<f64> = times
        .iter()
        .copied()
        .filter(|&t| t <= q.wall_limit_s)
        .collect();
    let mean_time_s = if times_s.is_empty() {
        f64::NAN
    } else {
        times_s.iter().sum::<f64>() / times_s.len() as f64
    };

    Prediction {
        devices: q.devices,
        completed,
        skimmed: if via_skim && n >= 1.0 { completed } else { 0 },
        starved: 0,
        timed_out: q.devices - completed,
        completion_probability: completed as f64 / q.devices.max(1) as f64,
        times_s,
        mean_time_s,
        sigma_time_s: sigma,
        on_time_s: on_time,
        outages: n,
        checkpoints,
        commits,
        reexecuted_cycles: lost,
        executed_cycles: executed,
        dead_cycle_fraction: dead_fraction,
        forward_progress: 1.0 - dead_fraction,
        error_percent: skim_error.unwrap_or(profile.error_percent_ff),
        via_skim,
        profile: profile.clone(),
    }
}

/// Per-device completion times on the `(i + 0.5) / devices` quantile
/// grid, plus the model's spread.
fn completion_grid(q: &CohortQuery, t_mean: f64, on_time: f64, executed: f64) -> (Vec<f64>, f64) {
    let devices = q.devices.max(1) as usize;
    match q.env {
        EnvModel::SolarDiurnal {
            peak_power_w,
            day_s,
        } => {
            let eps_j = q.supply.pj_per_cycle * 1e-12;
            let e_use = 0.5
                * q.supply.capacitance_f
                * (q.supply.v_on * q.supply.v_on - q.supply.v_off * q.supply.v_off);
            let h_req = (executed * eps_j - e_use / 2.0).max(0.0);
            if h_req == 0.0 {
                return (vec![t_mean; devices], 0.0);
            }
            let phases = solar_completion_times(peak_power_w, day_s, h_req, SOLAR_PHASES);
            let times: Vec<f64> = (0..devices)
                .map(|i| {
                    let s = quantile_sorted(&phases, (i as f64 + 0.5) / devices as f64);
                    s.max(on_time)
                })
                .collect();
            let mean = times.iter().sum::<f64>() / devices as f64;
            let var = times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / devices as f64;
            (times, var.sqrt())
        }
        _ => {
            // Renewal CLT: harvested energy by time t is ≈ N(P̄t, v·t),
            // so T is ≈ normal with σ = sqrt(v·T̄)/P̄.
            let p_bar = q.env.stationary_mean_power_w();
            let vr = q.env.harvest_variance_rate();
            let sigma = if p_bar > 0.0 && t_mean.is_finite() {
                (vr * t_mean).sqrt() / p_bar
            } else {
                0.0
            };
            let times: Vec<f64> = (0..devices)
                .map(|i| {
                    let z = inv_norm_cdf((i as f64 + 0.5) / devices as f64);
                    (t_mean + z * sigma).max(on_time)
                })
                .collect();
            (times, sigma)
        }
    }
}
