//! # wn-analyze — analytic completion-time/energy prediction
//!
//! ROADMAP item 5: predicts what the fleet simulates. Given the same
//! prepared kernel, substrate, supply, and [`EnvModel`] a fleet cohort
//! uses, this crate computes — without simulating outages — the
//! cohort's completion-time distribution, expected checkpoint / commit
//! / re-execution counts, dead-cycle fraction, and completion
//! probability under a wall-clock limit (ETAP-style, Erata et al.).
//!
//! The pipeline has two halves:
//!
//! * **Exact profiling** ([`profile`]): one [`ExecutionTape`] of the
//!   precise path and one continuous-power intermittent run give the
//!   compute cycle count, block structure, task-region entry lengths,
//!   skim arm point, and the substrate's fault-free counters. Nothing
//!   here is estimated.
//! * **Closed-form solving** ([`predict`]): per-period energy budgets,
//!   the substrate's expected per-outage dead cycles
//!   ([`wn_intermittent::ProgressModel`]), energy-conservation
//!   completion time, and the harvester family's spread
//!   ([`wn_energy::HarvestStats`]) — renewal CLT for RF/piezo, exact
//!   phase quadrature for solar.
//!
//! Cohorts the model cannot handle (memoization-enabled cores,
//! telemetry-traced runs) come back as
//! [`CohortPrediction::Unsupported`] with the reason — never silently
//! skipped. The fleet's `predict` path (wn-fleet) turns these
//! predictions into a `wn-analyze-report-v1` report shaped like the
//! fleet's own, and `experiments predict --validate` cross-checks the
//! two.
//!
//! [`ExecutionTape`]: wn_sim::ExecutionTape
//! [`EnvModel`]: wn_energy::EnvModel

pub mod dist;
pub mod predict;
pub mod profile;

pub use predict::{predict, CohortPrediction, CohortQuery, Prediction};
pub use profile::{profile_kernel, skim_replay, KernelProfile, SkimProfile};
