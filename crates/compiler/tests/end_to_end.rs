//! End-to-end compiler tests: compile kernels at every technique, execute
//! them on the cycle-accurate simulator, and check outputs against host
//! reference computations — including the paper's exactness guarantee
//! that running all subword stages reproduces the precise result.

use wn_compiler::ir::{ArrayBuilder, Expr, KernelIr, Stmt};
use wn_compiler::{compile, CompiledKernel, Technique};
use wn_sim::{Core, CoreConfig};

/// Runs a compiled kernel with the given inputs to completion, returning
/// decoded outputs (one vec per output array) and the cycle count.
fn run(compiled: &CompiledKernel, inputs: &[(&str, Vec<i64>)]) -> (Vec<(String, Vec<i64>)>, u64) {
    let mut core = Core::new(&compiled.program, CoreConfig::default()).expect("core");
    for (name, values) in inputs {
        let (addr, bytes) = compiled.encode_input(name, values);
        core.mem.write_slice(addr, &bytes).expect("input injection");
    }
    core.run(200_000_000).expect("run to completion");
    let outputs = compiled
        .outputs
        .iter()
        .map(|name| {
            let layout = compiled.layout(name);
            let bytes = core
                .mem
                .slice(compiled.addr(name), layout.byte_size())
                .expect("output");
            (name.clone(), layout.decode(bytes))
        })
        .collect();
    (outputs, core.stats.cycles)
}

fn listing1_kernel(n: u32) -> KernelIr {
    // Listing 1: X[i] += A[i] * F[i].
    KernelIr::new("listing1")
        .array(ArrayBuilder::input("A", n).elem16().asp_input())
        .array(ArrayBuilder::input("F", n).elem16())
        .array(ArrayBuilder::output("X", n).asp_output())
        .body(vec![Stmt::for_loop(
            "i",
            0,
            n as i32,
            vec![Stmt::accum_store(
                "X",
                Expr::var("i"),
                Expr::load("F", Expr::var("i")) * Expr::load("A", Expr::var("i")),
            )],
        )])
}

fn matadd_kernel(n: u32) -> KernelIr {
    KernelIr::new("matadd")
        .array(ArrayBuilder::input("A", n).elem32().asv_input())
        .array(ArrayBuilder::input("B", n).elem32().asv_input())
        .array(ArrayBuilder::output("X", n).elem32().asv_output())
        .body(vec![Stmt::for_loop(
            "i",
            0,
            n as i32,
            vec![Stmt::store(
                "X",
                Expr::var("i"),
                Expr::load("A", Expr::var("i")) + Expr::load("B", Expr::var("i")),
            )],
        )])
}

fn reduce_kernel(windows: u32, k: u32) -> KernelIr {
    KernelIr::new("reduce")
        .array(ArrayBuilder::input("S", windows * k).elem16().asv_input())
        .array(ArrayBuilder::output("OUT", windows).asv_output())
        .body(vec![Stmt::for_loop(
            "w",
            0,
            windows as i32,
            vec![Stmt::for_loop(
                "i",
                0,
                k as i32,
                vec![Stmt::accum_store(
                    "OUT",
                    Expr::var("w"),
                    Expr::load("S", Expr::var("w") * Expr::c(k as i32) + Expr::var("i")),
                )],
            )],
        )])
}

fn inputs_16(n: u32, seed: u64) -> Vec<i64> {
    (0..n as i64)
        .map(|i| ((i * 2654435761u32 as i64 + seed as i64 * 7919) >> 3) & 0xFFFF)
        .collect()
}

#[test]
fn precise_listing1_matches_reference() {
    let n = 16;
    let k = listing1_kernel(n);
    let a = inputs_16(n, 1);
    let f: Vec<i64> = (0..n as i64).map(|i| (i * 37 + 11) & 0x7FFF).collect();
    let compiled = compile(&k, Technique::Precise).unwrap();
    let (outputs, _) = run(&compiled, &[("A", a.clone()), ("F", f.clone())]);
    let expect: Vec<i64> = a.iter().zip(&f).map(|(x, y)| x * y).collect();
    assert_eq!(outputs[0].1, expect);
}

#[test]
fn swp_reaches_precise_result_at_all_granularities() {
    // §III-A: distributivity over addition guarantees the precise result
    // once all subwords are processed.
    let n = 16;
    let k = listing1_kernel(n);
    let a = inputs_16(n, 2);
    let f: Vec<i64> = (0..n as i64).map(|i| (i * 131 + 7) & 0x7FFF).collect();
    let expect: Vec<i64> = a.iter().zip(&f).map(|(x, y)| x * y).collect();
    for bits in [1u8, 2, 3, 4, 8, 16] {
        let compiled = compile(&k, Technique::swp(bits)).unwrap();
        let (outputs, _) = run(&compiled, &[("A", a.clone()), ("F", f.clone())]);
        assert_eq!(
            outputs[0].1, expect,
            "swp({bits}) must be exact at completion"
        );
    }
}

#[test]
fn swp_vectorized_loads_match_and_save_cycles() {
    let n = 32;
    let k = listing1_kernel(n);
    let a = inputs_16(n, 3);
    let f: Vec<i64> = (0..n as i64).map(|i| (i * 57 + 3) & 0x7FFF).collect();
    let expect: Vec<i64> = a.iter().zip(&f).map(|(x, y)| x * y).collect();

    let plain = compile(&k, Technique::swp(8)).unwrap();
    let vectorized = compile(&k, Technique::swp_vectorized(8)).unwrap();
    let (out_p, cycles_p) = run(&plain, &[("A", a.clone()), ("F", f.clone())]);
    let (out_v, cycles_v) = run(&vectorized, &[("A", a.clone()), ("F", f.clone())]);
    assert_eq!(out_p[0].1, expect);
    assert_eq!(out_v[0].1, expect);
    assert!(
        cycles_v < cycles_p,
        "vectorized loads must save cycles: {cycles_v} vs {cycles_p}"
    );
}

#[test]
fn swp_cycle_cost_ordering() {
    // Total runtime to the precise result grows as subwords shrink
    // (§V-A), while the precise baseline is fastest.
    let n = 16;
    let k = listing1_kernel(n);
    let a = inputs_16(n, 4);
    let f = vec![3i64; n as usize];
    let mut cycles = Vec::new();
    for t in [Technique::Precise, Technique::swp(8), Technique::swp(4)] {
        let compiled = compile(&k, t).unwrap();
        let (_, c) = run(&compiled, &[("A", a.clone()), ("F", f.clone())]);
        cycles.push((t, c));
    }
    assert!(
        cycles[0].1 < cycles[1].1,
        "precise faster than swp8 overall: {cycles:?}"
    );
    assert!(
        cycles[1].1 < cycles[2].1,
        "swp8 faster than swp4 overall: {cycles:?}"
    );
}

#[test]
fn swv_map_provisioned_is_exact() {
    let n = 16;
    let k = matadd_kernel(n);
    let a: Vec<i64> = (0..n as i64).map(|i| i * 0x0101_0101 + 0xFF).collect();
    let b: Vec<i64> = (0..n as i64).map(|i| i * 0x0202_0101 + 0x01).collect();
    let expect: Vec<i64> = a
        .iter()
        .zip(&b)
        .map(|(x, y)| ((*x as u32).wrapping_add(*y as u32)) as i64)
        .collect();
    for bits in [4u8, 8, 16] {
        let compiled = compile(&k, Technique::swv(bits)).unwrap();
        let (outputs, _) = run(&compiled, &[("A", a.clone()), ("B", b.clone())]);
        let got: Vec<i64> = outputs[0].1.iter().map(|&v| v as u32 as i64).collect();
        assert_eq!(got, expect, "swv({bits}) provisioned must be exact");
    }
}

#[test]
fn swv_map_unprovisioned_drops_carries() {
    // Fig. 14: without provisioning, carry-out bits between subwords are
    // lost and the final result is NOT precise when carries occur.
    let n = 8;
    let k = matadd_kernel(n);
    let a = vec![0x0000_00FFi64; n as usize];
    let b = vec![0x0000_0001i64; n as usize];
    let compiled = compile(&k, Technique::swv_unprovisioned(8)).unwrap();
    let (outputs, _) = run(&compiled, &[("A", a), ("B", b)]);
    // 0xFF + 0x01 = 0x100; the carry into the second subword is dropped,
    // leaving 0.
    assert!(
        outputs[0].1.iter().all(|&v| v == 0),
        "carries must be dropped: {:?}",
        outputs[0].1
    );
}

#[test]
fn swv_map_subtraction_is_exact_when_provisioned() {
    let n = 8;
    let mut k = matadd_kernel(n);
    // Rebuild with subtraction.
    k.body = vec![Stmt::for_loop(
        "i",
        0,
        n as i32,
        vec![Stmt::store(
            "X",
            Expr::var("i"),
            Expr::load("A", Expr::var("i")) - Expr::load("B", Expr::var("i")),
        )],
    )];
    let a: Vec<i64> = (0..n as i64).map(|i| 1000 * i + 500).collect();
    let b: Vec<i64> = (0..n as i64).map(|i| 900 * i + 600).collect();
    let expect: Vec<i64> = a
        .iter()
        .zip(&b)
        .map(|(x, y)| (*x as u32).wrapping_sub(*y as u32) as i32 as i64)
        .collect();
    let compiled = compile(&k, Technique::swv(8)).unwrap();
    let (outputs, _) = run(&compiled, &[("A", a.clone()), ("B", b.clone())]);
    let got: Vec<i64> = outputs[0].1.iter().map(|&v| v as i32 as i64).collect();
    assert_eq!(got, expect);
}

#[test]
fn swv_reduce_is_exact_when_provisioned() {
    let (w, kk) = (4u32, 16u32);
    let k = reduce_kernel(w, kk);
    let s = inputs_16(w * kk, 5);
    let expect: Vec<i64> = (0..w as usize)
        .map(|wi| {
            s[wi * kk as usize..(wi + 1) * kk as usize]
                .iter()
                .sum::<i64>()
        })
        .collect();
    for bits in [4u8, 8] {
        let compiled = compile(&k, Technique::swv(bits)).unwrap();
        let (outputs, _) = run(&compiled, &[("S", s.clone())]);
        assert_eq!(outputs[0].1, expect, "swv-reduce({bits})");
    }
}

#[test]
fn swv_reduce_msb_first_approximation_improves() {
    // After only the MSB level, the decoded output approximates the sum;
    // additional levels must tighten it monotonically on this data.
    let (w, kk) = (2u32, 8u32);
    let k = reduce_kernel(w, kk);
    let s: Vec<i64> = (0..(w * kk) as i64).map(|i| 0x0101 * (i % 200)).collect();
    let expect: Vec<i64> = (0..w as usize)
        .map(|wi| {
            s[wi * kk as usize..(wi + 1) * kk as usize]
                .iter()
                .sum::<i64>()
        })
        .collect();

    let compiled = compile(&k, Technique::swv(8)).unwrap();
    let mut core = Core::new(&compiled.program, CoreConfig::default()).unwrap();
    let (addr, bytes) = compiled.encode_input("S", &s);
    core.mem.write_slice(addr, &bytes).unwrap();

    let out_layout = compiled.layout("OUT");
    let out_addr = compiled.addr("OUT");
    let mut errs: Vec<f64> = Vec::new();
    let mut skims = 0;
    loop {
        let info = core.step().unwrap();
        if let wn_sim::StepEvent::SkimSet(_) = info.event {
            skims += 1;
            let bytes = core.mem.slice(out_addr, out_layout.byte_size()).unwrap();
            let decoded = out_layout.decode(bytes);
            let err: f64 = decoded
                .iter()
                .zip(&expect)
                .map(|(d, e)| ((d - e).abs() as f64) / (*e as f64))
                .sum::<f64>();
            errs.push(err);
        }
        if core.is_halted() {
            break;
        }
    }
    assert_eq!(skims, 1, "16-bit data / 8-bit subwords → one skim point");
    assert!(errs[0] < 0.05, "MSB-only error should be small: {errs:?}");
}

#[test]
fn skim_register_set_during_swp() {
    let n = 8;
    let k = listing1_kernel(n);
    let compiled = compile(&k, Technique::swp(8)).unwrap();
    let mut core = Core::new(&compiled.program, CoreConfig::default()).unwrap();
    core.run(1_000_000).unwrap();
    let end = compiled.program.code_symbol("__end").unwrap();
    assert_eq!(core.cpu.skm, Some(end));
}

#[test]
fn instruction_mix_has_expected_wn_classes() {
    use wn_sim::InstrClass;
    let n = 16;
    let k = listing1_kernel(n);
    let a = inputs_16(n, 6);
    let f = vec![5i64; n as usize];

    let precise = compile(&k, Technique::Precise).unwrap();
    let mut core = Core::new(&precise.program, CoreConfig::default()).unwrap();
    let (addr, bytes) = precise.encode_input("A", &a);
    core.mem.write_slice(addr, &bytes).unwrap();
    let (addr, bytes) = precise.encode_input("F", &f);
    core.mem.write_slice(addr, &bytes).unwrap();
    core.run(10_000_000).unwrap();
    assert_eq!(core.stats.count(InstrClass::Mul), n as u64);
    assert_eq!(core.stats.count(InstrClass::MulAsp), 0);

    let swp = compile(&k, Technique::swp(8)).unwrap();
    let mut core = Core::new(&swp.program, CoreConfig::default()).unwrap();
    core.run(10_000_000).unwrap();
    assert_eq!(core.stats.count(InstrClass::Mul), 0);
    assert_eq!(core.stats.count(InstrClass::MulAsp), 2 * n as u64);
}
