//! Differential fuzzing: random kernels, compiled through the full
//! pipeline (validation → hoisting → pointer induction → codegen) and
//! executed on the cycle-accurate simulator, must agree exactly with the
//! reference IR interpreter.
//!
//! All arithmetic is 32-bit wrapping on both sides, so the generated
//! expressions can combine loads, constants and loop variables freely.

use proptest::prelude::*;

use wn_compiler::interp::interpret;
use wn_compiler::ir::{ArrayBuilder, BinOp, Expr, KernelIr, Stmt};
use wn_compiler::{compile, Technique};
use wn_sim::{Core, CoreConfig};

const N: u32 = 16;

/// A generated scalar expression over the loop variables in scope.
#[derive(Debug, Clone)]
enum GenExpr {
    Const(i32),
    LoopVar(u8),
    LoadA(Box<GenExpr>),
    LoadB(Box<GenExpr>),
    Bin(u8, Box<GenExpr>, Box<GenExpr>),
    Shift(bool, u8, Box<GenExpr>),
}

impl GenExpr {
    /// Renders into IR, clamping index expressions into bounds with a
    /// mask (arrays have power-of-two length N).
    fn to_expr(&self, vars: &[&str]) -> Expr {
        match self {
            GenExpr::Const(c) => Expr::c(*c),
            GenExpr::LoopVar(i) => Expr::var(vars[*i as usize % vars.len()]),
            GenExpr::LoadA(idx) => Expr::load("A", Self::bounded(idx.to_expr(vars))),
            GenExpr::LoadB(idx) => Expr::load("B", Self::bounded(idx.to_expr(vars))),
            GenExpr::Bin(op, a, b) => {
                let (a, b) = (a.to_expr(vars), b.to_expr(vars));
                let op = match op % 6 {
                    0 => BinOp::Add,
                    1 => BinOp::Sub,
                    2 => BinOp::Mul,
                    3 => BinOp::And,
                    4 => BinOp::Or,
                    _ => BinOp::Xor,
                };
                Expr::Bin {
                    op,
                    a: Box::new(a),
                    b: Box::new(b),
                }
            }
            GenExpr::Shift(left, sh, x) => {
                let x = x.to_expr(vars);
                if *left {
                    x.shl(sh % 5)
                } else {
                    x.shr(sh % 5)
                }
            }
        }
    }

    /// Masks an index into `0..N`.
    fn bounded(e: Expr) -> Expr {
        e.and(Expr::c(N as i32 - 1))
    }
}

fn arb_genexpr(depth: u32) -> BoxedStrategy<GenExpr> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(GenExpr::Const),
        (0u8..2).prop_map(GenExpr::LoopVar),
    ];
    leaf.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|i| GenExpr::LoadA(Box::new(i))),
            inner.clone().prop_map(|i| GenExpr::LoadB(Box::new(i))),
            (any::<u8>(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| GenExpr::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (any::<bool>(), any::<u8>(), inner).prop_map(|(l, sh, x)| GenExpr::Shift(
                l,
                sh,
                Box::new(x)
            )),
        ]
    })
    .boxed()
}

/// Kernel shapes the generator instantiates.
#[derive(Debug, Clone)]
enum Shape {
    /// `for i { X[i] = e(i) }`
    Map(GenExpr),
    /// `for i { X[i] += e(i) }`
    MapAccum(GenExpr),
    /// `for i { for j { X[i*4+j] = e(i, j) } }` (N = 16 = 4×4)
    Nest(GenExpr),
    /// `for i { acc = 0; for j { acc = acc + e(i, j) }; X[i] += acc }`
    Reduce(GenExpr),
}

fn arb_shape() -> BoxedStrategy<Shape> {
    prop_oneof![
        arb_genexpr(2).prop_map(Shape::Map),
        arb_genexpr(2).prop_map(Shape::MapAccum),
        arb_genexpr(2).prop_map(Shape::Nest),
        arb_genexpr(2).prop_map(Shape::Reduce),
    ]
    .boxed()
}

fn build_kernel(shape: &Shape) -> KernelIr {
    let base = KernelIr::new("fuzz")
        .array(ArrayBuilder::input("A", N).elem16())
        .array(ArrayBuilder::input("B", N).elem32())
        .array(ArrayBuilder::output("X", N).elem32());
    let body = match shape {
        Shape::Map(e) => vec![Stmt::for_loop(
            "i",
            0,
            N as i32,
            vec![Stmt::store("X", Expr::var("i"), e.to_expr(&["i"]))],
        )],
        Shape::MapAccum(e) => vec![Stmt::for_loop(
            "i",
            0,
            N as i32,
            vec![Stmt::accum_store("X", Expr::var("i"), e.to_expr(&["i"]))],
        )],
        Shape::Nest(e) => vec![Stmt::for_loop(
            "i",
            0,
            4,
            vec![Stmt::for_loop(
                "j",
                0,
                4,
                vec![Stmt::store(
                    "X",
                    Expr::var("i") * Expr::c(4) + Expr::var("j"),
                    e.to_expr(&["i", "j"]),
                )],
            )],
        )],
        Shape::Reduce(e) => vec![Stmt::for_loop(
            "i",
            0,
            N as i32,
            vec![
                Stmt::assign("acc", Expr::c(0)),
                Stmt::for_loop(
                    "j",
                    0,
                    4,
                    vec![Stmt::assign(
                        "acc",
                        Expr::var("acc") + e.to_expr(&["i", "j"]),
                    )],
                ),
                Stmt::accum_store("X", Expr::var("i"), Expr::var("acc")),
            ],
        )],
    };
    base.body(body)
}

/// A Listing-1-shaped MAC kernel with annotation, for technique fuzzing:
/// X[i] += A[perm(i)] * F[i] over n elements, A subworded.
fn mac_kernel(n: u32, stride: u32, offset: u32) -> KernelIr {
    KernelIr::new("fuzzmac")
        .array(
            ArrayBuilder::input("A", n * stride + offset)
                .elem16()
                .asp_input(),
        )
        .array(ArrayBuilder::input("F", n).elem16())
        .array(ArrayBuilder::output("X", n).asp_output())
        .body(vec![Stmt::for_loop(
            "i",
            0,
            n as i32,
            vec![Stmt::accum_store(
                "X",
                Expr::var("i"),
                Expr::load(
                    "A",
                    Expr::var("i") * Expr::c(stride as i32) + Expr::c(offset as i32),
                ) * Expr::load("F", Expr::var("i")),
            )],
        )])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SWP at arbitrary subword sizes is exact at completion on random
    /// data and strides (the §III-A distributivity guarantee, fuzzed).
    #[test]
    fn swp_matches_interpreter_on_random_mac_kernels(
        bits in 1u8..=16,
        stride in 1u32..4,
        offset in 0u32..3,
        a in proptest::collection::vec(0i64..0x1_0000, 64..=64),
        f in proptest::collection::vec(0i64..0x1_0000, 16..=16),
    ) {
        let n = 16u32;
        let kernel = mac_kernel(n, stride, offset);
        let a = a[..(n * stride + offset) as usize].to_vec();
        let inputs = [("A".to_string(), a), ("F".to_string(), f)];
        let expected = interpret(&kernel, &inputs, &["X"]).unwrap();

        let compiled = compile(&kernel, Technique::swp(bits)).unwrap();
        let mut core = Core::new(&compiled.program, CoreConfig::default()).unwrap();
        for (name, values) in &inputs {
            let (addr, bytes) = compiled.encode_input(name, values);
            core.mem.write_slice(addr, &bytes).unwrap();
        }
        core.run(50_000_000).unwrap();
        let layout = compiled.layout("X");
        let bytes = core.mem.slice(compiled.addr("X"), layout.byte_size()).unwrap();
        prop_assert_eq!(&layout.decode(bytes), &expected[0].1);
    }

    /// Provisioned SWV maps are exact at completion on random 32-bit data
    /// for every legal subword size.
    #[test]
    fn swv_map_matches_wrapping_reference(
        bits in prop_oneof![Just(4u8), Just(8), Just(16)],
        sub in any::<bool>(),
        a in proptest::collection::vec(any::<u32>(), 16..=16),
        b in proptest::collection::vec(any::<u32>(), 16..=16),
    ) {
        let n = 16u32;
        let value = if sub {
            Expr::load("A", Expr::var("i")) - Expr::load("B", Expr::var("i"))
        } else {
            Expr::load("A", Expr::var("i")) + Expr::load("B", Expr::var("i"))
        };
        let kernel = KernelIr::new("fuzzmap")
            .array(ArrayBuilder::input("A", n).elem32().asv_input())
            .array(ArrayBuilder::input("B", n).elem32().asv_input())
            .array(ArrayBuilder::output("X", n).elem32().asv_output())
            .body(vec![Stmt::for_loop(
                "i",
                0,
                n as i32,
                vec![Stmt::store("X", Expr::var("i"), value)],
            )]);
        let expected: Vec<u32> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| if sub { x.wrapping_sub(y) } else { x.wrapping_add(y) })
            .collect();

        let inputs = [
            ("A".to_string(), a.iter().map(|&v| v as i64).collect::<Vec<_>>()),
            ("B".to_string(), b.iter().map(|&v| v as i64).collect::<Vec<_>>()),
        ];
        let compiled = compile(&kernel, Technique::swv(bits)).unwrap();
        let mut core = Core::new(&compiled.program, CoreConfig::default()).unwrap();
        for (name, values) in &inputs {
            let (addr, bytes) = compiled.encode_input(name, values);
            core.mem.write_slice(addr, &bytes).unwrap();
        }
        core.run(50_000_000).unwrap();
        let layout = compiled.layout("X");
        let bytes = core.mem.slice(compiled.addr("X"), layout.byte_size()).unwrap();
        let got: Vec<u32> = layout.decode(bytes).iter().map(|&v| v as u32).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn compiled_execution_matches_interpreter(
        shape in arb_shape(),
        a in proptest::collection::vec(0i64..0x1_0000, N as usize..=N as usize),
        b in proptest::collection::vec(any::<u32>().prop_map(|v| v as i64), N as usize..=N as usize),
    ) {
        let kernel = build_kernel(&shape);
        kernel.validate().unwrap();
        let inputs = [("A".to_string(), a), ("B".to_string(), b)];

        // Oracle: the direct IR interpreter.
        let expected = interpret(&kernel, &inputs, &["X"]).unwrap();

        // Full pipeline: compile precise (hoisting + pointer induction
        // included) and run on the simulator.
        let compiled = compile(&kernel, Technique::Precise).unwrap();
        let mut core = Core::new(&compiled.program, CoreConfig::default()).unwrap();
        for (name, values) in &inputs {
            let (addr, bytes) = compiled.encode_input(name, values);
            core.mem.write_slice(addr, &bytes).unwrap();
        }
        core.run(50_000_000).unwrap();
        let layout = compiled.layout("X");
        let bytes = core.mem.slice(compiled.addr("X"), layout.byte_size()).unwrap();
        let got = layout.decode(bytes);

        prop_assert_eq!(&got, &expected[0].1, "shape: {:?}", shape);
    }
}
