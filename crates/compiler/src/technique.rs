//! Compilation techniques: which anytime transformation to apply.

use std::fmt;

/// The anytime technique a kernel is compiled with.
///
/// The paper evaluates each benchmark precise, with 8-bit and with 4-bit
/// subwords (Fig. 9–11), sweeps 1–4-bit subwords for SWP (Fig. 15),
/// compares provisioned vs unprovisioned SWV addition (Fig. 14), and
/// combines SWP with vectorized loads (Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Conventional precise compilation; pragmas are ignored.
    Precise,
    /// Anytime subword pipelining (§III-A) with the given subword width.
    Swp {
        /// Subword width in bits (1–16).
        bits: u8,
        /// Also transpose the annotated input to subword-major order and
        /// fetch subwords through vectorized loads (§V-E, Fig. 12).
        vectorized_loads: bool,
    },
    /// Anytime subword vectorization (§III-B) with the given subword
    /// width.
    Swv {
        /// Subword width in bits (4, 8 or 16).
        bits: u8,
        /// Provisioned addition: lanes get double width so carry bits are
        /// preserved (§V-E, Fig. 14).
        provisioned: bool,
    },
}

impl Technique {
    /// Subword pipelining with plain subword loads.
    pub const fn swp(bits: u8) -> Technique {
        Technique::Swp {
            bits,
            vectorized_loads: false,
        }
    }

    /// Subword pipelining with vectorized subword loads (Fig. 12).
    pub const fn swp_vectorized(bits: u8) -> Technique {
        Technique::Swp {
            bits,
            vectorized_loads: true,
        }
    }

    /// Provisioned subword vectorization (the paper's default for its
    /// headline results, §V-A).
    pub const fn swv(bits: u8) -> Technique {
        Technique::Swv {
            bits,
            provisioned: true,
        }
    }

    /// Unprovisioned subword vectorization (drops inter-subword carries).
    pub const fn swv_unprovisioned(bits: u8) -> Technique {
        Technique::Swv {
            bits,
            provisioned: false,
        }
    }

    /// The subword width, if the technique is anytime.
    pub fn bits(&self) -> Option<u8> {
        match self {
            Technique::Precise => None,
            Technique::Swp { bits, .. } | Technique::Swv { bits, .. } => Some(*bits),
        }
    }

    /// True for the precise baseline.
    pub fn is_precise(&self) -> bool {
        matches!(self, Technique::Precise)
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Technique::Precise => write!(f, "precise"),
            Technique::Swp {
                bits,
                vectorized_loads: false,
            } => write!(f, "swp{bits}"),
            Technique::Swp {
                bits,
                vectorized_loads: true,
            } => write!(f, "swp{bits}+vld"),
            Technique::Swv {
                bits,
                provisioned: true,
            } => write!(f, "swv{bits}"),
            Technique::Swv {
                bits,
                provisioned: false,
            } => write!(f, "swv{bits}-unprov"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(
            Technique::swp(8),
            Technique::Swp {
                bits: 8,
                vectorized_loads: false
            }
        );
        assert_eq!(
            Technique::swv(4),
            Technique::Swv {
                bits: 4,
                provisioned: true
            }
        );
        assert_eq!(
            Technique::swv_unprovisioned(8),
            Technique::Swv {
                bits: 8,
                provisioned: false
            }
        );
    }

    #[test]
    fn bits_accessor() {
        assert_eq!(Technique::Precise.bits(), None);
        assert_eq!(Technique::swp(4).bits(), Some(4));
        assert_eq!(Technique::swv(8).bits(), Some(8));
        assert!(Technique::Precise.is_precise());
        assert!(!Technique::swp(2).is_precise());
    }

    #[test]
    fn display_labels() {
        assert_eq!(Technique::Precise.to_string(), "precise");
        assert_eq!(Technique::swp(4).to_string(), "swp4");
        assert_eq!(Technique::swp_vectorized(8).to_string(), "swp8+vld");
        assert_eq!(Technique::swv(8).to_string(), "swv8");
        assert_eq!(Technique::swv_unprovisioned(4).to_string(), "swv4-unprov");
    }
}
