//! Alpaca-style task decomposition.
//!
//! Splits a kernel body into *tasks* at loop-iteration granularity: each
//! top-level `For` (with any preceding straight-line statements) becomes
//! a run of tasks — the loop is **strip-mined** into up to
//! [`TARGET_STRIPS`] sub-ranges, each strip one task — and trailing
//! statements form a tail task. Strip-mining is what makes the
//! decomposition *live* on harvested power: a task re-executes from its
//! entry after every outage, so a task longer than one full charge never
//! commits (Alpaca's non-termination condition). Whole quick-scale
//! kernel loops run to hundreds of thousands of cycles; sixths of them
//! fit comfortably inside realistic supercapacitor charges.
//!
//! A task must be **idempotent** — re-executing it from its entry after
//! a power outage must produce the same final memory image — so every
//! array a task both reads and writes (a WAR hazard under re-execution:
//! the second attempt would read its own partial writes) is
//! *privatized*: the task works on a `__shadow_*` copy, and an explicit
//! commit sequence copies the shadow back to the master at the task
//! boundary. Each strip privatizes and commits independently, so strip
//! `s+1`'s copy-in reads the master that strip `s`'s commit made
//! durable.
//!
//! The emitted shape per task `k`:
//!
//! ```text
//! __task{k}:                       ; task entry (re-execution target)
//!     CopyArray __shadow_X <- X    ; privatization copy-in
//!     ... body, X rewritten to __shadow_X ...
//! __commit{k}:                     ; own region: re-entering it must
//!     CopyArray X <- __shadow_X    ; NOT re-run the copy-in above
//! ```
//!
//! The commit sequence is a region of its own because re-execution
//! restarts from the *current region's* entry: if an outage lands
//! mid-commit, the shadow (untouched by the commit) is simply copied
//! again; if the commit were part of the next task, its copy-in would
//! re-read a half-committed master and corrupt read-modify-write
//! results. Write-only and read-only arrays need no privatization —
//! deterministic re-execution overwrites partial writes in place.
//!
//! The pass returns the boundary labels in program order; the compile
//! driver resolves them to program counters after lowering (labels cost
//! zero instructions) and publishes them as
//! [`crate::compile::TaskSpan`]s for the runtime substrate.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::ir::{Expr, KernelIr, Stmt};
use crate::layout::ArrayLayout;

/// One boundary label the pass planted, in program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskLabel {
    /// Label name bound in the lowered program.
    pub label: String,
    /// Whether the region starting here is a commit sequence.
    pub is_commit: bool,
    /// Data words the commit copies back (0 for task-body regions).
    pub privatized_words: u64,
}

/// Decomposes `kernel` into tasks in place, adding shadow arrays (and
/// their layouts, cloned from the privatized masters) as needed.
/// Returns the planted boundary labels in program order.
pub fn apply(kernel: &mut KernelIr, layouts: &mut HashMap<String, ArrayLayout>) -> Vec<TaskLabel> {
    let tasks = split_tasks(std::mem::take(&mut kernel.body));
    let mut labels = Vec::new();
    let mut body = Vec::new();
    let mut shadowed: BTreeSet<String> = BTreeSet::new();

    for (k, task) in tasks.into_iter().enumerate() {
        let mut reads = BTreeSet::new();
        let mut writes = BTreeSet::new();
        collect_sets(&task, &mut reads, &mut writes);
        let privatized: Vec<String> = writes.intersection(&reads).cloned().collect();
        let rename: BTreeMap<String, String> = privatized
            .iter()
            .map(|a| (a.clone(), shadow_name(a)))
            .collect();

        labels.push(TaskLabel {
            label: format!("__task{k}"),
            is_commit: false,
            privatized_words: 0,
        });
        body.push(Stmt::Label(format!("__task{k}")));
        for a in &privatized {
            body.push(Stmt::CopyArray {
                dst: shadow_name(a),
                src: a.clone(),
            });
        }
        for mut s in task {
            rename_stmt(&mut s, &rename);
            body.push(s);
        }
        if !privatized.is_empty() {
            let words: u64 = privatized
                .iter()
                .map(|a| {
                    let bytes = layouts.get(a).map_or(0, ArrayLayout::byte_size);
                    u64::from(bytes.div_ceil(4))
                })
                .sum();
            labels.push(TaskLabel {
                label: format!("__commit{k}"),
                is_commit: true,
                privatized_words: words,
            });
            body.push(Stmt::Label(format!("__commit{k}")));
            for a in &privatized {
                body.push(Stmt::CopyArray {
                    dst: a.clone(),
                    src: shadow_name(a),
                });
            }
        }
        shadowed.extend(privatized);
    }

    for a in &shadowed {
        let master = kernel
            .find_array(a)
            .expect("privatized arrays come from the kernel")
            .clone();
        let mut decl = master;
        decl.name = shadow_name(a);
        decl.is_output = false;
        kernel.arrays.push(decl);
        if let Some(layout) = layouts.get(a).copied() {
            layouts.insert(shadow_name(a), layout);
        }
    }
    kernel.body = body;
    labels
}

fn shadow_name(array: &str) -> String {
    format!("__shadow_{array}")
}

/// Strips each top-level loop decomposes into. Six keeps the largest
/// task near a sixth of its loop's cycle count (so it fits a realistic
/// charge) while bounding the per-strip privatization copy overhead.
const TARGET_STRIPS: i32 = 6;

/// Groups top-level statements into tasks: each top-level `For` is
/// strip-mined into up to [`TARGET_STRIPS`] contiguous sub-range loops,
/// each closing a task (straight-line statements before the loop ride
/// along as the first strip's prefix); trailing statements form a tail
/// task. A body with no loops is a single task.
fn split_tasks(body: Vec<Stmt>) -> Vec<Vec<Stmt>> {
    let mut tasks = Vec::new();
    let mut pending = Vec::new();
    for s in body {
        if let Stmt::For {
            var,
            start,
            end,
            body,
        } = s
        {
            let trip = end - start;
            let strip = (trip + TARGET_STRIPS - 1) / TARGET_STRIPS;
            if strip <= 0 {
                // Empty loop: keep it (it still defines program order)
                // and close the pending task.
                pending.push(Stmt::For {
                    var,
                    start,
                    end,
                    body,
                });
                tasks.push(std::mem::take(&mut pending));
                continue;
            }
            let mut lo = start;
            while lo < end {
                let hi = (lo + strip).min(end);
                pending.push(Stmt::For {
                    var: var.clone(),
                    start: lo,
                    end: hi,
                    body: body.clone(),
                });
                tasks.push(std::mem::take(&mut pending));
                lo = hi;
            }
        } else {
            pending.push(s);
        }
    }
    if !pending.is_empty() || tasks.is_empty() {
        tasks.push(pending);
    }
    tasks
}

/// Accumulates the arrays a statement list reads and writes.
/// `AccumStore` reads *and* writes its target — the canonical WAR
/// hazard task privatization exists for.
fn collect_sets(stmts: &[Stmt], reads: &mut BTreeSet<String>, writes: &mut BTreeSet<String>) {
    let read_expr = |e: &Expr, reads: &mut BTreeSet<String>| {
        e.visit(&mut |node| {
            if let Expr::Load { array, .. }
            | Expr::LoadSub { array, .. }
            | Expr::LoadPacked { array, .. } = node
            {
                reads.insert(array.clone());
            }
        });
    };
    for s in stmts {
        match s {
            Stmt::For { body, .. } => collect_sets(body, reads, writes),
            Stmt::Store {
                array,
                index,
                value,
            } => {
                writes.insert(array.clone());
                read_expr(index, reads);
                read_expr(value, reads);
            }
            Stmt::AccumStore {
                array,
                index,
                value,
            } => {
                writes.insert(array.clone());
                reads.insert(array.clone());
                read_expr(index, reads);
                read_expr(value, reads);
            }
            Stmt::StorePacked {
                array,
                word_index,
                value,
                ..
            } => {
                writes.insert(array.clone());
                read_expr(word_index, reads);
                read_expr(value, reads);
            }
            Stmt::StoreComponent {
                array,
                elem_index,
                value,
                ..
            } => {
                writes.insert(array.clone());
                read_expr(elem_index, reads);
                read_expr(value, reads);
            }
            Stmt::Assign { value, .. } => read_expr(value, reads),
            Stmt::CopyArray { dst, src } => {
                writes.insert(dst.clone());
                reads.insert(src.clone());
            }
            Stmt::SkimPoint | Stmt::Label(_) => {}
        }
    }
}

/// Rewrites every array reference per `rename` (privatized master →
/// shadow), stores and loads alike.
fn rename_stmt(stmt: &mut Stmt, rename: &BTreeMap<String, String>) {
    if rename.is_empty() {
        return;
    }
    let fix = |name: &mut String| {
        if let Some(to) = rename.get(name) {
            *name = to.clone();
        }
    };
    match stmt {
        Stmt::For { body, .. } => {
            for s in body {
                rename_stmt(s, rename);
            }
        }
        Stmt::Store {
            array,
            index,
            value,
        }
        | Stmt::AccumStore {
            array,
            index,
            value,
        } => {
            fix(array);
            rename_expr(index, rename);
            rename_expr(value, rename);
        }
        Stmt::StorePacked {
            array,
            word_index,
            value,
            ..
        } => {
            fix(array);
            rename_expr(word_index, rename);
            rename_expr(value, rename);
        }
        Stmt::StoreComponent {
            array,
            elem_index,
            value,
            ..
        } => {
            fix(array);
            rename_expr(elem_index, rename);
            rename_expr(value, rename);
        }
        Stmt::Assign { value, .. } => rename_expr(value, rename),
        Stmt::CopyArray { dst, src } => {
            fix(dst);
            fix(src);
        }
        Stmt::SkimPoint | Stmt::Label(_) => {}
    }
}

fn rename_expr(e: &mut Expr, rename: &BTreeMap<String, String>) {
    match e {
        Expr::Const(_) | Expr::Var(_) => {}
        Expr::Load { array, index } => {
            if let Some(to) = rename.get(array) {
                *array = to.clone();
            }
            rename_expr(index, rename);
        }
        Expr::LoadSub { array, index, .. } => {
            if let Some(to) = rename.get(array) {
                *array = to.clone();
            }
            rename_expr(index, rename);
        }
        Expr::LoadPacked {
            array, word_index, ..
        } => {
            if let Some(to) = rename.get(array) {
                *array = to.clone();
            }
            rename_expr(word_index, rename);
        }
        Expr::Bin { a, b, .. } | Expr::AsvBin { a, b, .. } => {
            rename_expr(a, rename);
            rename_expr(b, rename);
        }
        Expr::MulAsp { full, sub, .. } => {
            rename_expr(full, rename);
            rename_expr(sub, rename);
        }
        Expr::Shl(x, _) | Expr::Shr(x, _) | Expr::HSum { value: x, .. } => rename_expr(x, rename),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::interpret;
    use crate::ir::{ArrayBuilder, KernelIr, Stmt};
    use crate::layout::ElemType;

    fn rmw_kernel() -> KernelIr {
        // X is read *and* written (AccumStore): must be privatized.
        KernelIr::new("rmw")
            .array(ArrayBuilder::input("A", 8).elem16())
            .array(ArrayBuilder::output("X", 8))
            .body(vec![
                Stmt::for_loop(
                    "i",
                    0,
                    8,
                    vec![Stmt::accum_store(
                        "X",
                        Expr::var("i"),
                        Expr::load("A", Expr::var("i")),
                    )],
                ),
                Stmt::for_loop(
                    "j",
                    0,
                    8,
                    vec![Stmt::accum_store(
                        "X",
                        Expr::var("j"),
                        Expr::load("A", Expr::var("j")) * Expr::c(2),
                    )],
                ),
            ])
    }

    fn layouts_for(k: &KernelIr) -> HashMap<String, ArrayLayout> {
        k.arrays
            .iter()
            .map(|a| {
                (
                    a.name.clone(),
                    ArrayLayout::RowMajor {
                        elem: a.elem,
                        len: a.len,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn rmw_arrays_are_privatized_and_committed() {
        let mut k = rmw_kernel();
        let mut layouts = layouts_for(&k);
        let labels = apply(&mut k, &mut layouts);
        k.validate().unwrap();
        // Each 8-iteration loop strip-mines into four 2-iteration
        // tasks, every one privatizing X and committing it back.
        assert_eq!(labels.len(), 16);
        assert_eq!(labels[0].label, "__task0");
        assert_eq!(labels[1].label, "__commit0");
        assert_eq!(labels[15].label, "__commit7");
        assert!(labels.iter().skip(1).step_by(2).all(|l| l.is_commit));
        // 8 × u32 = 8 words copied per commit.
        assert_eq!(labels[1].privatized_words, 8);
        assert!(k.find_array("__shadow_X").is_some());
        assert!(layouts.contains_key("__shadow_X"));
        // The loop body now targets the shadow.
        let has_shadow_store = k.body.iter().any(|s| match s {
            Stmt::For { body, .. } => body
                .iter()
                .any(|s| matches!(s, Stmt::AccumStore { array, .. } if array == "__shadow_X")),
            _ => false,
        });
        assert!(has_shadow_store, "{:#?}", k.body);
    }

    #[test]
    fn write_only_arrays_are_not_privatized() {
        let mut k = KernelIr::new("wo")
            .array(ArrayBuilder::input("A", 4).elem16())
            .array(ArrayBuilder::output("X", 4))
            .body(vec![Stmt::for_loop(
                "i",
                0,
                4,
                vec![Stmt::store(
                    "X",
                    Expr::var("i"),
                    Expr::load("A", Expr::var("i")),
                )],
            )]);
        let mut layouts = layouts_for(&k);
        let labels = apply(&mut k, &mut layouts);
        k.validate().unwrap();
        // Four single-iteration strips, none privatizing anything.
        assert_eq!(labels.len(), 4, "no commit regions without privatization");
        assert!(labels.iter().all(|l| !l.is_commit));
        assert!(k.find_array("__shadow_X").is_none());
    }

    #[test]
    fn loopless_body_is_a_single_task() {
        let mut k = KernelIr::new("flat")
            .array(ArrayBuilder::output("X", 1))
            .body(vec![Stmt::store("X", Expr::c(0), Expr::c(7))]);
        let mut layouts = layouts_for(&k);
        let labels = apply(&mut k, &mut layouts);
        assert_eq!(labels.len(), 1);
        assert_eq!(labels[0].label, "__task0");
    }

    #[test]
    fn trailing_statements_form_a_tail_task() {
        let mut k = KernelIr::new("tail")
            .array(ArrayBuilder::output("X", 4))
            .body(vec![
                Stmt::for_loop(
                    "i",
                    0,
                    4,
                    vec![Stmt::store("X", Expr::var("i"), Expr::var("i"))],
                ),
                Stmt::store("X", Expr::c(0), Expr::load("X", Expr::c(3))),
            ]);
        let mut layouts = layouts_for(&k);
        let labels = apply(&mut k, &mut layouts);
        // Tasks 0–3: the loop's four strips (write-only). Task 4: the
        // tail store, which reads and writes X, so it commits.
        assert_eq!(
            labels.iter().map(|l| l.label.as_str()).collect::<Vec<_>>(),
            vec![
                "__task0",
                "__task1",
                "__task2",
                "__task3",
                "__task4",
                "__commit4"
            ]
        );
    }

    /// Strip bounds must tile the original iteration space exactly —
    /// including trip counts that do not divide evenly and loops whose
    /// bounds do not start at zero.
    #[test]
    fn strip_mining_tiles_the_iteration_space() {
        for (start, end) in [(0, 7), (0, 6), (0, 5), (2, 13), (0, 1), (3, 3)] {
            let tasks = split_tasks(vec![Stmt::for_loop(
                "i",
                start,
                end,
                vec![Stmt::store("X", Expr::var("i"), Expr::var("i"))],
            )]);
            let mut covered = Vec::new();
            for t in &tasks {
                for s in t {
                    if let Stmt::For { start, end, .. } = s {
                        covered.extend(*start..*end);
                    }
                }
            }
            assert_eq!(covered, (start..end).collect::<Vec<_>>(), "[{start},{end})");
            assert!(tasks.len() <= TARGET_STRIPS as usize + 1, "[{start},{end})");
        }
    }

    /// Strip-mined decomposition of an uneven trip count still computes
    /// exactly what the plain kernel computes.
    #[test]
    fn strip_mining_preserves_semantics_for_uneven_trips() {
        let build = || {
            KernelIr::new("uneven")
                .array(ArrayBuilder::input("A", 7).elem16())
                .array(ArrayBuilder::output("X", 7))
                .body(vec![Stmt::for_loop(
                    "i",
                    0,
                    7,
                    vec![Stmt::accum_store(
                        "X",
                        Expr::var("i"),
                        Expr::load("A", Expr::var("i")),
                    )],
                )])
        };
        let plain = build();
        let mut decomposed = build();
        let mut layouts = layouts_for(&decomposed);
        apply(&mut decomposed, &mut layouts);
        decomposed.validate().unwrap();
        let inputs = [(
            "A".to_string(),
            (0..7).map(|v| (v * 37 + 5) as i64 & 0xFFFF).collect(),
        )];
        let a = interpret(&plain, &inputs, &["X"]).unwrap();
        let b = interpret(&decomposed, &inputs, &["X"]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn decomposition_preserves_semantics() {
        let plain = rmw_kernel();
        let mut decomposed = rmw_kernel();
        let mut layouts = layouts_for(&decomposed);
        apply(&mut decomposed, &mut layouts);
        decomposed.validate().unwrap();
        let inputs = [(
            "A".to_string(),
            (0..8).map(|v| (v * 91 + 13) as i64 & 0xFFFF).collect(),
        )];
        let a = interpret(&plain, &inputs, &["X"]).unwrap();
        let b = interpret(&decomposed, &inputs, &["X"]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn shadow_layout_mirrors_master() {
        let mut k = rmw_kernel();
        let mut layouts = layouts_for(&k);
        apply(&mut k, &mut layouts);
        assert_eq!(layouts["__shadow_X"], layouts["X"]);
        let elem: ElemType = k.find_array("__shadow_X").unwrap().elem;
        assert_eq!(elem, k.find_array("X").unwrap().elem);
    }
}
