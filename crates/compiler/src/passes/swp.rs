//! Anytime subword pipelining (paper §III-A, Algorithm 1).
//!
//! Finds a multiply whose operand loads from a `#pragma asp input` array
//! and accumulates into a `#pragma asp output` array, then fissions the
//! enclosing top-level region once per subword level (MSB first),
//! replacing the multiply by `MUL_ASP` and the operand load by a subword
//! load. With `vectorized_loads` (§V-E, Fig. 12) the annotated input is
//! additionally transposed to subword-major order and the innermost loop
//! is unrolled by the lane count so one 32-bit load feeds several
//! subword multiplies.

use std::collections::HashMap;

use crate::error::CompileError;
use crate::ir::{Approx, BinOp, Expr, KernelIr, Stmt};
use crate::layout::ArrayLayout;
use crate::passes::TransformedKernel;

/// Applies anytime subword pipelining.
///
/// # Errors
///
/// Returns [`CompileError::NothingToTransform`] when no annotated multiply
/// exists, or [`CompileError::BadSubwordGeometry`] for invalid subword
/// sizes.
pub fn apply(
    kernel: &KernelIr,
    bits: u8,
    vectorized_loads: bool,
) -> Result<TransformedKernel, CompileError> {
    if bits == 0 || bits > 16 {
        return Err(CompileError::BadSubwordGeometry {
            detail: format!("SWP subword size {bits} out of range 1..=16"),
        });
    }
    let asp_input = kernel
        .arrays
        .iter()
        .find(|a| a.approx == Approx::AspInput)
        .ok_or_else(|| nothing(kernel, bits))?;
    let has_output = kernel.arrays.iter().any(|a| a.approx == Approx::AspOutput);
    if !has_output {
        return Err(nothing(kernel, bits));
    }
    let elem_bits = asp_input.elem.bits;
    // Levels top-align to the declared significant width so the first
    // level carries real signal; vectorized loads need the storage grid.
    let effective_bits = if vectorized_loads {
        elem_bits
    } else {
        asp_input.value_bits.min(elem_bits)
    };
    if bits > effective_bits {
        return Err(CompileError::BadSubwordGeometry {
            detail: format!("subword size {bits} exceeds significant width {effective_bits}"),
        });
    }
    // Subword levels, **top-aligned** and most significant first: when
    // `bits` does not divide the element width (Fig. 15's 3-bit subwords
    // of 16-bit data), the *bottom* level is the narrow remainder — so the
    // first level always carries `bits` bits of significance and the
    // earliest output improves monotonically with the subword size.
    let mut levels: Vec<(u8, u8)> = Vec::new(); // (shift, width), MSB first
    let mut hi = effective_bits;
    while hi > 0 {
        let lo = hi.saturating_sub(bits);
        levels.push((lo, hi - lo));
        hi = lo;
    }

    // Locate the first top-level statement whose nest contains the
    // candidate multiply; fission from there to the end of the body.
    let split = kernel
        .body
        .iter()
        .position(|s| stmt_contains_candidate(s, &asp_input.name))
        .ok_or_else(|| nothing(kernel, bits))?;

    // Trailing statements replicate once per level (so a finalize runs
    // after each level); that is only sound when they are idempotent.
    // The candidate loop's own accumulation is exempt: its per-level
    // contributions sum to the exact result by distributivity.
    for s in &kernel.body[split + 1..] {
        if region_accumulates(s) {
            return Err(CompileError::BadSubwordGeometry {
                detail: format!(
                    "kernel `{}` accumulates after the anytime loop; replicated trailing                      statements must be idempotent (use Store, not AccumStore)",
                    kernel.name
                ),
            });
        }
    }

    let mut body: Vec<Stmt> = kernel.body[..split].to_vec();
    let region = &kernel.body[split..];
    let n_levels = levels.len();
    for (i, &(shift, width)) in levels.iter().enumerate() {
        for s in region {
            body.push(rewrite_stmt(s, &asp_input.name, width, shift));
        }
        if i + 1 < n_levels {
            body.push(Stmt::SkimPoint);
        }
    }

    let mut layouts = HashMap::new();
    if vectorized_loads {
        if elem_bits % bits != 0 {
            return Err(CompileError::BadSubwordGeometry {
                detail: format!(
                    "vectorized loads need {bits}-bit subwords to divide {elem_bits}-bit elements"
                ),
            });
        }
        let layout = ArrayLayout::subword_major(asp_input.elem, asp_input.len, bits, false)?;
        let lanes = layout.lanes();
        body = body
            .into_iter()
            .map(|s| vectorize_loads_in(s, &asp_input.name, bits, lanes))
            .collect::<Result<_, _>>()?;
        layouts.insert(asp_input.name.clone(), layout);
    }

    let mut out = kernel.clone();
    out.body = body;
    Ok(TransformedKernel {
        kernel: out,
        layouts,
    })
}

fn nothing(kernel: &KernelIr, bits: u8) -> CompileError {
    CompileError::NothingToTransform {
        technique: format!("swp({bits})"),
        kernel: kernel.name.clone(),
    }
}

/// Does this statement's nest contain an `AccumStore` (non-idempotent
/// under replication)?
fn region_accumulates(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::AccumStore { .. } => true,
        Stmt::For { body, .. } => body.iter().any(region_accumulates),
        _ => false,
    }
}

/// Does this statement's nest contain `Mul` with a load from the asp array?
fn stmt_contains_candidate(stmt: &Stmt, asp_array: &str) -> bool {
    match stmt {
        Stmt::For { body, .. } => body.iter().any(|s| stmt_contains_candidate(s, asp_array)),
        Stmt::AccumStore { value, .. } | Stmt::Store { value, .. } | Stmt::Assign { value, .. } => {
            expr_contains_candidate(value, asp_array)
        }
        _ => false,
    }
}

fn expr_contains_candidate(e: &Expr, asp_array: &str) -> bool {
    let mut found = false;
    e.visit(&mut |node| {
        if let Expr::Bin {
            op: BinOp::Mul,
            a,
            b,
        } = node
        {
            if is_asp_load(a, asp_array) || is_asp_load(b, asp_array) {
                found = true;
            }
        }
    });
    found
}

fn is_asp_load(e: &Expr, asp_array: &str) -> bool {
    matches!(e, Expr::Load { array, .. } if array == asp_array)
}

fn rewrite_stmt(stmt: &Stmt, asp_array: &str, width: u8, shift: u8) -> Stmt {
    match stmt {
        Stmt::For {
            var,
            start,
            end,
            body,
        } => Stmt::For {
            var: var.clone(),
            start: *start,
            end: *end,
            body: body
                .iter()
                .map(|s| rewrite_stmt(s, asp_array, width, shift))
                .collect(),
        },
        Stmt::Store {
            array,
            index,
            value,
        } => Stmt::Store {
            array: array.clone(),
            index: rewrite_expr(index, asp_array, width, shift),
            value: rewrite_expr(value, asp_array, width, shift),
        },
        Stmt::AccumStore {
            array,
            index,
            value,
        } => Stmt::AccumStore {
            array: array.clone(),
            index: rewrite_expr(index, asp_array, width, shift),
            value: rewrite_expr(value, asp_array, width, shift),
        },
        Stmt::Assign { var, value } => Stmt::Assign {
            var: var.clone(),
            value: rewrite_expr(value, asp_array, width, shift),
        },
        other => other.clone(),
    }
}

/// Rewrites `Mul(load(asp), x)` / `Mul(x, load(asp))` into the anytime
/// subword equivalent for the level at `shift`; everything else is cloned.
fn rewrite_expr(e: &Expr, asp_array: &str, width: u8, shift: u8) -> Expr {
    match e {
        Expr::Bin {
            op: BinOp::Mul,
            a,
            b,
        } => {
            // Prefer taking the subword from the right operand; fall back
            // to the left (covers `x * x` squares with a single pragma).
            if let Expr::Load { array, index } = b.as_ref() {
                if array == asp_array {
                    return Expr::MulAsp {
                        full: Box::new(rewrite_expr(a, asp_array, width, shift)),
                        sub: Box::new(Expr::LoadSub {
                            array: array.clone(),
                            index: index.clone(),
                            width,
                            shift,
                        }),
                        width,
                        shift,
                    };
                }
            }
            if let Expr::Load { array, index } = a.as_ref() {
                if array == asp_array {
                    return Expr::MulAsp {
                        full: Box::new(rewrite_expr(b, asp_array, width, shift)),
                        sub: Box::new(Expr::LoadSub {
                            array: array.clone(),
                            index: index.clone(),
                            width,
                            shift,
                        }),
                        width,
                        shift,
                    };
                }
            }
            Expr::Bin {
                op: BinOp::Mul,
                a: Box::new(rewrite_expr(a, asp_array, width, shift)),
                b: Box::new(rewrite_expr(b, asp_array, width, shift)),
            }
        }
        Expr::Bin { op, a, b } => Expr::Bin {
            op: *op,
            a: Box::new(rewrite_expr(a, asp_array, width, shift)),
            b: Box::new(rewrite_expr(b, asp_array, width, shift)),
        },
        Expr::Load { array, index } => Expr::Load {
            array: array.clone(),
            index: Box::new(rewrite_expr(index, asp_array, width, shift)),
        },
        Expr::Shl(x, sh) => Expr::Shl(Box::new(rewrite_expr(x, asp_array, width, shift)), *sh),
        Expr::Shr(x, sh) => Expr::Shr(Box::new(rewrite_expr(x, asp_array, width, shift)), *sh),
        other => other.clone(),
    }
}

// ---- vectorized loads (Fig. 12) -------------------------------------------

/// Rewrites the innermost loop containing a `LoadSub` of `array` whose
/// index is affine `base + i` in the loop variable: unrolls by `lanes`,
/// hoisting one packed `LoadPacked` per group into a scalar, and extracts
/// each lane with shift/mask.
fn vectorize_loads_in(stmt: Stmt, array: &str, bits: u8, lanes: u32) -> Result<Stmt, CompileError> {
    match stmt {
        Stmt::For {
            var,
            start,
            end,
            body,
        } => {
            // Does this loop directly contain the subword load in `var`?
            let direct = body.iter().any(|s| stmt_has_loadsub_in_var(s, array, &var));
            if direct {
                unroll_loop(&var, start, end, body, array, bits, lanes)
            } else {
                let body = body
                    .into_iter()
                    .map(|s| vectorize_loads_in(s, array, bits, lanes))
                    .collect::<Result<_, _>>()?;
                Ok(Stmt::For {
                    var,
                    start,
                    end,
                    body,
                })
            }
        }
        other => Ok(other),
    }
}

fn stmt_has_loadsub_in_var(stmt: &Stmt, array: &str, var: &str) -> bool {
    let check_expr = |e: &Expr| {
        let mut found = false;
        e.visit(&mut |node| {
            if let Expr::LoadSub {
                array: a, index, ..
            } = node
            {
                if a == array && affine_base(index, var).is_some() {
                    found = true;
                }
            }
        });
        found
    };
    match stmt {
        Stmt::Store { value, index, .. } | Stmt::AccumStore { value, index, .. } => {
            check_expr(value) || check_expr(index)
        }
        Stmt::Assign { value, .. } => check_expr(value),
        _ => false,
    }
}

/// If `index` is `var`, or `base + var` / `var + base` with `base`
/// independent of `var`, returns the base expression (`Const(0)` for the
/// bare case).
fn affine_base(index: &Expr, var: &str) -> Option<Expr> {
    match index {
        Expr::Var(v) if v == var => Some(Expr::Const(0)),
        Expr::Bin {
            op: BinOp::Add,
            a,
            b,
        } => {
            if matches!(b.as_ref(), Expr::Var(v) if v == var) && !uses_var(a, var) {
                Some((**a).clone())
            } else if matches!(a.as_ref(), Expr::Var(v) if v == var) && !uses_var(b, var) {
                Some((**b).clone())
            } else {
                None
            }
        }
        _ => None,
    }
}

fn uses_var(e: &Expr, var: &str) -> bool {
    let mut found = false;
    e.visit(&mut |node| {
        if matches!(node, Expr::Var(v) if v == var) {
            found = true;
        }
    });
    found
}

/// Divides an index expression by the lane count, supporting the shapes
/// the kernels produce: constants and `expr * Const(c)` with
/// `c % lanes == 0`.
fn divide_by_lanes(e: &Expr, lanes: u32) -> Option<Expr> {
    match e {
        Expr::Const(c) if (*c as u32).is_multiple_of(lanes) => Some(Expr::Const(c / lanes as i32)),
        Expr::Bin {
            op: BinOp::Mul,
            a,
            b,
        } => {
            if let Expr::Const(c) = b.as_ref() {
                if *c >= 0 && (*c as u32).is_multiple_of(lanes) {
                    return Some(Expr::Bin {
                        op: BinOp::Mul,
                        a: a.clone(),
                        b: Box::new(Expr::Const(c / lanes as i32)),
                    });
                }
            }
            if let Expr::Const(c) = a.as_ref() {
                if *c >= 0 && (*c as u32).is_multiple_of(lanes) {
                    return Some(Expr::Bin {
                        op: BinOp::Mul,
                        a: Box::new(Expr::Const(c / lanes as i32)),
                        b: b.clone(),
                    });
                }
            }
            None
        }
        _ => None,
    }
}

fn unroll_loop(
    var: &str,
    start: i32,
    end: i32,
    body: Vec<Stmt>,
    array: &str,
    bits: u8,
    lanes: u32,
) -> Result<Stmt, CompileError> {
    let trip = end - start;
    if start != 0 || trip <= 0 || !(trip as u32).is_multiple_of(lanes) {
        return Err(CompileError::BadSubwordGeometry {
            detail: format!(
                "vectorized loads need a 0-based loop with trip count divisible by {lanes}, got {start}..{end}"
            ),
        });
    }
    let outer_var = format!("{var}__vec");
    let packed_var = format!("{var}__pw");
    let mask = if bits >= 32 {
        -1
    } else {
        ((1u32 << bits) - 1) as i32
    };

    // Identify the subword stream. All LoadSubs in one fission replica
    // share a level; vectorized loads additionally require a SINGLE
    // stream (one base) — a multi-tap body reading several offsets of
    // the asp array cannot share one packed word.
    let mut streams: Vec<(u8, Expr)> = Vec::new();
    for s in &body {
        find_loadsub(s, array, var, &mut streams);
    }
    streams.dedup();
    let (level, base) = match streams.len() {
        1 => streams.pop().expect("len checked"),
        0 => {
            return Err(CompileError::Internal(
                "unroll target lost its subword load".to_string(),
            ))
        }
        n => {
            return Err(CompileError::BadSubwordGeometry {
                detail: format!(
                    "vectorized loads support a single subword stream per loop, found {n}"
                ),
            })
        }
    };
    let word_base =
        divide_by_lanes(&base, lanes).ok_or_else(|| CompileError::BadSubwordGeometry {
            detail: "vectorized loads need the load base to be a multiple of the lane count"
                .to_string(),
        })?;

    let mut new_body = Vec::new();
    // One packed load per group of `lanes` iterations.
    new_body.push(Stmt::Assign {
        var: packed_var.clone(),
        value: Expr::LoadPacked {
            array: array.to_string(),
            level,
            word_index: Box::new(Expr::Bin {
                op: BinOp::Add,
                a: Box::new(word_base),
                b: Box::new(Expr::Var(outer_var.clone())),
            }),
        },
    });
    for l in 0..lanes {
        // var := outer_var * lanes + l
        let idx_expr = Expr::Bin {
            op: BinOp::Add,
            a: Box::new(Expr::Bin {
                op: BinOp::Mul,
                a: Box::new(Expr::Var(outer_var.clone())),
                b: Box::new(Expr::Const(lanes as i32)),
            }),
            b: Box::new(Expr::Const(l as i32)),
        };
        let extract = {
            let shifted = if l == 0 {
                Expr::Var(packed_var.clone())
            } else {
                Expr::Shr(
                    Box::new(Expr::Var(packed_var.clone())),
                    (l * bits as u32) as u8,
                )
            };
            Expr::Bin {
                op: BinOp::And,
                a: Box::new(shifted),
                b: Box::new(Expr::Const(mask)),
            }
        };
        for s in &body {
            new_body.push(substitute_unrolled(s, var, &idx_expr, array, &extract));
        }
    }
    Ok(Stmt::For {
        var: outer_var,
        start: 0,
        end: (trip as u32 / lanes) as i32,
        body: new_body,
    })
}

fn find_loadsub(stmt: &Stmt, array: &str, var: &str, streams: &mut Vec<(u8, Expr)>) {
    let mut check = |e: &Expr| {
        e.visit(&mut |node| {
            if let Expr::LoadSub {
                array: a,
                index,
                width,
                shift,
            } = node
            {
                if a == array {
                    if let Some(b) = affine_base(index, var) {
                        // Vectorized loads require dividing geometry, so
                        // the shift is always a whole number of levels.
                        debug_assert_eq!(shift % width, 0);
                        let entry = (shift / width, b);
                        if !streams.contains(&entry) {
                            streams.push(entry);
                        }
                    }
                }
            }
        });
    };
    match stmt {
        Stmt::Store { index, value, .. } | Stmt::AccumStore { index, value, .. } => {
            check(index);
            check(value);
        }
        Stmt::Assign { value, .. } => check(value),
        Stmt::For { body, .. } => {
            for s in body {
                find_loadsub(s, array, var, streams);
            }
        }
        _ => {}
    }
}

/// Replaces `Var(var)` with `idx_expr` and the `LoadSub` of `array` with
/// the lane-extraction expression.
fn substitute_unrolled(
    stmt: &Stmt,
    var: &str,
    idx_expr: &Expr,
    array: &str,
    extract: &Expr,
) -> Stmt {
    let sub = |e: &Expr| substitute_expr(e, var, idx_expr, array, extract);
    match stmt {
        Stmt::For {
            var: v,
            start,
            end,
            body,
        } => Stmt::For {
            var: v.clone(),
            start: *start,
            end: *end,
            body: body
                .iter()
                .map(|s| substitute_unrolled(s, var, idx_expr, array, extract))
                .collect(),
        },
        Stmt::Store {
            array: a,
            index,
            value,
        } => Stmt::Store {
            array: a.clone(),
            index: sub(index),
            value: sub(value),
        },
        Stmt::AccumStore {
            array: a,
            index,
            value,
        } => Stmt::AccumStore {
            array: a.clone(),
            index: sub(index),
            value: sub(value),
        },
        Stmt::Assign { var: v, value } => Stmt::Assign {
            var: v.clone(),
            value: sub(value),
        },
        other => other.clone(),
    }
}

fn substitute_expr(e: &Expr, var: &str, idx_expr: &Expr, array: &str, extract: &Expr) -> Expr {
    match e {
        Expr::Var(v) if v == var => idx_expr.clone(),
        Expr::LoadSub { array: a, .. } if a == array => extract.clone(),
        Expr::Load { array: a, index } => Expr::Load {
            array: a.clone(),
            index: Box::new(substitute_expr(index, var, idx_expr, array, extract)),
        },
        Expr::LoadSub {
            array: a,
            index,
            width,
            shift,
        } => Expr::LoadSub {
            array: a.clone(),
            index: Box::new(substitute_expr(index, var, idx_expr, array, extract)),
            width: *width,
            shift: *shift,
        },
        Expr::Bin { op, a, b } => Expr::Bin {
            op: *op,
            a: Box::new(substitute_expr(a, var, idx_expr, array, extract)),
            b: Box::new(substitute_expr(b, var, idx_expr, array, extract)),
        },
        Expr::MulAsp {
            full,
            sub,
            width,
            shift,
        } => Expr::MulAsp {
            full: Box::new(substitute_expr(full, var, idx_expr, array, extract)),
            sub: Box::new(substitute_expr(sub, var, idx_expr, array, extract)),
            width: *width,
            shift: *shift,
        },
        Expr::Shl(x, sh) => Expr::Shl(
            Box::new(substitute_expr(x, var, idx_expr, array, extract)),
            *sh,
        ),
        Expr::Shr(x, sh) => Expr::Shr(
            Box::new(substitute_expr(x, var, idx_expr, array, extract)),
            *sh,
        ),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ArrayBuilder;

    fn listing1_kernel() -> KernelIr {
        // X[i] += A[i] * F[i], A asp input (16-bit), X asp output.
        KernelIr::new("listing1")
            .array(ArrayBuilder::input("A", 8).elem16().asp_input())
            .array(ArrayBuilder::input("F", 8).elem16())
            .array(ArrayBuilder::output("X", 8).asp_output())
            .body(vec![Stmt::for_loop(
                "i",
                0,
                8,
                vec![Stmt::accum_store(
                    "X",
                    Expr::var("i"),
                    Expr::load("A", Expr::var("i")) * Expr::load("F", Expr::var("i")),
                )],
            )])
    }

    fn count_stmts(body: &[Stmt], pred: &dyn Fn(&Stmt) -> bool) -> usize {
        let mut n = 0;
        for s in body {
            if pred(s) {
                n += 1;
            }
            if let Stmt::For { body, .. } = s {
                n += count_stmts(body, pred);
            }
        }
        n
    }

    fn count_exprs(body: &[Stmt], pred: &dyn Fn(&Expr) -> bool) -> usize {
        let mut n = 0;
        let check = |e: &Expr| {
            let mut local = 0;
            e.visit(&mut |node| {
                if pred(node) {
                    local += 1;
                }
            });
            local
        };
        for s in body {
            match s {
                Stmt::For { body, .. } => n += count_exprs(body, pred),
                Stmt::Store { index, value, .. } | Stmt::AccumStore { index, value, .. } => {
                    n += check(index) + check(value);
                }
                Stmt::StorePacked {
                    word_index, value, ..
                } => {
                    n += check(word_index) + check(value);
                }
                Stmt::StoreComponent {
                    elem_index, value, ..
                } => {
                    n += check(elem_index) + check(value);
                }
                Stmt::Assign { value, .. } => n += check(value),
                Stmt::SkimPoint | Stmt::Label(_) | Stmt::CopyArray { .. } => {}
            }
        }
        n
    }

    #[test]
    fn eight_bit_fission_splits_twice() {
        // The paper: "the loop is split twice for the 8-bit case".
        let t = apply(&listing1_kernel(), 8, false).unwrap();
        let loops = count_stmts(&t.kernel.body, &|s| matches!(s, Stmt::For { .. }));
        assert_eq!(loops, 2);
        let skims = count_stmts(&t.kernel.body, &|s| matches!(s, Stmt::SkimPoint));
        assert_eq!(skims, 1, "one skim point between the two levels");
        assert!(
            t.layouts.is_empty(),
            "no layout change without vectorized loads"
        );
    }

    #[test]
    fn four_bit_fission_splits_four_times() {
        // "...and 4 times for the 4-bit case."
        let t = apply(&listing1_kernel(), 4, false).unwrap();
        let loops = count_stmts(&t.kernel.body, &|s| matches!(s, Stmt::For { .. }));
        assert_eq!(loops, 4);
        let skims = count_stmts(&t.kernel.body, &|s| matches!(s, Stmt::SkimPoint));
        assert_eq!(skims, 3);
    }

    #[test]
    fn msb_level_comes_first() {
        let t = apply(&listing1_kernel(), 8, false).unwrap();
        // First loop must use shift=8 (most significant 8-bit subword of
        // 16-bit data).
        let mut first_shift = None;
        for s in &t.kernel.body {
            if let Stmt::For { body, .. } = s {
                if let Stmt::AccumStore { value, .. } = &body[0] {
                    value.visit(&mut |e| {
                        if let Expr::MulAsp { shift, .. } = e {
                            if first_shift.is_none() {
                                first_shift = Some(*shift);
                            }
                        }
                    });
                }
                break;
            }
        }
        assert_eq!(first_shift, Some(8));
    }

    #[test]
    fn three_bit_subwords_of_16_bit_data_use_six_levels() {
        let t = apply(&listing1_kernel(), 3, false).unwrap();
        let loops = count_stmts(&t.kernel.body, &|s| matches!(s, Stmt::For { .. }));
        assert_eq!(loops, 6, "ceil(16/3) = 6 levels");
    }

    #[test]
    fn square_kernel_subwords_one_operand() {
        // acc[0] += D[i] * D[i]: both operands load the asp array; exactly
        // one side must become the subword.
        let k = KernelIr::new("sq")
            .array(ArrayBuilder::input("D", 8).elem16().asp_input())
            .array(ArrayBuilder::output("SQ", 1).asp_output())
            .body(vec![Stmt::for_loop(
                "i",
                0,
                8,
                vec![Stmt::accum_store(
                    "SQ",
                    Expr::c(0),
                    Expr::load("D", Expr::var("i")) * Expr::load("D", Expr::var("i")),
                )],
            )]);
        let t = apply(&k, 8, false).unwrap();
        let plain_loads = count_exprs(
            &t.kernel.body,
            &|e| matches!(e, Expr::Load { array, .. } if array == "D"),
        );
        let sub_loads = count_exprs(
            &t.kernel.body,
            &|e| matches!(e, Expr::LoadSub { array, .. } if array == "D"),
        );
        assert_eq!(plain_loads, 2, "one full-precision load per level");
        assert_eq!(sub_loads, 2, "one subword load per level");
    }

    #[test]
    fn trailing_finalize_is_replicated_per_level() {
        // sum loop + finalize store; the finalize must run after every
        // level so skimming always leaves a committed output.
        let k = KernelIr::new("reduce")
            .array(ArrayBuilder::input("A", 8).elem16().asp_input())
            .array(ArrayBuilder::input("F", 8).elem16())
            .array(ArrayBuilder::output("ACC", 1).asp_output())
            .array(ArrayBuilder::output("OUT", 1))
            .body(vec![
                Stmt::for_loop(
                    "i",
                    0,
                    8,
                    vec![Stmt::accum_store(
                        "ACC",
                        Expr::c(0),
                        Expr::load("A", Expr::var("i")) * Expr::load("F", Expr::var("i")),
                    )],
                ),
                Stmt::store("OUT", Expr::c(0), Expr::load("ACC", Expr::c(0)).shr(3)),
            ]);
        let t = apply(&k, 8, false).unwrap();
        let finalizes = count_stmts(
            &t.kernel.body,
            &|s| matches!(s, Stmt::Store { array, .. } if array == "OUT"),
        );
        assert_eq!(finalizes, 2, "finalize replicated once per level");
    }

    #[test]
    fn statements_before_candidate_run_once() {
        let k = KernelIr::new("pre")
            .array(ArrayBuilder::input("A", 8).elem16().asp_input())
            .array(ArrayBuilder::input("F", 8).elem16())
            .array(ArrayBuilder::output("X", 8).asp_output())
            .array(ArrayBuilder::output("PRE", 1))
            .body(vec![
                Stmt::store("PRE", Expr::c(0), Expr::c(42)),
                Stmt::for_loop(
                    "i",
                    0,
                    8,
                    vec![Stmt::accum_store(
                        "X",
                        Expr::var("i"),
                        Expr::load("A", Expr::var("i")) * Expr::load("F", Expr::var("i")),
                    )],
                ),
            ]);
        let t = apply(&k, 4, false).unwrap();
        let pres = count_stmts(
            &t.kernel.body,
            &|s| matches!(s, Stmt::Store { array, .. } if array == "PRE"),
        );
        assert_eq!(pres, 1);
    }

    #[test]
    fn no_candidate_is_an_error() {
        let k = KernelIr::new("plain")
            .array(ArrayBuilder::input("A", 8).elem16())
            .array(ArrayBuilder::output("X", 8))
            .body(vec![Stmt::for_loop(
                "i",
                0,
                8,
                vec![Stmt::store(
                    "X",
                    Expr::var("i"),
                    Expr::load("A", Expr::var("i")),
                )],
            )]);
        assert!(matches!(
            apply(&k, 8, false),
            Err(CompileError::NothingToTransform { .. })
        ));
    }

    #[test]
    fn bad_bits_rejected() {
        assert!(matches!(
            apply(&listing1_kernel(), 0, false),
            Err(CompileError::BadSubwordGeometry { .. })
        ));
        assert!(matches!(
            apply(&listing1_kernel(), 17, false),
            Err(CompileError::BadSubwordGeometry { .. })
        ));
        assert!(matches!(
            apply(&listing1_kernel(), 32, false),
            Err(CompileError::BadSubwordGeometry { .. })
        ));
    }

    #[test]
    fn vectorized_loads_unroll_and_transpose() {
        let t = apply(&listing1_kernel(), 8, true).unwrap();
        assert!(
            t.layouts.contains_key("A"),
            "asp input transposed to subword-major"
        );
        let packed = count_exprs(
            &t.kernel.body,
            &|e| matches!(e, Expr::LoadPacked { array, .. } if array == "A"),
        );
        assert_eq!(packed, 2, "one packed load per level loop");
        // The unrolled loop runs 8/4 = 2 iterations with 4 MulAsps each.
        let mulasps = count_exprs(&t.kernel.body, &|e| matches!(e, Expr::MulAsp { .. }));
        assert_eq!(mulasps, 8, "4 unrolled multiplies x 2 levels");
        // No subword loads remain for A.
        let sub_loads = count_exprs(
            &t.kernel.body,
            &|e| matches!(e, Expr::LoadSub { array, .. } if array == "A"),
        );
        assert_eq!(sub_loads, 0);
    }

    #[test]
    fn trailing_accumulation_is_rejected() {
        // A trailing Y[j] += X[j] would run once per level and
        // double-accumulate — the pass must refuse.
        let k = KernelIr::new("trailer")
            .array(ArrayBuilder::input("A", 8).elem16().asp_input())
            .array(ArrayBuilder::input("F", 8).elem16())
            .array(ArrayBuilder::output("X", 8).asp_output())
            .array(ArrayBuilder::output("Y", 8))
            .body(vec![
                Stmt::for_loop(
                    "i",
                    0,
                    8,
                    vec![Stmt::accum_store(
                        "X",
                        Expr::var("i"),
                        Expr::load("A", Expr::var("i")) * Expr::load("F", Expr::var("i")),
                    )],
                ),
                Stmt::for_loop(
                    "j",
                    0,
                    8,
                    vec![Stmt::accum_store(
                        "Y",
                        Expr::var("j"),
                        Expr::load("X", Expr::var("j")),
                    )],
                ),
            ]);
        assert!(matches!(
            apply(&k, 8, false),
            Err(CompileError::BadSubwordGeometry { .. })
        ));
    }

    #[test]
    fn vectorized_loads_reject_multi_tap_bodies() {
        // Two subword streams (A[i] and A[i+1]) cannot share one packed
        // pointer; the pass must refuse rather than read wrong lanes.
        let k = KernelIr::new("fir2")
            .array(ArrayBuilder::input("A", 12).elem16().asp_input())
            .array(ArrayBuilder::input("F", 8).elem16())
            .array(ArrayBuilder::input("G", 8).elem16())
            .array(ArrayBuilder::output("X", 8).asp_output())
            .body(vec![Stmt::for_loop(
                "i",
                0,
                8,
                vec![Stmt::accum_store(
                    "X",
                    Expr::var("i"),
                    Expr::load("A", Expr::var("i")) * Expr::load("F", Expr::var("i"))
                        + Expr::load("A", Expr::var("i") + Expr::c(1))
                            * Expr::load("G", Expr::var("i")),
                )],
            )]);
        // Plain SWP is fine…
        apply(&k, 8, false).unwrap();
        // …vectorized loads are refused.
        assert!(matches!(
            apply(&k, 8, true),
            Err(CompileError::BadSubwordGeometry { .. })
        ));
    }

    #[test]
    fn vectorized_loads_reject_nondivisible_trip() {
        let k = KernelIr::new("odd")
            .array(ArrayBuilder::input("A", 6).elem16().asp_input())
            .array(ArrayBuilder::input("F", 6).elem16())
            .array(ArrayBuilder::output("X", 6).asp_output())
            .body(vec![Stmt::for_loop(
                "i",
                0,
                6,
                vec![Stmt::accum_store(
                    "X",
                    Expr::var("i"),
                    Expr::load("A", Expr::var("i")) * Expr::load("F", Expr::var("i")),
                )],
            )]);
        assert!(
            apply(&k, 8, true).is_err(),
            "6 elements, 4 lanes: not divisible"
        );
    }
}
