//! Anytime transformation passes (the paper's Algorithm 1 and its SWV
//! sibling).
//!
//! Both passes implement the same high-level recipe:
//!
//! 1. find the annotated candidate operation and the top-level loop that
//!    contains it,
//! 2. **loop fission**: replicate the region from that loop to the end of
//!    the kernel body once per subword level, most significant first
//!    (trailing statements such as a variance finalization are replicated
//!    too, so every level ends with a committed, improving output),
//! 3. rewrite the candidate operation in level `k` to its anytime
//!    subword equivalent (`MUL_ASP`, `ADD_ASV`, packed loads/stores),
//! 4. insert a **skim point** after every level except the last.

pub mod hoist;
pub mod swp;
pub mod swv;
pub mod tasks;

use std::collections::HashMap;

use crate::ir::KernelIr;
use crate::layout::ArrayLayout;

/// Result of an anytime pass: the rewritten kernel plus the layout
/// overrides its packed accesses assume.
#[derive(Debug, Clone)]
pub struct TransformedKernel {
    /// The rewritten kernel.
    pub kernel: KernelIr,
    /// Arrays whose device layout differs from row-major.
    pub layouts: HashMap<String, ArrayLayout>,
}

impl TransformedKernel {
    /// An identity transformation (precise compilation).
    pub fn identity(kernel: &KernelIr) -> TransformedKernel {
        TransformedKernel {
            kernel: kernel.clone(),
            layouts: HashMap::new(),
        }
    }
}
