//! Loop-invariant expression hoisting.
//!
//! A light version of what `-O1` would do to the paper's C kernels: any
//! maximal non-trivial subexpression inside a loop that (a) references no
//! variable assigned within the loop (including the loop variable) and
//! (b) performs no memory access, is computed once into a fresh scalar
//! before the loop and reused.
//!
//! This matters for *fidelity*, not just speed: without it the naive
//! code generator recomputes row offsets like `(i + ki) * width` on every
//! inner iteration, diluting the share of cycles spent in the multiplies
//! and adds that WN accelerates — and therefore understating every
//! speedup relative to the paper's GCC-compiled baselines. The pass runs
//! on every build (precise and anytime alike), so comparisons stay fair.
//!
//! Identical invariant subexpressions map to the same hoisted scalar,
//! giving common-subexpression elimination within a loop body for free.
//! Hoisted expressions are pure (no memory access, constant shift
//! amounts), so evaluating them even when the loop runs zero iterations
//! is safe.

use std::collections::HashSet;

use crate::ir::{Expr, KernelIr, Stmt};

/// Applies hoisting to a whole kernel body. Idempotent in effect
/// (re-running hoists nothing new).
pub fn apply(kernel: &mut KernelIr) {
    let mut counter = 0usize;
    kernel.body = hoist_block(std::mem::take(&mut kernel.body), &mut counter);
}

/// Processes a block: every `For` is first hoisted internally
/// (innermost-first), then its invariant definitions are emitted into
/// this block just before it.
fn hoist_block(body: Vec<Stmt>, counter: &mut usize) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(body.len());
    for s in body {
        match s {
            Stmt::For {
                var,
                start,
                end,
                body,
            } => {
                let body = hoist_block(body, counter);
                let (prelude, body) = hoist_from_loop(&var, body, counter);
                out.extend(prelude);
                out.push(Stmt::For {
                    var,
                    start,
                    end,
                    body,
                });
            }
            other => out.push(other),
        }
    }
    out
}

/// Hoists invariant subexpressions out of one loop's body. Returns the
/// `Assign` prelude and the rewritten body.
fn hoist_from_loop(var: &str, body: Vec<Stmt>, counter: &mut usize) -> (Vec<Stmt>, Vec<Stmt>) {
    // Variables whose value changes inside the loop: the loop variable
    // and every Assign / nested-loop variable in the body.
    let mut mutated: HashSet<String> = HashSet::new();
    mutated.insert(var.to_string());
    collect_assigned(&body, &mut mutated);

    let mut hoisted: Vec<(Expr, String)> = Vec::new();
    let body: Vec<Stmt> = body
        .into_iter()
        .map(|s| hoist_stmt(s, &mutated, &mut hoisted, counter))
        .collect();

    let prelude = hoisted
        .into_iter()
        .map(|(value, name)| Stmt::Assign { var: name, value })
        .collect();
    (prelude, body)
}

fn collect_assigned(body: &[Stmt], out: &mut HashSet<String>) {
    for s in body {
        match s {
            Stmt::Assign { var, .. } => {
                out.insert(var.clone());
            }
            Stmt::For { var, body, .. } => {
                out.insert(var.clone());
                collect_assigned(body, out);
            }
            _ => {}
        }
    }
}

fn hoist_stmt(
    stmt: Stmt,
    mutated: &HashSet<String>,
    hoisted: &mut Vec<(Expr, String)>,
    counter: &mut usize,
) -> Stmt {
    let mut h = |e: Expr| hoist_expr(e, mutated, hoisted, counter);
    match stmt {
        Stmt::Store {
            array,
            index,
            value,
        } => {
            let index = h(index);
            let value = hoist_expr(value, mutated, hoisted, counter);
            Stmt::Store {
                array,
                index,
                value,
            }
        }
        Stmt::AccumStore {
            array,
            index,
            value,
        } => {
            let index = h(index);
            let value = hoist_expr(value, mutated, hoisted, counter);
            Stmt::AccumStore {
                array,
                index,
                value,
            }
        }
        Stmt::Assign { var, value } => Stmt::Assign {
            var,
            value: h(value),
        },
        Stmt::StorePacked {
            array,
            level,
            word_index,
            value,
        } => {
            let word_index = h(word_index);
            let value = hoist_expr(value, mutated, hoisted, counter);
            Stmt::StorePacked {
                array,
                level,
                word_index,
                value,
            }
        }
        Stmt::StoreComponent {
            array,
            elem_index,
            level,
            value,
        } => {
            let elem_index = h(elem_index);
            let value = hoist_expr(value, mutated, hoisted, counter);
            Stmt::StoreComponent {
                array,
                elem_index,
                level,
                value,
            }
        }
        // Nested loops were already processed innermost-first; anything
        // still inside them depends on their loop variables.
        s @ Stmt::For { .. } => s,
        s @ (Stmt::SkimPoint | Stmt::Label(_) | Stmt::CopyArray { .. }) => s,
    }
}

fn hoist_expr(
    e: Expr,
    mutated: &HashSet<String>,
    hoisted: &mut Vec<(Expr, String)>,
    counter: &mut usize,
) -> Expr {
    if is_invariant(&e, mutated) && is_worth_hoisting(&e) {
        if let Some((_, name)) = hoisted.iter().find(|(existing, _)| existing == &e) {
            return Expr::Var(name.clone());
        }
        let name = format!("__h{}", *counter);
        *counter += 1;
        hoisted.push((e, name.clone()));
        return Expr::Var(name);
    }
    match e {
        Expr::Bin { op, a, b } => Expr::Bin {
            op,
            a: Box::new(hoist_expr(*a, mutated, hoisted, counter)),
            b: Box::new(hoist_expr(*b, mutated, hoisted, counter)),
        },
        Expr::Load { array, index } => Expr::Load {
            array,
            index: Box::new(hoist_expr(*index, mutated, hoisted, counter)),
        },
        Expr::LoadSub {
            array,
            index,
            width,
            shift,
        } => Expr::LoadSub {
            array,
            index: Box::new(hoist_expr(*index, mutated, hoisted, counter)),
            width,
            shift,
        },
        Expr::LoadPacked {
            array,
            level,
            word_index,
        } => Expr::LoadPacked {
            array,
            level,
            word_index: Box::new(hoist_expr(*word_index, mutated, hoisted, counter)),
        },
        Expr::MulAsp {
            full,
            sub,
            width,
            shift,
        } => Expr::MulAsp {
            full: Box::new(hoist_expr(*full, mutated, hoisted, counter)),
            sub: Box::new(hoist_expr(*sub, mutated, hoisted, counter)),
            width,
            shift,
        },
        Expr::AsvBin {
            op,
            a,
            b,
            lane_bits,
        } => Expr::AsvBin {
            op,
            a: Box::new(hoist_expr(*a, mutated, hoisted, counter)),
            b: Box::new(hoist_expr(*b, mutated, hoisted, counter)),
            lane_bits,
        },
        Expr::HSum { value, lane_bits } => Expr::HSum {
            value: Box::new(hoist_expr(*value, mutated, hoisted, counter)),
            lane_bits,
        },
        Expr::Shl(x, sh) => Expr::Shl(Box::new(hoist_expr(*x, mutated, hoisted, counter)), sh),
        Expr::Shr(x, sh) => Expr::Shr(Box::new(hoist_expr(*x, mutated, hoisted, counter)), sh),
        leaf => leaf,
    }
}

/// Invariant: no mutated variable, no memory access (loads could alias
/// stores executed in the loop).
fn is_invariant(e: &Expr, mutated: &HashSet<String>) -> bool {
    let mut ok = true;
    e.visit(&mut |node| match node {
        Expr::Var(v) if mutated.contains(v) => ok = false,
        Expr::Load { .. } | Expr::LoadSub { .. } | Expr::LoadPacked { .. } => ok = false,
        _ => {}
    });
    ok
}

/// Hoisting a constant or a bare variable saves nothing.
fn is_worth_hoisting(e: &Expr) -> bool {
    !matches!(e, Expr::Const(_) | Expr::Var(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::interpret;
    use crate::ir::{ArrayBuilder, BinOp, KernelIr, Stmt};

    /// Conv2d-shaped nest: X[i*W+j] uses `(i+ki)*W2` style indices.
    fn nest_kernel() -> KernelIr {
        KernelIr::new("nest")
            .array(ArrayBuilder::input("A", 36).elem16())
            .array(ArrayBuilder::output("X", 16))
            .body(vec![Stmt::for_loop(
                "i",
                0,
                4,
                vec![Stmt::for_loop(
                    "j",
                    0,
                    4,
                    vec![Stmt::for_loop(
                        "k",
                        0,
                        2,
                        vec![Stmt::accum_store(
                            "X",
                            Expr::var("i") * Expr::c(4) + Expr::var("j"),
                            Expr::load(
                                "A",
                                (Expr::var("i") + Expr::var("k")) * Expr::c(6) + Expr::var("j"),
                            ),
                        )],
                    )],
                )],
            )])
    }

    fn count_assigns(body: &[Stmt]) -> usize {
        body.iter()
            .map(|s| match s {
                Stmt::Assign { .. } => 1,
                Stmt::For { body, .. } => count_assigns(body),
                _ => 0,
            })
            .sum()
    }

    #[test]
    fn hoists_row_offsets_out_of_inner_loops() {
        let mut k = nest_kernel();
        apply(&mut k);
        k.validate().unwrap();
        // `i*4` (output row) is invariant in both j and k; `j` reaches
        // into the k loop. At least two hoisted assigns must appear.
        assert!(count_assigns(&k.body) >= 2, "{:#?}", k.body);
    }

    #[test]
    fn hoisting_preserves_semantics() {
        let plain = nest_kernel();
        let mut hoisted = nest_kernel();
        apply(&mut hoisted);
        let inputs = [(
            "A".to_string(),
            (0..36).map(|v| (v * 37 + 5) as i64 & 0xFFFF).collect(),
        )];
        let a = interpret(&plain, &inputs, &["X"]).unwrap();
        let b = interpret(&hoisted, &inputs, &["X"]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cse_reuses_identical_invariants() {
        // Two uses of `w*8` in one loop body collapse to one hoisted var.
        let k = KernelIr::new("cse")
            .array(ArrayBuilder::input("A", 64).elem16())
            .array(ArrayBuilder::output("X", 64))
            .body(vec![Stmt::for_loop(
                "w",
                0,
                8,
                vec![Stmt::for_loop(
                    "i",
                    0,
                    8,
                    vec![Stmt::store(
                        "X",
                        Expr::var("w") * Expr::c(8) + Expr::var("i"),
                        Expr::load("A", Expr::var("w") * Expr::c(8) + Expr::var("i")),
                    )],
                )],
            )]);
        let mut h = k.clone();
        apply(&mut h);
        // Exactly one `w*8` hoist inside the w loop (shared by index and
        // load), nothing hoisted out of the w loop itself.
        assert_eq!(count_assigns(&h.body), 1, "{:#?}", h.body);
    }

    #[test]
    fn does_not_hoist_loads() {
        let k = KernelIr::new("ld")
            .array(ArrayBuilder::input("A", 4).elem16())
            .array(ArrayBuilder::output("X", 4))
            .body(vec![Stmt::for_loop(
                "i",
                0,
                4,
                vec![Stmt::store(
                    "X",
                    Expr::var("i"),
                    Expr::load("A", Expr::c(0)),
                )],
            )]);
        let mut h = k.clone();
        apply(&mut h);
        assert_eq!(count_assigns(&h.body), 0, "loads must stay in place");
    }

    #[test]
    fn does_not_hoist_expressions_using_assigned_scalars() {
        // acc is assigned in the loop: `acc + 1`-style expressions stay.
        let k = KernelIr::new("acc")
            .array(ArrayBuilder::output("X", 1))
            .body(vec![
                Stmt::assign("base", Expr::c(3) + Expr::c(4)),
                Stmt::for_loop(
                    "i",
                    0,
                    4,
                    vec![
                        Stmt::assign("acc", Expr::var("acc") + Expr::var("base")),
                        Stmt::store("X", Expr::c(0), Expr::var("acc")),
                    ],
                ),
            ]);
        let mut h = k.clone();
        let mut counter = 0;
        h.body = hoist_block(std::mem::take(&mut h.body), &mut counter);
        // `acc + base` uses acc (mutated) — not hoisted.
        let Stmt::For { body, .. } = &h.body[1] else {
            panic!("expected loop")
        };
        assert!(matches!(
            &body[0],
            Stmt::Assign {
                value: Expr::Bin { op: BinOp::Add, .. },
                ..
            }
        ));
    }

    #[test]
    fn idempotent() {
        let mut once = nest_kernel();
        apply(&mut once);
        let mut twice = once.clone();
        apply(&mut twice);
        assert_eq!(once, twice);
    }
}
