//! Anytime subword vectorization (paper §III-B).
//!
//! Two statement shapes are vectorizable:
//!
//! * **map** — `X[i] = A[i] ⊕ B[i]` with `⊕` element-wise on the binary
//!   expansion (add, sub, and, or, xor). Arrays move to subword-major
//!   order and each level becomes one loop of packed 32-bit operations
//!   (`ADD_ASV`/`SUB_ASV`; logical ops need no new instructions).
//! * **reduce** — `OUT[w] += A[w*K + i]` in a two-level nest (or a single
//!   loop accumulating into `OUT[0]`). Each level accumulates packed
//!   lanes in a register and commits a horizontal lane-sum per window —
//!   which is why reductions improve in steps (paper §V-A).
//!
//! *Provisioned* vectorization gives every subword a double-width lane so
//! carries survive and the precise result is eventually reached (§V-E).

use std::collections::HashMap;

use crate::error::CompileError;
use crate::ir::{Approx, BinOp, Expr, KernelIr, Stmt};
use crate::layout::{ArrayLayout, ElemType};
use crate::passes::TransformedKernel;

/// Applies anytime subword vectorization.
///
/// # Errors
///
/// Returns [`CompileError::NothingToTransform`] when no vectorizable
/// annotated loop exists, or [`CompileError::BadSubwordGeometry`] when the
/// subword size does not fit the data.
pub fn apply(
    kernel: &KernelIr,
    bits: u8,
    provisioned: bool,
) -> Result<TransformedKernel, CompileError> {
    if ![4u8, 8, 16].contains(&bits) {
        return Err(CompileError::BadSubwordGeometry {
            detail: format!("SWV subword size {bits} must be 4, 8 or 16"),
        });
    }
    // Find the first top-level loop matching either pattern.
    for (i, stmt) in kernel.body.iter().enumerate() {
        if let Some(m) = match_map(kernel, stmt) {
            return build_map(kernel, i, m, bits, provisioned);
        }
        if let Some(r) = match_reduce(kernel, stmt) {
            return build_reduce(kernel, i, r, bits, provisioned);
        }
    }
    Err(CompileError::NothingToTransform {
        technique: format!("swv({bits})"),
        kernel: kernel.name.clone(),
    })
}

// ---- map pattern -----------------------------------------------------------

struct MapMatch {
    out: String,
    a: String,
    b: String,
    op: BinOp,
    len: u32,
    elem: ElemType,
}

fn match_map(kernel: &KernelIr, stmt: &Stmt) -> Option<MapMatch> {
    let Stmt::For {
        var,
        start,
        end,
        body,
    } = stmt
    else {
        return None;
    };
    if *start != 0 || body.len() != 1 {
        return None;
    }
    let Stmt::Store {
        array: out,
        index,
        value,
    } = &body[0]
    else {
        return None;
    };
    if !matches!(index, Expr::Var(v) if v == var) {
        return None;
    }
    let Expr::Bin { op, a, b } = value else {
        return None;
    };
    if !matches!(
        op,
        BinOp::Add | BinOp::Sub | BinOp::And | BinOp::Or | BinOp::Xor
    ) {
        return None;
    }
    let load_of = |e: &Expr| -> Option<String> {
        if let Expr::Load { array, index } = e {
            if matches!(index.as_ref(), Expr::Var(v) if v == var) {
                return Some(array.clone());
            }
        }
        None
    };
    let a = load_of(a)?;
    let b = load_of(b)?;
    let decl_out = kernel.find_array(out)?;
    let decl_a = kernel.find_array(&a)?;
    let decl_b = kernel.find_array(&b)?;
    if decl_out.approx != Approx::AsvOutput
        || decl_a.approx != Approx::AsvInput
        || decl_b.approx != Approx::AsvInput
    {
        return None;
    }
    // The transform vectorizes whole arrays; a loop covering only a
    // prefix would write output elements the original kernel never
    // touched.
    if decl_a.elem.bits != decl_out.elem.bits
        || decl_b.elem.bits != decl_out.elem.bits
        || decl_out.len != *end as u32
        || decl_out.len != decl_a.len
        || decl_a.len != decl_b.len
    {
        return None;
    }
    Some(MapMatch {
        out: out.clone(),
        a,
        b,
        op: *op,
        len: decl_out.len,
        elem: decl_out.elem,
    })
}

fn build_map(
    kernel: &KernelIr,
    split: usize,
    m: MapMatch,
    bits: u8,
    provisioned: bool,
) -> Result<TransformedKernel, CompileError> {
    if bits > m.elem.bits {
        return Err(CompileError::BadSubwordGeometry {
            detail: format!("subword size {bits} exceeds element width {}", m.elem.bits),
        });
    }
    // Logical ops are carry-free: provisioning buys nothing, and packed
    // words are just the full-precision op (§III-B).
    let carries = matches!(m.op, BinOp::Add | BinOp::Sub);
    let provisioned = provisioned && carries;
    let layout = ArrayLayout::subword_major(m.elem, m.len, bits, provisioned)?;
    // Subtraction leaves negative partial lane values; decoding must
    // sign-extend provisioned lanes for the borrow arithmetic to cancel.
    let layout = if m.op == BinOp::Sub && provisioned {
        layout.with_signed_lanes()
    } else {
        layout
    };
    let lane_bits = match layout {
        ArrayLayout::SubwordMajor { lane_bits, .. } => lane_bits,
        _ => unreachable!("subword_major always returns SubwordMajor"),
    };
    let n_sub = layout.levels();
    let wpl = layout.words_per_level();

    let mut body: Vec<Stmt> = kernel.body[..split].to_vec();
    let region = &kernel.body[split + 1..];
    for level in (0..n_sub).rev() {
        let j = format!("j__swv{level}");
        let packed_value = |arr: &str| Expr::LoadPacked {
            array: arr.to_string(),
            level,
            word_index: Box::new(Expr::Var(j.clone())),
        };
        let value = if carries {
            Expr::AsvBin {
                op: m.op,
                a: Box::new(packed_value(&m.a)),
                b: Box::new(packed_value(&m.b)),
                lane_bits,
            }
        } else {
            Expr::Bin {
                op: m.op,
                a: Box::new(packed_value(&m.a)),
                b: Box::new(packed_value(&m.b)),
            }
        };
        body.push(Stmt::For {
            var: j.clone(),
            start: 0,
            end: wpl as i32,
            body: vec![Stmt::StorePacked {
                array: m.out.clone(),
                level,
                word_index: Expr::Var(j),
                value,
            }],
        });
        // Trailing statements re-run per level (see passes module docs).
        body.extend(region.iter().cloned());
        if level > 0 {
            body.push(Stmt::SkimPoint);
        }
    }

    let mut layouts = HashMap::new();
    for name in [&m.out, &m.a, &m.b] {
        layouts.insert(name.clone(), layout);
    }
    let mut out = kernel.clone();
    out.body = body;
    Ok(TransformedKernel {
        kernel: out,
        layouts,
    })
}

// ---- reduce pattern --------------------------------------------------------

struct ReduceMatch {
    out: String,
    input: String,
    /// Outer (window) loop variable and trip count; `None` for a single
    /// accumulation into `OUT[0]`.
    window: Option<(String, u32)>,
    /// Inner trip count (elements per window).
    k: u32,
    elem: ElemType,
}

fn match_reduce(kernel: &KernelIr, stmt: &Stmt) -> Option<ReduceMatch> {
    // Shape 1 (register accumulator — what a real compiler produces):
    //   For w { acc = 0; For i { acc = acc + A[w*K + i] }; OUT[w] += acc }
    if let Stmt::For {
        var: w,
        start: 0,
        end: w_end,
        body,
    } = stmt
    {
        if body.len() == 3 {
            if let (
                Stmt::Assign {
                    var: acc0,
                    value: Expr::Const(0),
                },
                Stmt::For {
                    var: i,
                    start: 0,
                    end: k_end,
                    body: inner,
                },
                Stmt::AccumStore {
                    array: out,
                    index,
                    value: Expr::Var(accv),
                },
            ) = (&body[0], &body[1], &body[2])
            {
                if acc0 == accv && matches!(index, Expr::Var(v) if v == w) && inner.len() == 1 {
                    if let Stmt::Assign { var: acc1, value } = &inner[0] {
                        if acc1 == acc0 {
                            if let Expr::Bin {
                                op: BinOp::Add,
                                a,
                                b,
                            } = value
                            {
                                let load = match (a.as_ref(), b.as_ref()) {
                                    (Expr::Var(v), l) if v == acc0 => Some(l),
                                    (l, Expr::Var(v)) if v == acc0 => Some(l),
                                    _ => None,
                                };
                                if let Some(Expr::Load {
                                    array: input,
                                    index: load_idx,
                                }) = load
                                {
                                    if load_index_is_wk_plus_i(load_idx, w, *k_end as u32, i) {
                                        if let Some(m) = finish_reduce_match(
                                            kernel,
                                            out,
                                            input,
                                            Some((w.as_str(), *w_end as u32)),
                                            *k_end as u32,
                                        ) {
                                            return Some(m);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    // Shape 2: For w { For i { OUT[w] += A[w*K + i] } } (direct memory
    // accumulation).
    if let Stmt::For {
        var: w,
        start: 0,
        end: w_end,
        body,
    } = stmt
    {
        if body.len() == 1 {
            if let Stmt::For {
                var: i,
                start: 0,
                end: k_end,
                body: inner,
            } = &body[0]
            {
                if let Some(m) = match_reduce_core(
                    kernel,
                    inner,
                    i,
                    Some((w.as_str(), *w_end as u32)),
                    *k_end as u32,
                ) {
                    return Some(m);
                }
            }
        }
    }
    // Shape 3: For i { OUT[0] += A[i] }
    if let Stmt::For {
        var: i,
        start: 0,
        end: k_end,
        body,
    } = stmt
    {
        if let Some(m) = match_reduce_core(kernel, body, i, None, *k_end as u32) {
            return Some(m);
        }
    }
    None
}

/// Is `idx` the affine form `w*K + i` (in either operand order)?
fn load_index_is_wk_plus_i(idx: &Expr, w: &str, k: u32, i: &str) -> bool {
    let Expr::Bin {
        op: BinOp::Add,
        a,
        b,
    } = idx
    else {
        return false;
    };
    let is_wk = |e: &Expr| {
        matches!(e, Expr::Bin { op: BinOp::Mul, a, b }
            if (matches!(a.as_ref(), Expr::Var(v) if v == w) && matches!(b.as_ref(), Expr::Const(c) if *c as u32 == k))
            || (matches!(b.as_ref(), Expr::Var(v) if v == w) && matches!(a.as_ref(), Expr::Const(c) if *c as u32 == k)))
    };
    (is_wk(a) && matches!(b.as_ref(), Expr::Var(v) if v == i))
        || (is_wk(b) && matches!(a.as_ref(), Expr::Var(v) if v == i))
}

fn finish_reduce_match(
    kernel: &KernelIr,
    out: &str,
    input: &str,
    window: Option<(&str, u32)>,
    k: u32,
) -> Option<ReduceMatch> {
    let decl_out = kernel.find_array(out)?;
    let decl_in = kernel.find_array(input)?;
    if decl_out.approx != Approx::AsvOutput || decl_in.approx != Approx::AsvInput {
        return None;
    }
    Some(ReduceMatch {
        out: out.to_string(),
        input: input.to_string(),
        window: window.map(|(w, n)| (w.to_string(), n)),
        k,
        elem: decl_in.elem,
    })
}

fn match_reduce_core(
    kernel: &KernelIr,
    inner: &[Stmt],
    i: &str,
    window: Option<(&str, u32)>,
    k: u32,
) -> Option<ReduceMatch> {
    if inner.len() != 1 {
        return None;
    }
    let Stmt::AccumStore {
        array: out,
        index,
        value,
    } = &inner[0]
    else {
        return None;
    };
    let Expr::Load {
        array: input,
        index: load_idx,
    } = value
    else {
        return None;
    };

    // Output index: Var(w) with a window, Const(0) without.
    match window {
        Some((w, _)) => {
            if !matches!(index, Expr::Var(v) if v == w) {
                return None;
            }
            if !load_index_is_wk_plus_i(load_idx, w, k, i) {
                return None;
            }
        }
        None => {
            if !matches!(index, Expr::Const(0)) {
                return None;
            }
            if !matches!(load_idx.as_ref(), Expr::Var(v) if v == i) {
                return None;
            }
        }
    }

    finish_reduce_match(kernel, out, input, window, k)
}

fn build_reduce(
    kernel: &KernelIr,
    split: usize,
    r: ReduceMatch,
    bits: u8,
    provisioned: bool,
) -> Result<TransformedKernel, CompileError> {
    if bits > r.elem.bits {
        return Err(CompileError::BadSubwordGeometry {
            detail: format!("subword size {bits} exceeds element width {}", r.elem.bits),
        });
    }
    let in_layout = ArrayLayout::subword_major(
        r.elem,
        kernel.find_array(&r.input).map(|a| a.len).unwrap_or(0),
        bits,
        provisioned,
    )?;
    let lane_bits = match in_layout {
        ArrayLayout::SubwordMajor { lane_bits, .. } => lane_bits,
        _ => unreachable!("subword_major always returns SubwordMajor"),
    };
    let lanes = in_layout.lanes();
    if !r.k.is_multiple_of(lanes) {
        return Err(CompileError::BadSubwordGeometry {
            detail: format!("window size {} is not a multiple of {lanes} lanes", r.k),
        });
    }
    if provisioned {
        // Provisioned lanes must hold the whole window's worth of
        // subword sums without wrapping, or the precise-at-completion
        // guarantee breaks.
        let summands = (r.k / lanes) as u64;
        let max_sub = (1u64 << bits) - 1;
        let lane_capacity = (1u64 << lane_bits) - 1;
        if summands * max_sub > lane_capacity {
            return Err(CompileError::BadSubwordGeometry {
                detail: format!(
                    "window of {} elements overflows provisioned {lane_bits}-bit lanes                      ({summands} summands of up to {max_sub})",
                    r.k
                ),
            });
        }
    }
    let n_sub = in_layout.levels();
    let windows = r.window.as_ref().map(|(_, n)| *n).unwrap_or(1);
    let out_decl = kernel.find_array(&r.out).expect("matched output exists");
    let out_layout = ArrayLayout::ComponentMajor {
        elem: out_decl.elem,
        len: out_decl.len,
        sub_bits: bits,
        n_sub,
    };

    let acc = "acc__swv";
    let mut body: Vec<Stmt> = kernel.body[..split].to_vec();
    let region = &kernel.body[split + 1..];
    let words_per_window = r.k / lanes;
    for level in (0..n_sub).rev() {
        let w = format!("w__swv{level}");
        let j = format!("j__swv{level}");
        // word index = w * words_per_window + j
        let word_index = Expr::Bin {
            op: BinOp::Add,
            a: Box::new(Expr::Bin {
                op: BinOp::Mul,
                a: Box::new(Expr::Var(w.clone())),
                b: Box::new(Expr::Const(words_per_window as i32)),
            }),
            b: Box::new(Expr::Var(j.clone())),
        };
        let inner = vec![
            Stmt::Assign {
                var: acc.to_string(),
                value: Expr::Const(0),
            },
            Stmt::For {
                var: j,
                start: 0,
                end: words_per_window as i32,
                body: vec![Stmt::Assign {
                    var: acc.to_string(),
                    value: Expr::AsvBin {
                        op: BinOp::Add,
                        a: Box::new(Expr::Var(acc.to_string())),
                        b: Box::new(Expr::LoadPacked {
                            array: r.input.clone(),
                            level,
                            word_index: Box::new(word_index),
                        }),
                        lane_bits,
                    },
                }],
            },
            Stmt::StoreComponent {
                array: r.out.clone(),
                elem_index: Expr::Var(w.clone()),
                level,
                value: Expr::HSum {
                    value: Box::new(Expr::Var(acc.to_string())),
                    lane_bits,
                },
            },
        ];
        body.push(Stmt::For {
            var: w,
            start: 0,
            end: windows as i32,
            body: inner,
        });
        body.extend(region.iter().cloned());
        if level > 0 {
            body.push(Stmt::SkimPoint);
        }
    }

    let mut layouts = HashMap::new();
    layouts.insert(r.input.clone(), in_layout);
    layouts.insert(r.out.clone(), out_layout);
    let mut out = kernel.clone();
    out.body = body;
    Ok(TransformedKernel {
        kernel: out,
        layouts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ArrayBuilder;

    fn matadd_kernel(op_sub: bool) -> KernelIr {
        let value = if op_sub {
            Expr::load("A", Expr::var("i")) - Expr::load("B", Expr::var("i"))
        } else {
            Expr::load("A", Expr::var("i")) + Expr::load("B", Expr::var("i"))
        };
        KernelIr::new("matadd")
            .array(ArrayBuilder::input("A", 16).elem32().asv_input())
            .array(ArrayBuilder::input("B", 16).elem32().asv_input())
            .array(ArrayBuilder::output("X", 16).elem32().asv_output())
            .body(vec![Stmt::for_loop(
                "i",
                0,
                16,
                vec![Stmt::store("X", Expr::var("i"), value)],
            )])
    }

    fn home_kernel() -> KernelIr {
        // OUT[w] += S[w*8 + i], 4 windows of 8 readings.
        KernelIr::new("home")
            .array(ArrayBuilder::input("S", 32).elem16().asv_input())
            .array(ArrayBuilder::output("OUT", 4).asv_output())
            .body(vec![Stmt::for_loop(
                "w",
                0,
                4,
                vec![Stmt::for_loop(
                    "i",
                    0,
                    8,
                    vec![Stmt::accum_store(
                        "OUT",
                        Expr::var("w"),
                        Expr::load("S", Expr::var("w") * Expr::c(8) + Expr::var("i")),
                    )],
                )],
            )])
    }

    fn count_skims(body: &[Stmt]) -> usize {
        body.iter().filter(|s| matches!(s, Stmt::SkimPoint)).count()
    }

    #[test]
    fn map_8bit_on_32bit_elements_makes_four_levels() {
        let t = apply(&matadd_kernel(false), 8, true).unwrap();
        let loops = t
            .kernel
            .body
            .iter()
            .filter(|s| matches!(s, Stmt::For { .. }))
            .count();
        assert_eq!(loops, 4, "32-bit elements / 8-bit subwords = 4 levels");
        assert_eq!(count_skims(&t.kernel.body), 3);
        assert_eq!(t.layouts.len(), 3, "A, B and X all transposed");
    }

    #[test]
    fn provisioned_map_has_double_lanes() {
        let t = apply(&matadd_kernel(false), 8, true).unwrap();
        let layout = t.layouts["X"];
        assert_eq!(
            layout.lanes(),
            2,
            "provisioned 8-bit subwords → 16-bit lanes"
        );
        let t = apply(&matadd_kernel(false), 8, false).unwrap();
        assert_eq!(
            t.layouts["X"].lanes(),
            4,
            "unprovisioned 8-bit → 8-bit lanes"
        );
    }

    #[test]
    fn map_loop_iterates_packed_words() {
        let t = apply(&matadd_kernel(false), 8, false).unwrap();
        // 16 elements, 4 lanes → 4 packed words per level.
        for s in &t.kernel.body {
            if let Stmt::For { end, body, .. } = s {
                assert_eq!(*end, 4);
                assert!(matches!(body[0], Stmt::StorePacked { .. }));
            }
        }
    }

    #[test]
    fn sub_map_uses_asv_and_signed_lanes() {
        let t = apply(&matadd_kernel(true), 8, true).unwrap();
        match t.layouts["X"] {
            ArrayLayout::SubwordMajor { lane_signed, .. } => {
                assert!(
                    lane_signed,
                    "provisioned subtraction decodes lanes as signed"
                )
            }
            other => panic!("expected SubwordMajor, got {other:?}"),
        }
        let mut has_sub_asv = false;
        for s in &t.kernel.body {
            if let Stmt::For { body, .. } = s {
                if let Stmt::StorePacked {
                    value: Expr::AsvBin { op: BinOp::Sub, .. },
                    ..
                } = &body[0]
                {
                    has_sub_asv = true;
                }
            }
        }
        assert!(has_sub_asv);
    }

    #[test]
    fn xor_map_needs_no_asv_instructions() {
        let k = KernelIr::new("xor")
            .array(ArrayBuilder::input("A", 16).elem32().asv_input())
            .array(ArrayBuilder::input("B", 16).elem32().asv_input())
            .array(ArrayBuilder::output("X", 16).elem32().asv_output())
            .body(vec![Stmt::for_loop(
                "i",
                0,
                16,
                vec![Stmt::store(
                    "X",
                    Expr::var("i"),
                    Expr::load("A", Expr::var("i")).xor(Expr::load("B", Expr::var("i"))),
                )],
            )]);
        let t = apply(&k, 8, true).unwrap();
        for s in &t.kernel.body {
            if let Stmt::For { body, .. } = s {
                if let Stmt::StorePacked { value, .. } = &body[0] {
                    assert!(
                        matches!(value, Expr::Bin { op: BinOp::Xor, .. }),
                        "logical packed op uses the plain full-width instruction"
                    );
                }
            }
        }
        // Logical ops ignore provisioning: lanes stay at subword width.
        assert_eq!(t.layouts["X"].lanes(), 4);
    }

    #[test]
    fn reduce_home_pattern() {
        let t = apply(&home_kernel(), 8, true).unwrap();
        // 16-bit elements / 8-bit subwords = 2 levels.
        assert_eq!(count_skims(&t.kernel.body), 1);
        match t.layouts["OUT"] {
            ArrayLayout::ComponentMajor {
                n_sub, sub_bits, ..
            } => {
                assert_eq!(n_sub, 2);
                assert_eq!(sub_bits, 8);
            }
            other => panic!("expected ComponentMajor, got {other:?}"),
        }
        // Each level: window loop containing packed accumulation + HSum
        // commit.
        let mut component_stores = 0;
        for s in &t.kernel.body {
            if let Stmt::For { body, .. } = s {
                for inner in body {
                    if matches!(inner, Stmt::StoreComponent { .. }) {
                        component_stores += 1;
                    }
                }
            }
        }
        assert_eq!(component_stores, 2, "one commit statement per level");
    }

    #[test]
    fn reduce_single_accumulator() {
        let k = KernelIr::new("sum")
            .array(ArrayBuilder::input("A", 16).elem16().asv_input())
            .array(ArrayBuilder::output("T", 1).asv_output())
            .body(vec![Stmt::for_loop(
                "i",
                0,
                16,
                vec![Stmt::accum_store(
                    "T",
                    Expr::c(0),
                    Expr::load("A", Expr::var("i")),
                )],
            )]);
        let t = apply(&k, 8, true).unwrap();
        assert!(matches!(t.layouts["T"], ArrayLayout::ComponentMajor { .. }));
    }

    #[test]
    fn map_on_prefix_loop_is_not_vectorized() {
        // for i in 0..8 over len-16 arrays must NOT match: vectorizing
        // would write X[8..16].
        let k = KernelIr::new("prefix")
            .array(ArrayBuilder::input("A", 16).elem32().asv_input())
            .array(ArrayBuilder::input("B", 16).elem32().asv_input())
            .array(ArrayBuilder::output("X", 16).elem32().asv_output())
            .body(vec![Stmt::for_loop(
                "i",
                0,
                8,
                vec![Stmt::store(
                    "X",
                    Expr::var("i"),
                    Expr::load("A", Expr::var("i")) + Expr::load("B", Expr::var("i")),
                )],
            )]);
        assert!(matches!(
            apply(&k, 8, true),
            Err(CompileError::NothingToTransform { .. })
        ));
    }

    #[test]
    fn provisioned_reduce_rejects_lane_overflow() {
        // 1024-sample windows: 512 summands of up to 255 overflow 16-bit
        // provisioned lanes.
        let k = KernelIr::new("big")
            .array(ArrayBuilder::input("S", 1024).elem16().asv_input())
            .array(ArrayBuilder::output("OUT", 1).asv_output())
            .body(vec![Stmt::for_loop(
                "i",
                0,
                1024,
                vec![Stmt::accum_store(
                    "OUT",
                    Expr::c(0),
                    Expr::load("S", Expr::var("i")),
                )],
            )]);
        assert!(matches!(
            apply(&k, 8, true),
            Err(CompileError::BadSubwordGeometry { .. })
        ));
        // 64-sample windows are fine.
        let k2 = KernelIr::new("small")
            .array(ArrayBuilder::input("S", 64).elem16().asv_input())
            .array(ArrayBuilder::output("OUT", 1).asv_output())
            .body(vec![Stmt::for_loop(
                "i",
                0,
                64,
                vec![Stmt::accum_store(
                    "OUT",
                    Expr::c(0),
                    Expr::load("S", Expr::var("i")),
                )],
            )]);
        assert!(apply(&k2, 8, true).is_ok());
    }

    #[test]
    fn reduce_rejects_window_not_multiple_of_lanes() {
        // K = 6 with 8-bit provisioned (2 lanes) is fine; with 4-bit
        // unprovisioned (8 lanes) it is not.
        let k = KernelIr::new("odd")
            .array(ArrayBuilder::input("S", 12).elem16().asv_input())
            .array(ArrayBuilder::output("OUT", 2).asv_output())
            .body(vec![Stmt::for_loop(
                "w",
                0,
                2,
                vec![Stmt::for_loop(
                    "i",
                    0,
                    6,
                    vec![Stmt::accum_store(
                        "OUT",
                        Expr::var("w"),
                        Expr::load("S", Expr::var("w") * Expr::c(6) + Expr::var("i")),
                    )],
                )],
            )]);
        assert!(apply(&k, 8, true).is_ok());
        assert!(apply(&k, 4, false).is_err());
    }

    #[test]
    fn unannotated_kernel_errors() {
        let k = KernelIr::new("plain")
            .array(ArrayBuilder::input("A", 16).elem32())
            .array(ArrayBuilder::input("B", 16).elem32())
            .array(ArrayBuilder::output("X", 16).elem32())
            .body(vec![Stmt::for_loop(
                "i",
                0,
                16,
                vec![Stmt::store(
                    "X",
                    Expr::var("i"),
                    Expr::load("A", Expr::var("i")) + Expr::load("B", Expr::var("i")),
                )],
            )]);
        assert!(matches!(
            apply(&k, 8, true),
            Err(CompileError::NothingToTransform { .. })
        ));
    }

    #[test]
    fn bad_bits_rejected() {
        assert!(matches!(
            apply(&matadd_kernel(false), 5, true),
            Err(CompileError::BadSubwordGeometry { .. })
        ));
        // 16-bit subwords of 16-bit home data: 1 level, allowed.
        let t = apply(&home_kernel(), 16, false).unwrap();
        assert_eq!(count_skims(&t.kernel.body), 0);
    }

    #[test]
    fn multiplication_map_is_not_vectorizable() {
        // Multiplication is not element-wise on the binary expansion; the
        // matcher must skip it.
        let k = KernelIr::new("mulmap")
            .array(ArrayBuilder::input("A", 16).elem32().asv_input())
            .array(ArrayBuilder::input("B", 16).elem32().asv_input())
            .array(ArrayBuilder::output("X", 16).elem32().asv_output())
            .body(vec![Stmt::for_loop(
                "i",
                0,
                16,
                vec![Stmt::store(
                    "X",
                    Expr::var("i"),
                    Expr::load("A", Expr::var("i")) * Expr::load("B", Expr::var("i")),
                )],
            )]);
        assert!(matches!(
            apply(&k, 8, true),
            Err(CompileError::NothingToTransform { .. })
        ));
    }
}
