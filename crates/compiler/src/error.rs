//! Compiler error type.

use std::fmt;

/// Errors raised while validating, transforming or lowering a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Two arrays share a name.
    DuplicateArray { name: String },
    /// An array has length zero.
    EmptyArray { name: String },
    /// An array's element width is not 8, 16 or 32 bits.
    BadElemWidth { name: String, bits: u8 },
    /// A load or store references an undeclared array.
    UnknownArray { name: String },
    /// A nested loop reuses an enclosing loop variable.
    ShadowedLoopVar { var: String },
    /// Loop bounds are inverted.
    BadLoopBounds { var: String, start: i32, end: i32 },
    /// The subword size does not divide into the data or lane geometry.
    BadSubwordGeometry { detail: String },
    /// The requested technique found no transformable loop (e.g. SWP on a
    /// kernel without an annotated multiply).
    NothingToTransform { technique: String, kernel: String },
    /// The code generator ran out of scratch registers.
    OutOfRegisters { at: String },
    /// A scalar variable is read before any assignment.
    UndefinedVar { var: String },
    /// Lowering produced an inconsistent program (internal error).
    Internal(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::DuplicateArray { name } => write!(f, "duplicate array `{name}`"),
            CompileError::EmptyArray { name } => write!(f, "array `{name}` has length zero"),
            CompileError::BadElemWidth { name, bits } => {
                write!(f, "array `{name}` has unsupported element width {bits}")
            }
            CompileError::UnknownArray { name } => {
                write!(f, "reference to undeclared array `{name}`")
            }
            CompileError::ShadowedLoopVar { var } => {
                write!(f, "loop variable `{var}` shadows an enclosing loop")
            }
            CompileError::BadLoopBounds { var, start, end } => {
                write!(f, "loop `{var}` has inverted bounds {start}..{end}")
            }
            CompileError::BadSubwordGeometry { detail } => {
                write!(f, "subword geometry error: {detail}")
            }
            CompileError::NothingToTransform { technique, kernel } => {
                write!(
                    f,
                    "technique {technique} found nothing to transform in kernel `{kernel}`"
                )
            }
            CompileError::OutOfRegisters { at } => {
                write!(
                    f,
                    "expression too complex, out of scratch registers at {at}"
                )
            }
            CompileError::UndefinedVar { var } => {
                write!(f, "variable `{var}` read before assignment")
            }
            CompileError::Internal(msg) => write!(f, "internal compiler error: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        let e = CompileError::UnknownArray { name: "Q".into() };
        assert!(e.to_string().contains('Q'));
        let e = CompileError::NothingToTransform {
            technique: "swp(8)".into(),
            kernel: "var".into(),
        };
        assert!(e.to_string().contains("swp(8)"));
    }
}
