//! The compile driver: kernel + technique → executable program + layouts.

use std::collections::HashMap;

use wn_isa::Program;

use crate::codegen;
use crate::error::CompileError;
use crate::ir::KernelIr;
use crate::layout::ArrayLayout;
use crate::passes::tasks::TaskLabel;
use crate::passes::{hoist, swp, swv, tasks, TransformedKernel};
use crate::technique::Technique;

/// One contiguous task (or commit) region of a task-decomposed program,
/// resolved to program counters. Regions tile the whole program in
/// order: region `i` spans `[start_pc, end_pc)` and `end_pc` equals the
/// next region's `start_pc` (the final region ends at the program's
/// last instruction). Empty for kernels compiled without
/// [`CompileOptions::task_decompose`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpan {
    /// Label the region entry was bound from (`__task{k}` /
    /// `__commit{k}`).
    pub label: String,
    /// First instruction of the region.
    pub start_pc: u32,
    /// One past the region's last instruction.
    pub end_pc: u32,
    /// Whether the region is a commit sequence (shadow → master copy).
    pub is_commit: bool,
    /// Data words the commit copies back (0 for task bodies).
    pub privatized_words: u64,
}

/// A compiled kernel: the WN-RISC program plus everything the host needs
/// to feed it inputs and read back outputs.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// Kernel name.
    pub name: String,
    /// The technique it was compiled with.
    pub technique: Technique,
    /// The executable program.
    pub program: Program,
    /// Device layout of every array (host-side encode/decode contract).
    pub layouts: HashMap<String, ArrayLayout>,
    /// Names of the arrays the host reads back as outputs, in declaration
    /// order.
    pub outputs: Vec<String>,
    /// Names of the input arrays, in declaration order.
    pub inputs: Vec<String>,
    /// Task regions in program order (empty unless compiled with
    /// [`CompileOptions::task_decompose`]).
    pub tasks: Vec<TaskSpan>,
}

impl CompiledKernel {
    /// The layout of one array.
    ///
    /// # Panics
    ///
    /// Panics if the array does not exist (a harness bug, since array
    /// names come from the kernel itself).
    pub fn layout(&self, array: &str) -> ArrayLayout {
        *self
            .layouts
            .get(array)
            .unwrap_or_else(|| panic!("unknown array `{array}` in kernel `{}`", self.name))
    }

    /// Byte address of an array in device data memory.
    ///
    /// # Panics
    ///
    /// Panics if the array does not exist.
    pub fn addr(&self, array: &str) -> u32 {
        self.program
            .data_symbol(array)
            .unwrap_or_else(|| panic!("no data symbol `{array}` in kernel `{}`", self.name))
    }

    /// Encodes host values for an array into (address, bytes), ready for
    /// `Memory::write_slice`-style injection into the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the array does not exist or `values` has the wrong
    /// length.
    pub fn encode_input(&self, array: &str, values: &[i64]) -> (u32, Vec<u8>) {
        (self.addr(array), self.layout(array).encode(values))
    }

    /// Decodes an array from a device memory image (the full data-memory
    /// byte slice starting at the array's address).
    ///
    /// # Panics
    ///
    /// Panics if the slice is too short.
    pub fn decode_output(&self, array: &str, memory_at_addr: &[u8]) -> Vec<i64> {
        self.layout(array).decode(memory_at_addr)
    }
}

/// Knobs orthogonal to the [`Technique`] choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileOptions {
    /// Suppress the first `skim_min_level` skim points, so an approximate
    /// result only becomes committable once that many subword levels have
    /// completed. `0` (the default) keeps every skim point the passes
    /// emit — the paper's placement, where "the programmer dictates the
    /// minimum significance of the output" (§III-C) by where SKM goes.
    pub skim_min_level: u32,
    /// Run the Alpaca-style task-decomposition pass
    /// ([`crate::passes::tasks`]) and publish the resulting region table
    /// as [`CompiledKernel::tasks`]. Off by default: checkpoint
    /// substrates need no task structure, and the privatization copies
    /// would be pure overhead for them.
    pub task_decompose: bool,
}

/// Compiles a kernel with a technique (the paper's Algorithm 1 pipeline:
/// annotate → transform → lower).
///
/// # Errors
///
/// Returns a [`CompileError`] if the kernel is malformed, the technique
/// does not apply, or lowering fails.
pub fn compile(kernel: &KernelIr, technique: Technique) -> Result<CompiledKernel, CompileError> {
    compile_with(kernel, technique, &CompileOptions::default())
}

/// [`compile`] with explicit [`CompileOptions`].
///
/// # Errors
///
/// Returns a [`CompileError`] if the kernel is malformed, the technique
/// does not apply, or lowering fails.
pub fn compile_with(
    kernel: &KernelIr,
    technique: Technique,
    options: &CompileOptions,
) -> Result<CompiledKernel, CompileError> {
    kernel.validate()?;
    let mut transformed: TransformedKernel = match technique {
        Technique::Precise => TransformedKernel::identity(kernel),
        Technique::Swp {
            bits,
            vectorized_loads,
        } => swp::apply(kernel, bits, vectorized_loads)?,
        Technique::Swv { bits, provisioned } => swv::apply(kernel, bits, provisioned)?,
    };
    // -O1-style loop-invariant hoisting, applied to every build so that
    // precise baselines and anytime variants are compared fairly.
    hoist::apply(&mut transformed.kernel);
    if options.skim_min_level > 0 {
        let mut remaining = options.skim_min_level;
        suppress_skims(&mut transformed.kernel.body, &mut remaining);
    }

    // Complete the layout map: arrays untouched by the pass stay
    // row-major.
    let mut layouts = transformed.layouts;
    for a in &kernel.arrays {
        layouts
            .entry(a.name.clone())
            .or_insert(ArrayLayout::RowMajor {
                elem: a.elem,
                len: a.len,
            });
    }

    let task_labels = if options.task_decompose {
        tasks::apply(&mut transformed.kernel, &mut layouts)
    } else {
        Vec::new()
    };

    let program = codegen::lower(&transformed.kernel, &layouts)?;
    let tasks = resolve_task_spans(&program, &task_labels)?;
    Ok(CompiledKernel {
        name: kernel.name.clone(),
        technique,
        program,
        layouts,
        outputs: kernel
            .arrays
            .iter()
            .filter(|a| a.is_output)
            .map(|a| a.name.clone())
            .collect(),
        inputs: kernel
            .arrays
            .iter()
            .filter(|a| !a.is_output)
            .map(|a| a.name.clone())
            .collect(),
        tasks,
    })
}

/// Resolves the task pass's boundary labels to pc spans. Regions tile
/// the program: each ends where the next begins, the last at the
/// program's end (so the `HALT` a skim jump lands on always falls in
/// the final region).
fn resolve_task_spans(
    program: &Program,
    labels: &[TaskLabel],
) -> Result<Vec<TaskSpan>, CompileError> {
    let mut spans = Vec::with_capacity(labels.len());
    for (i, l) in labels.iter().enumerate() {
        let start_pc = program
            .code_symbol(&l.label)
            .ok_or_else(|| CompileError::Internal(format!("unbound task label `{}`", l.label)))?;
        let end_pc = match labels.get(i + 1) {
            Some(next) => program.code_symbol(&next.label).ok_or_else(|| {
                CompileError::Internal(format!("unbound task label `{}`", next.label))
            })?,
            None => program.instrs.len() as u32,
        };
        if end_pc < start_pc {
            return Err(CompileError::Internal(format!(
                "task regions out of order at `{}`",
                l.label
            )));
        }
        spans.push(TaskSpan {
            label: l.label.clone(),
            start_pc,
            end_pc,
            is_commit: l.is_commit,
            privatized_words: l.privatized_words,
        });
    }
    Ok(spans)
}

/// Removes the first `remaining` skim points in program order.
fn suppress_skims(body: &mut Vec<crate::ir::Stmt>, remaining: &mut u32) {
    use crate::ir::Stmt;
    body.retain_mut(|stmt| match stmt {
        Stmt::SkimPoint if *remaining > 0 => {
            *remaining -= 1;
            false
        }
        Stmt::For { body, .. } => {
            suppress_skims(body, remaining);
            true
        }
        _ => true,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ArrayBuilder, Expr, Stmt};

    fn listing1() -> KernelIr {
        KernelIr::new("listing1")
            .array(ArrayBuilder::input("A", 8).elem16().asp_input())
            .array(ArrayBuilder::input("F", 8).elem16())
            .array(ArrayBuilder::output("X", 8).asp_output())
            .body(vec![Stmt::for_loop(
                "i",
                0,
                8,
                vec![Stmt::accum_store(
                    "X",
                    Expr::var("i"),
                    Expr::load("A", Expr::var("i")) * Expr::load("F", Expr::var("i")),
                )],
            )])
    }

    fn count_skm(c: &CompiledKernel) -> usize {
        c.program
            .instrs
            .iter()
            .filter(|i| matches!(i, wn_isa::Instr::Skm { .. }))
            .count()
    }

    #[test]
    fn skim_min_level_suppresses_early_skims() {
        let all = compile(&listing1(), Technique::swp(4)).unwrap();
        let baseline = count_skm(&all);
        assert_eq!(baseline, 3, "4 levels of 16-bit data emit 3 skim points");
        for min in 1..=3u32 {
            let opts = CompileOptions {
                skim_min_level: min,
                ..CompileOptions::default()
            };
            let c = compile_with(&listing1(), Technique::swp(4), &opts).unwrap();
            assert_eq!(count_skm(&c) as u32, baseline as u32 - min);
            c.program.validate().unwrap();
        }
    }

    #[test]
    fn skim_min_level_beyond_count_leaves_none() {
        let opts = CompileOptions {
            skim_min_level: 99,
            ..CompileOptions::default()
        };
        let c = compile_with(&listing1(), Technique::swp(4), &opts).unwrap();
        assert_eq!(count_skm(&c), 0);
    }

    #[test]
    fn skim_min_level_zero_is_default_compile() {
        let a = compile(&listing1(), Technique::swp(8)).unwrap();
        let b = compile_with(&listing1(), Technique::swp(8), &CompileOptions::default()).unwrap();
        assert_eq!(a.program.instrs, b.program.instrs);
    }

    #[test]
    fn precise_compiles_with_row_major_layouts() {
        let c = compile(&listing1(), Technique::Precise).unwrap();
        assert_eq!(c.inputs, vec!["A", "F"]);
        assert_eq!(c.outputs, vec!["X"]);
        for name in ["A", "F", "X"] {
            assert!(matches!(c.layout(name), ArrayLayout::RowMajor { .. }));
        }
        c.program.validate().unwrap();
    }

    #[test]
    fn swp_compiles_and_grows_code() {
        let precise = compile(&listing1(), Technique::Precise).unwrap();
        let swp8 = compile(&listing1(), Technique::swp(8)).unwrap();
        let swp4 = compile(&listing1(), Technique::swp(4)).unwrap();
        assert!(swp8.program.instrs.len() > precise.program.instrs.len());
        assert!(swp4.program.instrs.len() > swp8.program.instrs.len());
        // The paper reports only ~1 KB of code growth; our kernels are far
        // smaller, but growth must stay modest (< 5x here).
        assert!(swp4.program.code_size_bytes() < 5 * precise.program.code_size_bytes());
    }

    #[test]
    fn encode_decode_via_compiled_kernel() {
        let c = compile(&listing1(), Technique::Precise).unwrap();
        let (addr, bytes) = c.encode_input("A", &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(bytes.len(), 16);
        let decoded = c.decode_output("A", &bytes);
        assert_eq!(decoded, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        let _ = addr;
    }

    #[test]
    fn arrays_do_not_overlap() {
        for technique in [Technique::Precise, Technique::swp(8), Technique::swp(4)] {
            let c = compile(&listing1(), technique).unwrap();
            let mut regions: Vec<(u32, u32, &str)> = c
                .layouts
                .iter()
                .map(|(name, l)| (c.addr(name), l.byte_size(), name.as_str()))
                .collect();
            regions.sort_unstable();
            for w in regions.windows(2) {
                assert!(
                    w[0].0 + w[0].1 <= w[1].0,
                    "arrays {} and {} overlap under {technique}",
                    w[0].2,
                    w[1].2
                );
            }
        }
    }

    #[test]
    fn swp_on_unannotated_kernel_fails() {
        let k = KernelIr::new("plain")
            .array(ArrayBuilder::output("X", 1))
            .body(vec![Stmt::store("X", Expr::c(0), Expr::c(1))]);
        assert!(matches!(
            compile(&k, Technique::swp(8)),
            Err(CompileError::NothingToTransform { .. })
        ));
    }
}
