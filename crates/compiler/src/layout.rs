//! Data layouts: the contract between device memory and the host.
//!
//! Anytime subword vectorization requires inputs and outputs in
//! **subword-major order** (paper Fig. 7): all most-significant subwords
//! of an array are contiguous, then the next level, and so on. The paper
//! notes that sensors can transpose incoming data "statically" and that
//! transposing back is usually unnecessary — so encoding happens on the
//! host/sensor side (here: [`ArrayLayout::encode`]) and the experiment
//! harness decodes outputs ([`ArrayLayout::decode`]).

use crate::error::CompileError;

/// Element storage type of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElemType {
    /// Width in bits: 8, 16 or 32.
    pub bits: u8,
    /// Whether host-side decoding sign-extends.
    pub signed: bool,
}

impl ElemType {
    /// Unsigned 32-bit.
    pub const fn u32() -> ElemType {
        ElemType {
            bits: 32,
            signed: false,
        }
    }

    /// Signed 32-bit.
    pub const fn i32() -> ElemType {
        ElemType {
            bits: 32,
            signed: true,
        }
    }

    /// Unsigned 16-bit.
    pub const fn u16() -> ElemType {
        ElemType {
            bits: 16,
            signed: false,
        }
    }

    /// Element size in bytes.
    pub const fn bytes(self) -> u32 {
        (self.bits / 8) as u32
    }

    /// Truncates a host value to the element width (two's complement).
    pub fn truncate(self, v: i64) -> u64 {
        let mask = if self.bits == 32 {
            u32::MAX as u64
        } else {
            (1u64 << self.bits) - 1
        };
        (v as u64) & mask
    }

    /// Interprets a raw element value as a host value, sign-extending when
    /// signed.
    pub fn interpret(self, raw: u64) -> i64 {
        if self.signed {
            let sh = 64 - self.bits as u32;
            ((raw << sh) as i64) >> sh
        } else {
            raw as i64
        }
    }
}

/// How an array is laid out in device data memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayLayout {
    /// Conventional element order.
    RowMajor {
        /// Element type.
        elem: ElemType,
        /// Element count.
        len: u32,
    },
    /// Subword-major (Fig. 7): level-`k` subwords of all elements are
    /// packed into consecutive 32-bit words, one subword per
    /// `lane_bits`-wide lane. *Provisioned* layouts (§V-E) use
    /// `lane_bits == 2 × sub_bits` so carry bits fit; unprovisioned use
    /// `lane_bits == sub_bits`.
    SubwordMajor {
        /// Element type.
        elem: ElemType,
        /// Element count.
        len: u32,
        /// Subword width in bits.
        sub_bits: u8,
        /// Lane width in bits (equal to or double `sub_bits`).
        lane_bits: u8,
        /// Interpret lanes as signed two's-complement values when
        /// decoding. Set for provisioned *subtraction*, whose partial
        /// lane results are negative borrow-bearing values.
        lane_signed: bool,
    },
    /// One 32-bit component per subword level per element, element-major
    /// (used for SWV reduction outputs: each level's partial sum is a full
    /// 32-bit value).
    ComponentMajor {
        /// Element type of the logical value.
        elem: ElemType,
        /// Element count.
        len: u32,
        /// Subword width the components correspond to.
        sub_bits: u8,
        /// Number of components (subword levels) per element.
        n_sub: u8,
    },
}

impl ArrayLayout {
    /// Builds a subword-major layout, validating the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::BadSubwordGeometry`] unless `sub_bits`
    /// divides the element width, `lane_bits` is `sub_bits` or
    /// `2 × sub_bits`, 32 is a multiple of `lane_bits`, and `len` is a
    /// multiple of the lane count.
    pub fn subword_major(
        elem: ElemType,
        len: u32,
        sub_bits: u8,
        provisioned: bool,
    ) -> Result<ArrayLayout, CompileError> {
        let lane_bits = if provisioned { sub_bits * 2 } else { sub_bits };
        if sub_bits == 0 || !elem.bits.is_multiple_of(sub_bits) {
            return Err(CompileError::BadSubwordGeometry {
                detail: format!(
                    "sub_bits {sub_bits} does not divide element width {}",
                    elem.bits
                ),
            });
        }
        if lane_bits == 0 || 32 % lane_bits as u32 != 0 {
            return Err(CompileError::BadSubwordGeometry {
                detail: format!("lane width {lane_bits} does not divide 32"),
            });
        }
        let lanes = 32 / lane_bits as u32;
        if !len.is_multiple_of(lanes) {
            return Err(CompileError::BadSubwordGeometry {
                detail: format!("array length {len} is not a multiple of {lanes} lanes"),
            });
        }
        Ok(ArrayLayout::SubwordMajor {
            elem,
            len,
            sub_bits,
            lane_bits,
            lane_signed: false,
        })
    }

    /// Returns this layout with signed lane decoding enabled (see
    /// [`ArrayLayout::SubwordMajor::lane_signed`]).
    ///
    /// # Panics
    ///
    /// Panics when applied to a non-subword-major layout.
    pub fn with_signed_lanes(self) -> ArrayLayout {
        match self {
            ArrayLayout::SubwordMajor {
                elem,
                len,
                sub_bits,
                lane_bits,
                ..
            } => ArrayLayout::SubwordMajor {
                elem,
                len,
                sub_bits,
                lane_bits,
                lane_signed: true,
            },
            other => panic!("with_signed_lanes on non-subword-major layout {other:?}"),
        }
    }

    /// Element count.
    pub fn len(&self) -> u32 {
        match *self {
            ArrayLayout::RowMajor { len, .. }
            | ArrayLayout::SubwordMajor { len, .. }
            | ArrayLayout::ComponentMajor { len, .. } => len,
        }
    }

    /// True when the array holds no elements (never after validation).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The logical element type.
    pub fn elem(&self) -> ElemType {
        match *self {
            ArrayLayout::RowMajor { elem, .. }
            | ArrayLayout::SubwordMajor { elem, .. }
            | ArrayLayout::ComponentMajor { elem, .. } => elem,
        }
    }

    /// Total bytes the array occupies in device memory.
    pub fn byte_size(&self) -> u32 {
        match *self {
            ArrayLayout::RowMajor { elem, len } => len * elem.bytes(),
            ArrayLayout::SubwordMajor {
                elem,
                len,
                sub_bits,
                lane_bits,
                ..
            } => {
                let n_sub = (elem.bits / sub_bits) as u32;
                let lanes = 32 / lane_bits as u32;
                n_sub * (len / lanes) * 4
            }
            ArrayLayout::ComponentMajor { len, n_sub, .. } => len * n_sub as u32 * 4,
        }
    }

    /// Number of subword levels (1 for row-major).
    pub fn levels(&self) -> u8 {
        match *self {
            ArrayLayout::RowMajor { .. } => 1,
            ArrayLayout::SubwordMajor { elem, sub_bits, .. } => elem.bits / sub_bits,
            ArrayLayout::ComponentMajor { n_sub, .. } => n_sub,
        }
    }

    /// Lanes per packed word (subword-major only).
    pub fn lanes(&self) -> u32 {
        match *self {
            ArrayLayout::SubwordMajor { lane_bits, .. } => 32 / lane_bits as u32,
            _ => 1,
        }
    }

    /// Packed 32-bit words per subword level (subword-major only).
    pub fn words_per_level(&self) -> u32 {
        match *self {
            ArrayLayout::SubwordMajor { len, .. } => len / self.lanes(),
            _ => 0,
        }
    }

    /// Encodes host values into the device byte image of this layout.
    ///
    /// Values are truncated to the element width. For subword-major
    /// layouts each subword is zero-extended into its lane; for
    /// component-major layouts the components are the subwords themselves
    /// (so `decode(encode(v)) == v`).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the layout's length.
    pub fn encode(&self, values: &[i64]) -> Vec<u8> {
        assert_eq!(values.len() as u32, self.len(), "value count mismatch");
        let mut bytes = vec![0u8; self.byte_size() as usize];
        match *self {
            ArrayLayout::RowMajor { elem, .. } => {
                for (i, &v) in values.iter().enumerate() {
                    let raw = elem.truncate(v);
                    let off = i * elem.bytes() as usize;
                    match elem.bits {
                        8 => bytes[off] = raw as u8,
                        16 => bytes[off..off + 2].copy_from_slice(&(raw as u16).to_le_bytes()),
                        _ => bytes[off..off + 4].copy_from_slice(&(raw as u32).to_le_bytes()),
                    }
                }
            }
            ArrayLayout::SubwordMajor {
                elem,
                sub_bits,
                lane_bits,
                ..
            } => {
                let n_sub = (elem.bits / sub_bits) as u32;
                let lanes = 32 / lane_bits as u32;
                let wpl = self.words_per_level();
                let sub_mask = (1u64 << sub_bits) - 1;
                for k in 0..n_sub {
                    for j in 0..wpl {
                        let mut word = 0u32;
                        for l in 0..lanes {
                            let e = (j * lanes + l) as usize;
                            let raw = elem.truncate(values[e]);
                            let sub = (raw >> (k * sub_bits as u32)) & sub_mask;
                            word |= (sub as u32) << (l * lane_bits as u32);
                        }
                        let off = (4 * (k * wpl + j)) as usize;
                        bytes[off..off + 4].copy_from_slice(&word.to_le_bytes());
                    }
                }
            }
            ArrayLayout::ComponentMajor {
                elem,
                sub_bits,
                n_sub,
                ..
            } => {
                let sub_mask = (1u64 << sub_bits) - 1;
                for (e, &v) in values.iter().enumerate() {
                    let raw = elem.truncate(v);
                    for k in 0..n_sub as usize {
                        let comp = ((raw >> (k as u32 * sub_bits as u32)) & sub_mask) as u32;
                        let off = 4 * (e * n_sub as usize + k);
                        bytes[off..off + 4].copy_from_slice(&comp.to_le_bytes());
                    }
                }
            }
        }
        bytes
    }

    /// Decodes a device byte image back into host values.
    ///
    /// Subword-major lanes are summed with their significance shifts, so
    /// provisioned carry bits are recovered; the result is reduced
    /// modulo the element width and sign-extended when signed — exactly
    /// the value the equivalent precise kernel would have produced.
    /// Component-major values are reduced modulo 32 bits (the device's
    /// accumulator width).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than the layout's byte size.
    pub fn decode(&self, bytes: &[u8]) -> Vec<i64> {
        assert!(
            bytes.len() >= self.byte_size() as usize,
            "byte image too short: {} < {}",
            bytes.len(),
            self.byte_size()
        );
        let read_u32 = |off: usize| {
            u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
        };
        match *self {
            ArrayLayout::RowMajor { elem, len } => (0..len as usize)
                .map(|i| {
                    let off = i * elem.bytes() as usize;
                    let raw = match elem.bits {
                        8 => bytes[off] as u64,
                        16 => u16::from_le_bytes([bytes[off], bytes[off + 1]]) as u64,
                        _ => read_u32(off) as u64,
                    };
                    elem.interpret(raw)
                })
                .collect(),
            ArrayLayout::SubwordMajor {
                elem,
                len,
                sub_bits,
                lane_bits,
                lane_signed,
            } => {
                let n_sub = (elem.bits / sub_bits) as u32;
                let lanes = 32 / lane_bits as u32;
                let wpl = self.words_per_level();
                let lane_mask = if lane_bits == 32 {
                    u32::MAX
                } else {
                    (1u32 << lane_bits) - 1
                };
                (0..len as usize)
                    .map(|e| {
                        let j = e as u32 / lanes;
                        let l = e as u32 % lanes;
                        let mut acc = 0i64;
                        for k in 0..n_sub {
                            let word = read_u32((4 * (k * wpl + j)) as usize);
                            let lane = (word >> (l * lane_bits as u32)) & lane_mask;
                            let lane = if lane_signed {
                                let sh = 64 - lane_bits as u32;
                                ((lane as u64) << sh) as i64 >> sh
                            } else {
                                lane as i64
                            };
                            acc = acc.wrapping_add(lane << (k * sub_bits as u32));
                        }
                        elem.interpret(elem.truncate(acc))
                    })
                    .collect()
            }
            ArrayLayout::ComponentMajor {
                elem,
                len,
                sub_bits,
                n_sub,
            } => (0..len as usize)
                .map(|e| {
                    let mut acc = 0u64;
                    for k in 0..n_sub as usize {
                        let comp = read_u32(4 * (e * n_sub as usize + k));
                        acc = acc.wrapping_add((comp as u64) << (k as u32 * sub_bits as u32));
                    }
                    // The device accumulator is 32-bit; narrower element
                    // types additionally wrap (and sign-extend) at their
                    // own width, mirroring the storing instruction.
                    let raw = acc & u32::MAX as u64;
                    elem.interpret(elem.truncate(raw as i64))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn elem_truncate_interpret() {
        let u16t = ElemType::u16();
        assert_eq!(u16t.truncate(-1), 0xFFFF);
        assert_eq!(u16t.interpret(0xFFFF), 0xFFFF);
        let i16t = ElemType {
            bits: 16,
            signed: true,
        };
        assert_eq!(i16t.interpret(0xFFFF), -1);
        let i32t = ElemType::i32();
        assert_eq!(i32t.interpret(0xFFFF_FFFF), -1);
    }

    #[test]
    fn row_major_roundtrip() {
        let layout = ArrayLayout::RowMajor {
            elem: ElemType::u16(),
            len: 4,
        };
        let values = [1i64, 0xABCD, 0, 0x7FFF];
        let bytes = layout.encode(&values);
        assert_eq!(bytes.len(), 8);
        assert_eq!(layout.decode(&bytes), values);
    }

    #[test]
    fn subword_major_geometry_matches_fig7() {
        // 8 elements of 16 bits, 8-bit subwords, unprovisioned: 2 levels,
        // 4 lanes, 2 words per level.
        let layout = ArrayLayout::subword_major(ElemType::u16(), 8, 8, false).unwrap();
        assert_eq!(layout.levels(), 2);
        assert_eq!(layout.lanes(), 4);
        assert_eq!(layout.words_per_level(), 2);
        assert_eq!(layout.byte_size(), 16);

        let values: Vec<i64> = (0..8).map(|i| 0x0100 * i + i).collect(); // hi=lo=i
        let bytes = layout.encode(&values);
        // Level 0 (LSBs) word 0 packs elements 0..4's low bytes.
        assert_eq!(&bytes[0..4], &[0, 1, 2, 3]);
        // Level 1 (MSBs) starts at words_per_level*4 = 8.
        assert_eq!(&bytes[8..12], &[0, 1, 2, 3]);
        assert_eq!(layout.decode(&bytes), values);
    }

    #[test]
    fn provisioned_lanes_are_double_width() {
        let layout = ArrayLayout::subword_major(ElemType::u16(), 4, 8, true).unwrap();
        assert_eq!(
            layout.lanes(),
            2,
            "16-bit lanes for provisioned 8-bit subwords"
        );
        assert_eq!(layout.levels(), 2);
        let values = [0x1234i64, 0x00FF, 0xFF00, 0xABCD];
        let bytes = layout.encode(&values);
        assert_eq!(layout.decode(&bytes), values);
    }

    #[test]
    fn provisioned_decode_recovers_carries() {
        // Simulate the device summing lane-wise with carries kept inside
        // 16-bit lanes: 0xFF + 0x01 in the low level must carry into the
        // decoded value rather than being lost.
        let layout = ArrayLayout::subword_major(ElemType::u16(), 2, 8, true).unwrap();
        // Manually build an image whose low-level lane holds 0x100
        // (a carry-bearing partial sum) and high level holds 0x12.
        let mut bytes = vec![0u8; layout.byte_size() as usize];
        // level 0, word 0: lanes (16-bit): elem0 = 0x0100, elem1 = 0.
        bytes[0..4].copy_from_slice(&0x0000_0100u32.to_le_bytes());
        // level 1, word 0: elem0 = 0x12.
        bytes[4..8].copy_from_slice(&0x0000_0012u32.to_le_bytes());
        let decoded = layout.decode(&bytes);
        assert_eq!(decoded[0], 0x12 * 256 + 0x100);
    }

    #[test]
    fn component_major_roundtrip() {
        let layout = ArrayLayout::ComponentMajor {
            elem: ElemType::u32(),
            len: 3,
            sub_bits: 4,
            n_sub: 4,
        };
        let values = [0xABCDi64, 0x1234, 0xFFFF];
        let bytes = layout.encode(&values);
        assert_eq!(bytes.len(), 3 * 4 * 4);
        assert_eq!(layout.decode(&bytes), values);
    }

    #[test]
    fn geometry_validation() {
        // 5 does not divide 16.
        assert!(ArrayLayout::subword_major(ElemType::u16(), 8, 5, false).is_err());
        // 7 elements not a multiple of 4 lanes.
        assert!(ArrayLayout::subword_major(ElemType::u16(), 7, 8, false).is_err());
        // provisioned 16-bit subwords would need 32-bit lanes: allowed (1 lane).
        let l = ArrayLayout::subword_major(ElemType::u16(), 4, 16, true).unwrap();
        assert_eq!(l.lanes(), 1);
    }

    #[test]
    fn signed_component_decode() {
        let layout = ArrayLayout::ComponentMajor {
            elem: ElemType::i32(),
            len: 1,
            sub_bits: 8,
            n_sub: 4,
        };
        let values = [-5i64];
        let bytes = layout.encode(&values);
        assert_eq!(layout.decode(&bytes), values);
    }

    #[test]
    fn narrow_signed_component_decode() {
        // 16-bit signed elements in component-major form must round-trip
        // negatives through the element width, not the 32-bit accumulator.
        let layout = ArrayLayout::ComponentMajor {
            elem: ElemType {
                bits: 16,
                signed: true,
            },
            len: 2,
            sub_bits: 8,
            n_sub: 2,
        };
        let values = [-5i64, 1234];
        let bytes = layout.encode(&values);
        assert_eq!(layout.decode(&bytes), values);
    }

    fn arb_elem() -> impl Strategy<Value = ElemType> {
        (prop_oneof![Just(8u8), Just(16), Just(32)], any::<bool>())
            .prop_map(|(bits, signed)| ElemType { bits, signed })
    }

    proptest! {
        #[test]
        fn row_major_roundtrip_prop(elem in arb_elem(), values in proptest::collection::vec(any::<i64>(), 1..32)) {
            let layout = ArrayLayout::RowMajor { elem, len: values.len() as u32 };
            let expect: Vec<i64> = values.iter().map(|&v| elem.interpret(elem.truncate(v))).collect();
            prop_assert_eq!(layout.decode(&layout.encode(&values)), expect);
        }

        #[test]
        fn subword_major_roundtrip_prop(
            sub_bits in prop_oneof![Just(4u8), Just(8)],
            provisioned in any::<bool>(),
            values in proptest::collection::vec(0i64..0x1_0000, 8..=8),
        ) {
            let elem = ElemType::u16();
            let layout = ArrayLayout::subword_major(elem, 8, sub_bits, provisioned).unwrap();
            prop_assert_eq!(layout.decode(&layout.encode(&values)), values);
        }

        #[test]
        fn subword_major_32bit_roundtrip(
            sub_bits in prop_oneof![Just(4u8), Just(8), Just(16)],
            values in proptest::collection::vec(any::<u32>().prop_map(|v| v as i64), 16..=16),
        ) {
            let elem = ElemType::u32();
            let layout = ArrayLayout::subword_major(elem, 16, sub_bits, false).unwrap();
            prop_assert_eq!(layout.decode(&layout.encode(&values)), values);
        }
    }
}
