//! # wn-compiler — kernel IR, anytime transformation passes, and codegen
//!
//! The What's Next paper takes a hardware/software co-design approach: the
//! programmer annotates approximable inputs and outputs with `#pragma asp`
//! / `#pragma asv` directives (Listings 1 and 3), and a compiler pass at
//! the IR level (Algorithm 1) performs **loop fission**, replacing
//! long-latency operations with their anytime subword equivalents and
//! inserting **skim points** after each subword stage.
//!
//! This crate is that compiler:
//!
//! * [`ir`] — a small structured kernel IR: constant-bound counted loops,
//!   array loads/stores, arithmetic expressions, and per-array
//!   approximability annotations ([`ir::Approx`]) mirroring the paper's
//!   pragmas.
//! * [`passes`] — the anytime transformations:
//!   [`passes::swp`] (anytime subword pipelining, §III-A) and
//!   [`passes::swv`] (anytime subword vectorization, §III-B), both
//!   implemented as loop fission over the annotated loop nest, most
//!   significant subword first, with skim points between stages.
//! * [`layout`] — the data-layout contract between device and host:
//!   row-major, **subword-major** (Fig. 7) and component-major layouts
//!   with host-side encode/decode.
//! * [`codegen`] — lowering to WN-RISC ([`wn_isa::Program`]), with
//!   strength-reduced constant multiplies so that only *data* multiplies
//!   use the iterative multiplier.
//! * [`compile`](crate::compile()) — the driver: takes a kernel and a
//!   [`Technique`] and produces a [`CompiledKernel`].
//!
//! ```
//! use wn_compiler::ir::{ArrayBuilder, Expr, KernelIr, Stmt};
//! use wn_compiler::{compile, Technique};
//!
//! // X[i] = A[i] * F[i] over 8 elements, A approximable (Listing 1).
//! let kernel = KernelIr::new("saxpy-ish")
//!     .array(ArrayBuilder::input("A", 8).elem16().asp_input())
//!     .array(ArrayBuilder::input("F", 8).elem16())
//!     .array(ArrayBuilder::output("X", 8).elem32().asp_output())
//!     .body(vec![Stmt::for_loop(
//!         "i",
//!         0,
//!         8,
//!         vec![Stmt::accum_store(
//!             "X",
//!             Expr::var("i"),
//!             Expr::load("A", Expr::var("i")) * Expr::load("F", Expr::var("i")),
//!         )],
//!     )]);
//! let precise = compile(&kernel, Technique::Precise)?;
//! let anytime = compile(&kernel, Technique::swp(8))?;
//! assert!(anytime.program.instrs.len() > precise.program.instrs.len());
//! # Ok::<(), wn_compiler::CompileError>(())
//! ```

pub mod blockgraph;
pub mod codegen;
pub mod compile;
pub mod error;
pub mod interp;
pub mod ir;
pub mod layout;
pub mod passes;
pub mod technique;

pub use blockgraph::{Block, BlockGraph};
pub use compile::{compile, compile_with, CompileOptions, CompiledKernel, TaskSpan};
pub use error::CompileError;
pub use layout::{ArrayLayout, ElemType};
pub use technique::Technique;
