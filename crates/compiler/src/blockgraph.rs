//! Static basic-block graph over a compiled [`Program`].
//!
//! The analytic predictor (wn-analyze) needs a *static* view of the
//! kernel's control structure with per-block cycle costs: how many
//! cycles a device executes between points where an outage can
//! interleave with substrate work. The block boundaries here mirror the
//! simulator's fused-block rule exactly (stores, branches, `SKM`,
//! `HALT`, and static PC writes terminate a block; the memo unit is
//! treated as disabled, since the predictor declares memoized cohorts
//! unsupported) plus the classic leader rule: any static branch or skim
//! target starts a fresh block, so a block is entered only at its head.
//!
//! Costs are priced by a caller-supplied `Fn(&Instr) -> u64` so this
//! crate stays independent of the simulator's `CycleModel`; wn-analyze
//! plugs in the PR 4 base-cost table.

use std::collections::HashMap;

use wn_isa::{Instr, Program, Reg};

/// True when `instr` statically writes the PC through its destination
/// register — an indirect control transfer. Mirrors the simulator's
/// block-builder terminator rule; kept in sync by the cross-check test
/// in wn-analyze (a fault-free tape never observes a block-interior
/// control transfer).
fn writes_pc(instr: &Instr) -> bool {
    let rd = match *instr {
        Instr::Ldr { rt, .. }
        | Instr::Ldrh { rt, .. }
        | Instr::Ldrb { rt, .. }
        | Instr::LdrReg { rt, .. }
        | Instr::LdrhReg { rt, .. }
        | Instr::LdrshReg { rt, .. }
        | Instr::LdrbReg { rt, .. } => rt,
        Instr::MovImm { rd, .. }
        | Instr::Mov { rd, .. }
        | Instr::Mvn { rd, .. }
        | Instr::Add { rd, .. }
        | Instr::AddImm { rd, .. }
        | Instr::Sub { rd, .. }
        | Instr::SubImm { rd, .. }
        | Instr::Rsb { rd, .. }
        | Instr::Mul { rd, .. }
        | Instr::MulAsp { rd, .. }
        | Instr::AddAsv { rd, .. }
        | Instr::SubAsv { rd, .. }
        | Instr::And { rd, .. }
        | Instr::Orr { rd, .. }
        | Instr::Eor { rd, .. }
        | Instr::Bic { rd, .. }
        | Instr::AndImm { rd, .. }
        | Instr::LslImm { rd, .. }
        | Instr::LsrImm { rd, .. }
        | Instr::AsrImm { rd, .. }
        | Instr::LslReg { rd, .. }
        | Instr::LsrReg { rd, .. }
        | Instr::AsrReg { rd, .. } => rd,
        _ => return false,
    };
    rd == Reg::PC
}

/// True when `instr` must end a block — the simulator's fused-block
/// rule with the memo unit disabled.
pub fn terminates_block(instr: &Instr) -> bool {
    instr.is_store()
        || instr.is_branch()
        || matches!(instr, Instr::Skm { .. } | Instr::Halt)
        || writes_pc(instr)
}

/// One basic block: a half-open instruction-index range `[start, end)`
/// entered only at `start`, with its statically known successors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First instruction index of the block.
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
    /// Statically known successor instruction indices (block heads):
    /// fall-through and/or branch / skim targets. Empty for `HALT`
    /// blocks and indirect transfers (`BX`, PC writes), whose targets
    /// are runtime values.
    pub successors: Vec<u32>,
}

impl Block {
    /// Number of instructions in the block.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// True when the block holds no instructions (never produced by
    /// [`BlockGraph::build`]; here for clippy's `len`/`is_empty` pair).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A static partition of a program's instruction stream into basic
/// blocks, with PC → block lookup and caller-priced per-block costs.
#[derive(Debug, Clone)]
pub struct BlockGraph {
    blocks: Vec<Block>,
    /// Instruction index → index into `blocks` of the containing block.
    block_of: Vec<u32>,
}

impl BlockGraph {
    /// Partitions `program.instrs` into basic blocks.
    ///
    /// Leaders: instruction 0, the program entry, every static branch /
    /// call / skim target, and every instruction following a
    /// terminator. Every instruction belongs to exactly one block.
    pub fn build(program: &Program) -> BlockGraph {
        let n = program.instrs.len();
        if n == 0 {
            return BlockGraph {
                blocks: Vec::new(),
                block_of: Vec::new(),
            };
        }
        let mut leader = vec![false; n];
        leader[0] = true;
        if (program.entry as usize) < n {
            leader[program.entry as usize] = true;
        }
        for (i, instr) in program.instrs.iter().enumerate() {
            if let Some(t) = instr.branch_target() {
                if (t as usize) < n {
                    leader[t as usize] = true;
                }
            }
            if terminates_block(instr) && i + 1 < n {
                leader[i + 1] = true;
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0u32; n];
        let mut start = 0usize;
        for i in 0..n {
            let block_ends = i + 1 == n || leader[i + 1];
            block_of[i] = blocks.len() as u32;
            if !block_ends {
                continue;
            }
            let last = &program.instrs[i];
            let mut successors = Vec::new();
            match last {
                Instr::Halt => {}
                Instr::BCond { target, .. } => {
                    // Conditional: fall-through plus the taken target.
                    if i + 1 < n {
                        successors.push((i + 1) as u32);
                    }
                    successors.push(*target);
                }
                Instr::B { target } | Instr::Bl { target } => successors.push(*target),
                Instr::Skm { target } => {
                    // SKM arms a skim point and falls through; the jump
                    // to `target` happens only on a post-outage
                    // restore, but the edge is part of the static
                    // graph the predictor reasons over.
                    if i + 1 < n {
                        successors.push((i + 1) as u32);
                    }
                    successors.push(*target);
                }
                Instr::Bx { .. } => {}
                instr if writes_pc(instr) => {}
                _ => {
                    // Store or plain fall-through into the next leader.
                    if i + 1 < n {
                        successors.push((i + 1) as u32);
                    }
                }
            }
            successors.retain(|&t| (t as usize) < n);
            successors.dedup();
            blocks.push(Block {
                start: start as u32,
                end: (i + 1) as u32,
                successors,
            });
            start = i + 1;
        }
        BlockGraph { blocks, block_of }
    }

    /// The blocks, in instruction order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the program had no instructions.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Index (into [`BlockGraph::blocks`]) of the block containing
    /// instruction `pc`, or `None` when out of range.
    pub fn block_of_pc(&self, pc: u32) -> Option<usize> {
        self.block_of.get(pc as usize).map(|&b| b as usize)
    }

    /// Per-block cycle costs under a caller-supplied per-instruction
    /// price (e.g. the simulator's base-cost table). Indexed like
    /// [`BlockGraph::blocks`].
    pub fn block_cycles(&self, program: &Program, cost: impl Fn(&Instr) -> u64) -> Vec<u64> {
        self.blocks
            .iter()
            .map(|b| {
                program.instrs[b.start as usize..b.end as usize]
                    .iter()
                    .map(&cost)
                    .sum()
            })
            .collect()
    }

    /// Histogram of block lengths (instructions → block count); handy
    /// for reporting how fine the outage-interleaving granularity is.
    pub fn length_histogram(&self) -> HashMap<u32, usize> {
        let mut h = HashMap::new();
        for b in &self.blocks {
            *h.entry(b.len()).or_insert(0) += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wn_isa::Cond;

    fn prog(instrs: Vec<Instr>) -> Program {
        Program {
            instrs,
            ..Program::default()
        }
    }

    #[test]
    fn straight_line_with_store_splits_at_store() {
        let p = prog(vec![
            Instr::MovImm {
                rd: Reg::R0,
                imm: 1,
            },
            Instr::AddImm {
                rd: Reg::R0,
                rn: Reg::R0,
                imm: 1,
            },
            Instr::Str {
                rt: Reg::R0,
                rn: Reg::R1,
                off: 0,
            },
            Instr::Halt,
        ]);
        let g = BlockGraph::build(&p);
        assert_eq!(g.len(), 2);
        assert_eq!((g.blocks()[0].start, g.blocks()[0].end), (0, 3));
        assert_eq!(g.blocks()[0].successors, vec![3]);
        assert_eq!((g.blocks()[1].start, g.blocks()[1].end), (3, 4));
        assert!(g.blocks()[1].successors.is_empty());
        // Every instruction maps to exactly one block, in order.
        assert_eq!(g.block_of_pc(0), Some(0));
        assert_eq!(g.block_of_pc(2), Some(0));
        assert_eq!(g.block_of_pc(3), Some(1));
        assert_eq!(g.block_of_pc(4), None);
    }

    #[test]
    fn branch_targets_become_leaders() {
        // 0: mov; 1: bcond -> 3; 2: mov (fall-through); 3: halt
        let p = prog(vec![
            Instr::MovImm {
                rd: Reg::R0,
                imm: 0,
            },
            Instr::BCond {
                cond: Cond::Eq,
                target: 3,
            },
            Instr::MovImm {
                rd: Reg::R1,
                imm: 1,
            },
            Instr::Halt,
        ]);
        let g = BlockGraph::build(&p);
        assert_eq!(g.len(), 3);
        assert_eq!(g.blocks()[0].successors, vec![2, 3]);
        assert_eq!(g.blocks()[1].successors, vec![3]);
        assert!(g.blocks()[2].successors.is_empty());
    }

    #[test]
    fn skm_has_fallthrough_and_skim_edge() {
        let p = prog(vec![
            Instr::Skm { target: 2 },
            Instr::MovImm {
                rd: Reg::R0,
                imm: 7,
            },
            Instr::Halt,
        ]);
        let g = BlockGraph::build(&p);
        assert_eq!(g.len(), 3);
        assert_eq!(g.blocks()[0].successors, vec![1, 2]);
    }

    #[test]
    fn pc_write_terminates_with_no_static_successors() {
        let p = prog(vec![
            Instr::Mov {
                rd: Reg::PC,
                rm: Reg::R0,
            },
            Instr::Halt,
        ]);
        let g = BlockGraph::build(&p);
        assert_eq!(g.len(), 2);
        assert!(g.blocks()[0].successors.is_empty());
    }

    #[test]
    fn block_cycles_sum_per_instruction_costs() {
        let p = prog(vec![
            Instr::MovImm {
                rd: Reg::R0,
                imm: 1,
            },
            Instr::Mul {
                rd: Reg::R0,
                rn: Reg::R0,
                rm: Reg::R0,
            },
            Instr::Halt,
        ]);
        let g = BlockGraph::build(&p);
        let costs = g.block_cycles(&p, |i| match i {
            Instr::Mul { .. } => 32,
            _ => 1,
        });
        assert_eq!(costs.len(), g.len());
        assert_eq!(costs.iter().sum::<u64>(), 34);
    }

    #[test]
    fn partition_covers_program_exactly() {
        let p = prog(vec![
            Instr::MovImm {
                rd: Reg::R0,
                imm: 0,
            },
            Instr::B { target: 3 },
            Instr::MovImm {
                rd: Reg::R1,
                imm: 1,
            },
            Instr::Str {
                rt: Reg::R0,
                rn: Reg::R1,
                off: 0,
            },
            Instr::Halt,
        ]);
        let g = BlockGraph::build(&p);
        let covered: u32 = g.blocks().iter().map(Block::len).sum();
        assert_eq!(covered as usize, p.instrs.len());
        let mut prev_end = 0;
        for b in g.blocks() {
            assert_eq!(b.start, prev_end);
            assert!(b.end > b.start);
            prev_end = b.end;
        }
    }
}
