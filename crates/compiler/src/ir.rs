//! The kernel intermediate representation.
//!
//! Kernels are expressed as counted loops with constant bounds over
//! declared arrays — the shape of every benchmark in the paper (Table I).
//! Arrays carry approximability annotations mirroring the paper's
//! `#pragma asp` / `#pragma asv` directives; the subword *size* is
//! supplied at compile time through [`crate::Technique`] so one kernel
//! can be compiled at every granularity the paper sweeps.

use std::collections::HashSet;
use std::fmt;

use crate::error::CompileError;
use crate::layout::ElemType;

/// Approximability annotation on an array (the paper's pragmas).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approx {
    /// Not approximable.
    No,
    /// `#pragma asp input` — input operand of a subword-pipelined multiply.
    AspInput,
    /// `#pragma asp output` — accumulation target of SWP.
    AspOutput,
    /// `#pragma asv input` — subword-vectorized input.
    AsvInput,
    /// `#pragma asv output` — subword-vectorized output.
    AsvOutput,
}

/// A declared array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Array name (also its data-segment symbol).
    pub name: String,
    /// Element count.
    pub len: u32,
    /// Element storage type.
    pub elem: ElemType,
    /// Significant value width in bits (≤ `elem.bits`): the programmer's
    /// promise — part of the pragma, like the paper's
    /// `#pragma asp input(A, 8)` — that element values fit in this many
    /// bits. Subword levels top-align to it, so the first level always
    /// carries real signal even when data has headroom (e.g. 13-bit ADC
    /// samples in 16-bit storage).
    pub value_bits: u8,
    /// Whether the host reads this array back as kernel output.
    pub is_output: bool,
    /// Approximability annotation.
    pub approx: Approx,
}

/// Fluent builder for [`ArrayDecl`].
///
/// ```
/// use wn_compiler::ir::ArrayBuilder;
/// let a = ArrayBuilder::input("A", 64).elem16().asp_input().build();
/// assert_eq!(a.elem.bits, 16);
/// ```
#[derive(Debug, Clone)]
pub struct ArrayBuilder {
    decl: ArrayDecl,
}

impl ArrayBuilder {
    /// Starts an input array (32-bit unsigned elements by default).
    pub fn input(name: &str, len: u32) -> ArrayBuilder {
        ArrayBuilder {
            decl: ArrayDecl {
                name: name.to_string(),
                len,
                elem: ElemType::u32(),
                value_bits: 32,
                is_output: false,
                approx: Approx::No,
            },
        }
    }

    /// Starts an output array (32-bit signed elements by default, since
    /// outputs are usually accumulators).
    pub fn output(name: &str, len: u32) -> ArrayBuilder {
        ArrayBuilder {
            decl: ArrayDecl {
                name: name.to_string(),
                len,
                elem: ElemType::i32(),
                value_bits: 32,
                is_output: true,
                approx: Approx::No,
            },
        }
    }

    /// 8-bit unsigned elements.
    pub fn elem8(mut self) -> ArrayBuilder {
        self.decl.elem = ElemType {
            bits: 8,
            signed: false,
        };
        self.decl.value_bits = 8;
        self
    }

    /// 16-bit unsigned elements (the paper's fixed-point sensor data).
    pub fn elem16(mut self) -> ArrayBuilder {
        self.decl.elem = ElemType {
            bits: 16,
            signed: false,
        };
        self.decl.value_bits = 16;
        self
    }

    /// 32-bit unsigned elements.
    pub fn elem32(mut self) -> ArrayBuilder {
        self.decl.elem = ElemType::u32();
        self.decl.value_bits = 32;
        self
    }

    /// Declares the significant value width (see
    /// [`ArrayDecl::value_bits`]). Must not exceed the element width.
    pub fn value_bits(mut self, bits: u8) -> ArrayBuilder {
        self.decl.value_bits = bits;
        self
    }

    /// Marks elements as signed (affects host-side decoding only).
    pub fn signed(mut self) -> ArrayBuilder {
        self.decl.elem.signed = true;
        self
    }

    /// Annotates with `#pragma asp input`.
    pub fn asp_input(mut self) -> ArrayBuilder {
        self.decl.approx = Approx::AspInput;
        self
    }

    /// Annotates with `#pragma asp output`.
    pub fn asp_output(mut self) -> ArrayBuilder {
        self.decl.approx = Approx::AspOutput;
        self
    }

    /// Annotates with `#pragma asv input`.
    pub fn asv_input(mut self) -> ArrayBuilder {
        self.decl.approx = Approx::AsvInput;
        self
    }

    /// Annotates with `#pragma asv output`.
    pub fn asv_output(mut self) -> ArrayBuilder {
        self.decl.approx = Approx::AsvOutput;
        self
    }

    /// Finishes the declaration.
    pub fn build(self) -> ArrayDecl {
        self.decl
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (lowered to the iterative multiplier, or to shifts
    /// and adds when one side is constant).
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
}

/// An IR expression.
///
/// The variants after `Shr` are produced only by the anytime passes, never
/// written by kernels directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer constant.
    Const(i32),
    /// Loop variable or scalar local.
    Var(String),
    /// `array[index]` element load.
    Load {
        /// Array name.
        array: String,
        /// Element index.
        index: Box<Expr>,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: Box<Expr>,
        /// Right operand.
        b: Box<Expr>,
    },
    /// Logical shift left by a constant.
    Shl(Box<Expr>, u8),
    /// Logical shift right by a constant.
    Shr(Box<Expr>, u8),
    /// *(pass-generated)* Load the subword of `array[index]` covering
    /// bits `[shift, shift + width)`.
    LoadSub {
        /// Array name.
        array: String,
        /// Element index.
        index: Box<Expr>,
        /// Subword width in bits.
        width: u8,
        /// Bit position of the subword within the element.
        shift: u8,
    },
    /// *(pass-generated)* Anytime subword-pipelined multiply:
    /// `full * (sub << shift)` in `width` cycles.
    MulAsp {
        /// Full-precision operand.
        full: Box<Expr>,
        /// Subword operand (low `width` bits used).
        sub: Box<Expr>,
        /// Subword width.
        width: u8,
        /// Significance shift of the subword.
        shift: u8,
    },
    /// *(pass-generated)* Lane-wise add/sub on packed subwords
    /// (`ADD_ASV`/`SUB_ASV`).
    AsvBin {
        /// `Add` or `Sub`.
        op: BinOp,
        /// Left packed operand.
        a: Box<Expr>,
        /// Right packed operand.
        b: Box<Expr>,
        /// Lane width in bits (4, 8 or 16).
        lane_bits: u8,
    },
    /// *(pass-generated)* Horizontal sum of all lanes of a packed value.
    HSum {
        /// Packed value.
        value: Box<Expr>,
        /// Lane width in bits.
        lane_bits: u8,
    },
    /// *(pass-generated)* Load one packed 32-bit word of a subword-major
    /// array: word `word_index` of significance level `level`.
    LoadPacked {
        /// Array name (must have a subword-major layout).
        array: String,
        /// Subword significance level (0 = least significant).
        level: u8,
        /// Word index within the level.
        word_index: Box<Expr>,
    },
}

impl Expr {
    /// Constant expression.
    pub fn c(v: i32) -> Expr {
        Expr::Const(v)
    }

    /// Variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// Array element load.
    pub fn load(array: &str, index: Expr) -> Expr {
        Expr::Load {
            array: array.to_string(),
            index: Box::new(index),
        }
    }

    /// Left shift by constant. (Deliberately named like `ops::Shl::shl`:
    /// it is the IR's shift-by-immediate sugar.)
    #[allow(clippy::should_implement_trait)]
    pub fn shl(self, sh: u8) -> Expr {
        Expr::Shl(Box::new(self), sh)
    }

    /// Logical right shift by constant.
    #[allow(clippy::should_implement_trait)]
    pub fn shr(self, sh: u8) -> Expr {
        Expr::Shr(Box::new(self), sh)
    }

    fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin {
            op,
            a: Box::new(a),
            b: Box::new(b),
        }
    }

    /// Bitwise XOR.
    pub fn xor(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Xor, self, rhs)
    }

    /// Bitwise AND.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::And, self, rhs)
    }

    /// Bitwise OR.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Or, self, rhs)
    }

    /// Visits every node of the expression depth-first, children before
    /// parents (self last).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        match self {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Load { index, .. } | Expr::LoadSub { index, .. } => index.visit(f),
            Expr::LoadPacked { word_index, .. } => word_index.visit(f),
            Expr::Bin { a, b, .. } | Expr::AsvBin { a, b, .. } => {
                a.visit(f);
                b.visit(f);
            }
            Expr::MulAsp { full, sub, .. } => {
                full.visit(f);
                sub.visit(f);
            }
            Expr::Shl(e, _) | Expr::Shr(e, _) | Expr::HSum { value: e, .. } => e.visit(f),
        }
        f(self);
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, rhs)
    }
}

/// An IR statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `for var in start..end { body }` — constant bounds, stride 1.
    For {
        /// Loop variable name.
        var: String,
        /// Inclusive start.
        start: i32,
        /// Exclusive end.
        end: i32,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `array[index] = value`.
    Store {
        /// Destination array.
        array: String,
        /// Element index.
        index: Expr,
        /// Stored value.
        value: Expr,
    },
    /// `array[index] += value` — the accumulate pattern SWP targets
    /// (Listing 1: `X[i] += A[i] * F[i]`).
    AccumStore {
        /// Destination array.
        array: String,
        /// Element index.
        index: Expr,
        /// Added value.
        value: Expr,
    },
    /// `var = value` — scalar local assignment.
    Assign {
        /// Variable name.
        var: String,
        /// Assigned value.
        value: Expr,
    },
    /// *(pass-generated)* Store a packed 32-bit word of a subword-major
    /// array: word `word_index` of significance level `level`.
    StorePacked {
        /// Array name (must have a subword-major layout).
        array: String,
        /// Subword significance level (0 = least significant).
        level: u8,
        /// Word index within the level.
        word_index: Expr,
        /// Packed value to store.
        value: Expr,
    },
    /// *(pass-generated)* Store a 32-bit component of a component-major
    /// array: level `level` of element `elem_index` (used for reduction
    /// partial sums).
    StoreComponent {
        /// Array name (must have a component-major layout).
        array: String,
        /// Logical element index.
        elem_index: Expr,
        /// Subword significance level.
        level: u8,
        /// Component value.
        value: Expr,
    },
    /// *(pass-generated)* A skim point: an acceptable approximate output
    /// exists from here on. Lowers to `SKM END`.
    SkimPoint,
    /// *(pass-generated)* A named code position: lowers to a bound label
    /// and no instructions. The task-decomposition pass plants these at
    /// task entries and commit sequences so the runtime substrate can
    /// resolve them to program counters after lowering.
    Label(String),
    /// *(pass-generated)* Copy the whole backing store of `src` into
    /// `dst` word-by-word. Both arrays must have identical element type
    /// and length (and therefore identical layouts once completed). The
    /// task pass uses this for write-set privatization (master → shadow
    /// at task entry) and for the atomic commit (shadow → master at the
    /// task boundary).
    CopyArray {
        /// Destination array.
        dst: String,
        /// Source array.
        src: String,
    },
}

impl Stmt {
    /// Builds a counted loop.
    pub fn for_loop(var: &str, start: i32, end: i32, body: Vec<Stmt>) -> Stmt {
        Stmt::For {
            var: var.to_string(),
            start,
            end,
            body,
        }
    }

    /// Builds `array[index] = value`.
    pub fn store(array: &str, index: Expr, value: Expr) -> Stmt {
        Stmt::Store {
            array: array.to_string(),
            index,
            value,
        }
    }

    /// Builds `array[index] += value`.
    pub fn accum_store(array: &str, index: Expr, value: Expr) -> Stmt {
        Stmt::AccumStore {
            array: array.to_string(),
            index,
            value,
        }
    }

    /// Builds `var = value`.
    pub fn assign(var: &str, value: Expr) -> Stmt {
        Stmt::Assign {
            var: var.to_string(),
            value,
        }
    }
}

/// A complete kernel: declarations plus a statement body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelIr {
    /// Kernel name (used in program symbols and reports).
    pub name: String,
    /// Array declarations.
    pub arrays: Vec<ArrayDecl>,
    /// Statement body.
    pub body: Vec<Stmt>,
}

impl KernelIr {
    /// Starts a kernel with no arrays and an empty body.
    pub fn new(name: &str) -> KernelIr {
        KernelIr {
            name: name.to_string(),
            arrays: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Adds an array declaration.
    pub fn array(mut self, builder: ArrayBuilder) -> KernelIr {
        self.arrays.push(builder.build());
        self
    }

    /// Sets the body.
    pub fn body(mut self, body: Vec<Stmt>) -> KernelIr {
        self.body = body;
        self
    }

    /// Looks up an array declaration.
    pub fn find_array(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// Checks structural well-formedness: unique array names, positive
    /// lengths, all referenced arrays declared, loop variables unique
    /// within their nest.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] naming the first violation.
    pub fn validate(&self) -> Result<(), CompileError> {
        let mut names = HashSet::new();
        for a in &self.arrays {
            if !names.insert(a.name.as_str()) {
                return Err(CompileError::DuplicateArray {
                    name: a.name.clone(),
                });
            }
            if a.len == 0 {
                return Err(CompileError::EmptyArray {
                    name: a.name.clone(),
                });
            }
            if ![8, 16, 32].contains(&a.elem.bits) {
                return Err(CompileError::BadElemWidth {
                    name: a.name.clone(),
                    bits: a.elem.bits,
                });
            }
            if a.value_bits == 0 || a.value_bits > a.elem.bits {
                return Err(CompileError::BadSubwordGeometry {
                    detail: format!(
                        "array `{}` declares {} value bits in {}-bit elements",
                        a.name, a.value_bits, a.elem.bits
                    ),
                });
            }
        }
        let mut loop_vars = Vec::new();
        self.validate_stmts(&self.body, &mut loop_vars)
    }

    fn validate_stmts(
        &self,
        stmts: &[Stmt],
        loop_vars: &mut Vec<String>,
    ) -> Result<(), CompileError> {
        for s in stmts {
            match s {
                Stmt::For {
                    var,
                    start,
                    end,
                    body,
                } => {
                    if loop_vars.iter().any(|v| v == var) {
                        return Err(CompileError::ShadowedLoopVar { var: var.clone() });
                    }
                    if start > end {
                        return Err(CompileError::BadLoopBounds {
                            var: var.clone(),
                            start: *start,
                            end: *end,
                        });
                    }
                    loop_vars.push(var.clone());
                    self.validate_stmts(body, loop_vars)?;
                    loop_vars.pop();
                }
                Stmt::Store {
                    array,
                    index,
                    value,
                }
                | Stmt::AccumStore {
                    array,
                    index,
                    value,
                } => {
                    self.check_array(array)?;
                    self.validate_expr(index)?;
                    self.validate_expr(value)?;
                }
                Stmt::StorePacked {
                    array,
                    word_index,
                    value,
                    ..
                } => {
                    self.check_array(array)?;
                    self.validate_expr(word_index)?;
                    self.validate_expr(value)?;
                }
                Stmt::StoreComponent {
                    array,
                    elem_index,
                    value,
                    ..
                } => {
                    self.check_array(array)?;
                    self.validate_expr(elem_index)?;
                    self.validate_expr(value)?;
                }
                Stmt::Assign { var, value } => {
                    // Writing the loop counter would diverge between the
                    // reference interpreter (which re-derives it from the
                    // range) and generated code (which mutates the live
                    // register).
                    if loop_vars.iter().any(|v| v == var) {
                        return Err(CompileError::ShadowedLoopVar { var: var.clone() });
                    }
                    self.validate_expr(value)?;
                }
                Stmt::SkimPoint | Stmt::Label(_) => {}
                Stmt::CopyArray { dst, src } => {
                    self.check_array(dst)?;
                    self.check_array(src)?;
                    let (d, s) = (
                        self.find_array(dst).expect("checked above"),
                        self.find_array(src).expect("checked above"),
                    );
                    // Pass-generated only, so a shape mismatch is a
                    // compiler bug, not a user error.
                    if d.len != s.len || d.elem != s.elem {
                        return Err(CompileError::Internal(format!(
                            "CopyArray between mismatched arrays `{dst}` and `{src}`"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    fn check_array(&self, name: &str) -> Result<(), CompileError> {
        if self.find_array(name).is_none() {
            return Err(CompileError::UnknownArray {
                name: name.to_string(),
            });
        }
        Ok(())
    }

    fn validate_expr(&self, e: &Expr) -> Result<(), CompileError> {
        let mut err = None;
        e.visit(&mut |node| {
            if err.is_some() {
                return;
            }
            if let Expr::Load { array, .. }
            | Expr::LoadSub { array, .. }
            | Expr::LoadPacked { array, .. } = node
            {
                if self.find_array(array).is_none() {
                    err = Some(CompileError::UnknownArray {
                        name: array.clone(),
                    });
                }
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl fmt::Display for KernelIr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel {} ({} arrays)", self.name, self.arrays.len())?;
        for a in &self.arrays {
            writeln!(
                f,
                "  {} {}: [{} x u{}]{}",
                if a.is_output { "output" } else { "input" },
                a.name,
                a.len,
                a.elem.bits,
                match a.approx {
                    Approx::No => "",
                    Approx::AspInput => "  #pragma asp input",
                    Approx::AspOutput => "  #pragma asp output",
                    Approx::AsvInput => "  #pragma asv input",
                    Approx::AsvOutput => "  #pragma asv output",
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_kernel() -> KernelIr {
        KernelIr::new("k")
            .array(ArrayBuilder::input("A", 4).elem16().asp_input())
            .array(ArrayBuilder::output("X", 4).asp_output())
            .body(vec![Stmt::for_loop(
                "i",
                0,
                4,
                vec![Stmt::accum_store(
                    "X",
                    Expr::var("i"),
                    Expr::load("A", Expr::var("i")),
                )],
            )])
    }

    #[test]
    fn valid_kernel_passes() {
        simple_kernel().validate().unwrap();
    }

    #[test]
    fn duplicate_array_rejected() {
        let k = KernelIr::new("k")
            .array(ArrayBuilder::input("A", 4))
            .array(ArrayBuilder::input("A", 8));
        assert!(matches!(
            k.validate(),
            Err(CompileError::DuplicateArray { .. })
        ));
    }

    #[test]
    fn unknown_array_rejected() {
        let k = KernelIr::new("k").body(vec![Stmt::store("Z", Expr::c(0), Expr::c(1))]);
        assert!(matches!(
            k.validate(),
            Err(CompileError::UnknownArray { .. })
        ));
        let k2 = KernelIr::new("k")
            .array(ArrayBuilder::output("X", 1))
            .body(vec![Stmt::store(
                "X",
                Expr::c(0),
                Expr::load("Q", Expr::c(0)),
            )]);
        assert!(matches!(
            k2.validate(),
            Err(CompileError::UnknownArray { .. })
        ));
    }

    #[test]
    fn shadowed_loop_var_rejected() {
        let k = KernelIr::new("k").body(vec![Stmt::for_loop(
            "i",
            0,
            2,
            vec![Stmt::for_loop("i", 0, 2, vec![])],
        )]);
        assert!(matches!(
            k.validate(),
            Err(CompileError::ShadowedLoopVar { .. })
        ));
    }

    #[test]
    fn assigning_loop_variable_rejected() {
        let k = KernelIr::new("k")
            .array(ArrayBuilder::output("X", 4))
            .body(vec![Stmt::for_loop(
                "i",
                0,
                4,
                vec![Stmt::assign("i", Expr::var("i") + Expr::c(1))],
            )]);
        assert!(matches!(
            k.validate(),
            Err(CompileError::ShadowedLoopVar { .. })
        ));
    }

    #[test]
    fn bad_bounds_rejected() {
        let k = KernelIr::new("k").body(vec![Stmt::for_loop("i", 5, 2, vec![])]);
        assert!(matches!(
            k.validate(),
            Err(CompileError::BadLoopBounds { .. })
        ));
    }

    #[test]
    fn empty_array_rejected() {
        let k = KernelIr::new("k").array(ArrayBuilder::input("A", 0));
        assert!(matches!(k.validate(), Err(CompileError::EmptyArray { .. })));
    }

    #[test]
    fn operator_sugar_builds_bins() {
        let e = Expr::var("a") * Expr::var("b") + Expr::c(3);
        match e {
            Expr::Bin {
                op: BinOp::Add, a, ..
            } => match *a {
                Expr::Bin { op: BinOp::Mul, .. } => {}
                other => panic!("expected Mul, got {other:?}"),
            },
            other => panic!("expected Add, got {other:?}"),
        }
    }

    #[test]
    fn visit_reaches_nested_loads() {
        let e = Expr::load("A", Expr::var("i")) + Expr::load("B", Expr::var("j")).shl(2);
        let mut loads = Vec::new();
        e.visit(&mut |n| {
            if let Expr::Load { array, .. } = n {
                loads.push(array.clone());
            }
        });
        assert_eq!(loads, vec!["A".to_string(), "B".to_string()]);
    }

    #[test]
    fn display_shows_pragmas() {
        let text = simple_kernel().to_string();
        assert!(text.contains("#pragma asp input"));
        assert!(text.contains("#pragma asp output"));
    }
}
