//! A reference interpreter for the kernel IR.
//!
//! Executes a [`KernelIr`] directly on host integers, with the same
//! 32-bit wrapping semantics as the device. This is the *oracle* for
//! differential testing: for any kernel, `compile(k, technique)` run on
//! the cycle-accurate simulator must produce the same decoded outputs as
//! `interpret(k)` — for the precise technique exactly, and for anytime
//! techniques at completion (SWP always; SWV when provisioned).
//!
//! The interpreter understands the pass-generated constructs too
//! (subword loads, `MulAsp`, packed accesses), so transformed kernels can
//! be interpreted directly when debugging a pass.

use std::collections::HashMap;

use crate::error::CompileError;
use crate::ir::{BinOp, Expr, KernelIr, Stmt};
use crate::layout::ArrayLayout;

/// Interpreter state: logical array contents (element-indexed) plus
/// scalar variables.
#[derive(Debug, Clone)]
pub struct Interp {
    arrays: HashMap<String, Vec<u32>>,
    layouts: HashMap<String, ArrayLayout>,
    vars: HashMap<String, u32>,
}

impl Interp {
    /// Creates an interpreter for a kernel, with all arrays zeroed
    /// (row-major layouts).
    pub fn new(kernel: &KernelIr) -> Interp {
        let mut arrays = HashMap::new();
        let mut layouts = HashMap::new();
        for a in &kernel.arrays {
            arrays.insert(a.name.clone(), vec![0u32; a.len as usize]);
            layouts.insert(
                a.name.clone(),
                ArrayLayout::RowMajor {
                    elem: a.elem,
                    len: a.len,
                },
            );
        }
        Interp {
            arrays,
            layouts,
            vars: HashMap::new(),
        }
    }

    /// Sets an input array from host values (truncated to the element
    /// width, like the device encoding).
    ///
    /// # Panics
    ///
    /// Panics on unknown arrays or length mismatch.
    pub fn set_input(&mut self, name: &str, values: &[i64]) {
        let layout = *self
            .layouts
            .get(name)
            .unwrap_or_else(|| panic!("unknown array `{name}`"));
        let arr = self.arrays.get_mut(name).expect("array exists");
        assert_eq!(arr.len(), values.len(), "length mismatch for `{name}`");
        for (slot, &v) in arr.iter_mut().zip(values) {
            *slot = layout.elem().truncate(v) as u32;
        }
    }

    /// Reads an array back as host values (sign-interpreted like the
    /// device decoding).
    ///
    /// # Panics
    ///
    /// Panics on unknown arrays.
    pub fn output(&self, name: &str) -> Vec<i64> {
        let layout = self
            .layouts
            .get(name)
            .unwrap_or_else(|| panic!("unknown array `{name}`"));
        let elem = layout.elem();
        self.arrays[name]
            .iter()
            .map(|&raw| elem.interpret(elem.truncate(raw as i64)))
            .collect()
    }

    /// Runs the kernel body.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::UndefinedVar`] or
    /// [`CompileError::UnknownArray`] for malformed kernels, and
    /// [`CompileError::Internal`] for out-of-bounds element accesses
    /// (which the device would also fault on).
    pub fn run(&mut self, kernel: &KernelIr) -> Result<(), CompileError> {
        self.stmts(&kernel.body)
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::For {
                var,
                start,
                end,
                body,
            } => {
                for i in *start..*end {
                    self.vars.insert(var.clone(), i as u32);
                    self.stmts(body)?;
                }
                self.vars.remove(var);
                Ok(())
            }
            Stmt::Store {
                array,
                index,
                value,
            } => {
                let v = self.eval(value)?;
                let i = self.eval(index)? as usize;
                self.store_elem(array, i, v)
            }
            Stmt::AccumStore {
                array,
                index,
                value,
            } => {
                let v = self.eval(value)?;
                let i = self.eval(index)? as usize;
                let old = self.load_elem(array, i)?;
                self.store_elem(array, i, old.wrapping_add(v))
            }
            Stmt::Assign { var, value } => {
                let v = self.eval(value)?;
                self.vars.insert(var.clone(), v);
                Ok(())
            }
            Stmt::StorePacked { .. } | Stmt::StoreComponent { .. } => Err(CompileError::Internal(
                "packed stores require device layouts; interpret the untransformed kernel"
                    .to_string(),
            )),
            Stmt::SkimPoint | Stmt::Label(_) => Ok(()),
            Stmt::CopyArray { dst, src } => {
                let from = self
                    .arrays
                    .get(src)
                    .ok_or_else(|| CompileError::UnknownArray {
                        name: src.to_string(),
                    })?
                    .clone();
                let to = self
                    .arrays
                    .get_mut(dst)
                    .ok_or_else(|| CompileError::UnknownArray {
                        name: dst.to_string(),
                    })?;
                if to.len() != from.len() {
                    return Err(CompileError::Internal(format!(
                        "CopyArray between differently sized arrays `{dst}` and `{src}`"
                    )));
                }
                *to = from;
                Ok(())
            }
        }
    }

    fn load_elem(&self, array: &str, index: usize) -> Result<u32, CompileError> {
        let arr = self
            .arrays
            .get(array)
            .ok_or_else(|| CompileError::UnknownArray {
                name: array.to_string(),
            })?;
        arr.get(index).copied().ok_or_else(|| {
            CompileError::Internal(format!("index {index} out of bounds for `{array}`"))
        })
    }

    fn store_elem(&mut self, array: &str, index: usize, value: u32) -> Result<(), CompileError> {
        let layout = *self
            .layouts
            .get(array)
            .ok_or_else(|| CompileError::UnknownArray {
                name: array.to_string(),
            })?;
        let arr = self.arrays.get_mut(array).expect("checked above");
        let slot = arr.get_mut(index).ok_or_else(|| {
            CompileError::Internal(format!("index {index} out of bounds for `{array}`"))
        })?;
        // Stores truncate to the element width, like STRH/STRB.
        *slot = layout.elem().truncate(value as i64) as u32;
        Ok(())
    }

    fn eval(&self, e: &Expr) -> Result<u32, CompileError> {
        Ok(match e {
            Expr::Const(c) => *c as u32,
            Expr::Var(name) => *self
                .vars
                .get(name)
                .ok_or_else(|| CompileError::UndefinedVar { var: name.clone() })?,
            Expr::Load { array, index } => {
                let i = self.eval(index)? as usize;
                self.load_elem(array, i)?
            }
            Expr::LoadSub {
                array,
                index,
                width,
                shift,
            } => {
                let i = self.eval(index)? as usize;
                let v = self.load_elem(array, i)?;
                let mask = if *width >= 32 {
                    u32::MAX
                } else {
                    (1u32 << width) - 1
                };
                (v >> shift) & mask
            }
            Expr::Bin { op, a, b } => {
                let x = self.eval(a)?;
                let y = self.eval(b)?;
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                }
            }
            Expr::Shl(x, sh) => self.eval(x)? << sh,
            Expr::Shr(x, sh) => self.eval(x)? >> sh,
            Expr::MulAsp {
                full,
                sub,
                width,
                shift,
            } => {
                let f = self.eval(full)?;
                let s = self.eval(sub)?;
                let mask = if *width >= 32 {
                    u32::MAX
                } else {
                    (1u32 << width) - 1
                };
                f.wrapping_mul((s & mask) << shift)
            }
            Expr::AsvBin { .. } | Expr::HSum { .. } | Expr::LoadPacked { .. } => {
                return Err(CompileError::Internal(
                    "packed expressions require device layouts; interpret the untransformed kernel"
                        .to_string(),
                ))
            }
        })
    }
}

/// Convenience: interprets a kernel with the given inputs and returns the
/// named outputs.
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn interpret(
    kernel: &KernelIr,
    inputs: &[(String, Vec<i64>)],
    outputs: &[&str],
) -> Result<Vec<(String, Vec<i64>)>, CompileError> {
    let mut interp = Interp::new(kernel);
    for (name, values) in inputs {
        interp.set_input(name, values);
    }
    interp.run(kernel)?;
    Ok(outputs
        .iter()
        .map(|&o| (o.to_string(), interp.output(o)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ArrayBuilder, Expr, KernelIr, Stmt};

    fn mac_kernel(n: u32) -> KernelIr {
        KernelIr::new("mac")
            .array(ArrayBuilder::input("A", n).elem16().asp_input())
            .array(ArrayBuilder::input("F", n).elem16())
            .array(ArrayBuilder::output("X", n).asp_output())
            .body(vec![Stmt::for_loop(
                "i",
                0,
                n as i32,
                vec![Stmt::accum_store(
                    "X",
                    Expr::var("i"),
                    Expr::load("A", Expr::var("i")) * Expr::load("F", Expr::var("i")),
                )],
            )])
    }

    #[test]
    fn interprets_mac() {
        let k = mac_kernel(4);
        let out = interpret(
            &k,
            &[
                ("A".into(), vec![1, 2, 3, 4]),
                ("F".into(), vec![10, 20, 30, 40]),
            ],
            &["X"],
        )
        .unwrap();
        assert_eq!(out[0].1, vec![10, 40, 90, 160]);
    }

    #[test]
    fn interprets_transformed_swp_kernel() {
        // The SWP-transformed kernel (LoadSub/MulAsp) interprets to the
        // same result as the original.
        let k = mac_kernel(4);
        let t = crate::passes::swp::apply(&k, 8, false).unwrap();
        let inputs = [
            ("A".to_string(), vec![300i64, 70, 9999, 1]),
            ("F".to_string(), vec![7i64, 8, 9, 10]),
        ];
        let precise = interpret(&k, &inputs, &["X"]).unwrap();
        let anytime = interpret(&t.kernel, &inputs, &["X"]).unwrap();
        assert_eq!(precise, anytime);
    }

    #[test]
    fn element_stores_truncate() {
        let k = KernelIr::new("t")
            .array(ArrayBuilder::output("H", 1).elem16())
            .body(vec![Stmt::store("H", Expr::c(0), Expr::c(0x12345))]);
        let out = interpret(&k, &[], &["H"]).unwrap();
        assert_eq!(out[0].1, vec![0x2345]);
    }

    #[test]
    fn oob_access_is_an_error() {
        let k = KernelIr::new("t")
            .array(ArrayBuilder::output("X", 2))
            .body(vec![Stmt::store("X", Expr::c(5), Expr::c(1))]);
        assert!(matches!(
            interpret(&k, &[], &["X"]),
            Err(CompileError::Internal(_))
        ));
    }

    #[test]
    fn undefined_var_is_an_error() {
        let k = KernelIr::new("t")
            .array(ArrayBuilder::output("X", 1))
            .body(vec![Stmt::store("X", Expr::c(0), Expr::var("ghost"))]);
        assert!(matches!(
            interpret(&k, &[], &["X"]),
            Err(CompileError::UndefinedVar { .. })
        ));
    }

    #[test]
    fn signed_output_interpretation() {
        let k = KernelIr::new("t")
            .array(ArrayBuilder::output("X", 1).elem32().signed())
            .body(vec![Stmt::store("X", Expr::c(0), Expr::c(0) - Expr::c(5))]);
        let out = interpret(&k, &[], &["X"]).unwrap();
        assert_eq!(out[0].1, vec![-5]);
    }
}
