//! Lowering the (transformed) kernel IR to WN-RISC.
//!
//! The generator is deliberately simple — in the spirit of the in-order,
//! cache-less Cortex-M0+ target — but performs the one optimization that
//! matters for faithful instruction accounting: **multiplications by
//! constants are strength-reduced to shifts and adds**, so the iterative
//! multiplier (and the `MUL_ASP` pipeline stages) are reserved for *data*
//! multiplies, exactly the instructions the paper's pragmas target.

use std::collections::{BTreeMap, HashMap};

use wn_isa::{Instr, LaneWidth, Program, ProgramBuilder, Reg};

use crate::error::CompileError;
use crate::ir::{BinOp, Expr, KernelIr, Stmt};
use crate::layout::ArrayLayout;

/// The label every skim point targets: the end of the program.
pub const END_LABEL: &str = "__end";

/// A value held in a register; `owned` temps are returned to the pool
/// after use, variable registers are not.
#[derive(Debug, Clone, Copy)]
struct Value {
    reg: Reg,
    owned: bool,
}

struct RegAlloc {
    free: Vec<Reg>,
}

impl RegAlloc {
    fn new() -> RegAlloc {
        // R0–R12 are allocatable; SP/LR/PC are reserved.
        let free = (0..=12).rev().filter_map(Reg::from_index).collect();
        RegAlloc { free }
    }

    fn alloc(&mut self, at: &str) -> Result<Reg, CompileError> {
        self.free
            .pop()
            .ok_or_else(|| CompileError::OutOfRegisters { at: at.to_string() })
    }

    /// Allocates only when at least `headroom` registers would remain for
    /// expression temporaries — used by opportunistic optimizations.
    fn try_alloc_with_headroom(&mut self, headroom: usize) -> Option<Reg> {
        if self.free.len() > headroom {
            self.free.pop()
        } else {
            None
        }
    }

    fn free(&mut self, reg: Reg) {
        debug_assert!(!self.free.contains(&reg), "double free of {reg}");
        self.free.push(reg);
    }
}

/// Lowers a transformed kernel to a WN-RISC program.
///
/// `layouts` must contain an entry for every declared array.
///
/// # Errors
///
/// Returns a [`CompileError`] for undefined variables, register-pool
/// exhaustion or internal inconsistencies.
pub fn lower(
    kernel: &KernelIr,
    layouts: &HashMap<String, ArrayLayout>,
) -> Result<Program, CompileError> {
    let mut cg = Codegen {
        layouts,
        builder: ProgramBuilder::new(),
        regs: RegAlloc::new(),
        vars: BTreeMap::new(),
        ptrs: Vec::new(),
        next_label: 0,
    };
    // Data segment: one 4-byte-aligned block per array, declaration order.
    for decl in &kernel.arrays {
        let layout = layouts.get(&decl.name).ok_or_else(|| {
            CompileError::Internal(format!("no layout for array `{}`", decl.name))
        })?;
        let bytes = (layout.byte_size() + 3) & !3;
        cg.builder.data(&decl.name, wn_isa::DataItem::Space(bytes));
    }
    cg.builder.bind_label("main");
    cg.stmts(&kernel.body)?;
    cg.builder.bind_label(END_LABEL);
    cg.builder.push(Instr::Halt);
    cg.builder
        .finish()
        .map_err(|e| CompileError::Internal(format!("program assembly failed: {e}")))
}

struct Codegen<'a> {
    layouts: &'a HashMap<String, ArrayLayout>,
    builder: ProgramBuilder,
    regs: RegAlloc,
    /// Scalar bindings. Ordered map: scoped frees at loop exits iterate
    /// this, and iteration order must not depend on hashing for
    /// compilation to be deterministic.
    vars: BTreeMap<String, Reg>,
    /// Active pointer inductions of the innermost loop being lowered:
    /// memory accesses structurally matching a key are emitted through a
    /// walking byte-address register instead of recomputing the address.
    ptrs: Vec<PtrInduction>,
    next_label: usize,
}

/// One pointer induction: `array[inv + i]`-style accesses of the current
/// innermost loop walk `reg` (a byte address), bumped by `stride_bytes`
/// per iteration.
#[derive(Debug, Clone)]
struct PtrInduction {
    array: String,
    /// The exact index expression this pointer stands for.
    index: Expr,
    /// Packed level for `LoadPacked`/`StorePacked` keys (`None` for
    /// element accesses).
    level: Option<u8>,
    reg: Reg,
    stride_bytes: u32,
    elem_bits: u8,
}

impl<'a> Codegen<'a> {
    fn fresh_label(&mut self, stem: &str) -> String {
        self.next_label += 1;
        format!("__{stem}_{}", self.next_label)
    }

    fn layout(&self, array: &str) -> Result<&ArrayLayout, CompileError> {
        self.layouts
            .get(array)
            .ok_or_else(|| CompileError::Internal(format!("no layout for `{array}`")))
    }

    fn release(&mut self, v: Value) {
        if v.owned {
            self.regs.free(v.reg);
        }
    }

    fn temp(&mut self, at: &str) -> Result<Reg, CompileError> {
        self.regs.alloc(at)
    }

    /// Returns a register holding the value, reusing `v`'s register when
    /// it is an owned temp (avoids a pointless extra register).
    fn reuse_or_temp(&mut self, v: Value, at: &str) -> Result<Reg, CompileError> {
        if v.owned {
            Ok(v.reg)
        } else {
            self.temp(at)
        }
    }

    // ---- statements -------------------------------------------------------

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::For {
                var,
                start,
                end,
                body,
            } => self.lower_for(var, *start, *end, body),
            Stmt::Store {
                array,
                index,
                value,
            } => self.lower_store(array, index, value, false),
            Stmt::AccumStore {
                array,
                index,
                value,
            } => self.lower_store(array, index, value, true),
            Stmt::StorePacked {
                array,
                level,
                word_index,
                value,
            } => self.lower_store_packed(array, *level, word_index, value),
            Stmt::StoreComponent {
                array,
                elem_index,
                level,
                value,
            } => self.lower_store_component(array, elem_index, *level, value),
            Stmt::Assign { var, value } => {
                // Accumulation fast path: `acc = acc ± e` / `acc = e + acc`
                // targets the accumulator register directly, avoiding the
                // copy a generic evaluate-then-move would need.
                if let Some(&acc) = self.vars.get(var) {
                    if let Expr::Bin {
                        op: op @ (BinOp::Add | BinOp::Sub),
                        a,
                        b,
                    } = value
                    {
                        let operand = if matches!(a.as_ref(), Expr::Var(v) if v == var) {
                            Some(b)
                        } else if *op == BinOp::Add
                            && matches!(b.as_ref(), Expr::Var(v) if v == var)
                        {
                            Some(a)
                        } else {
                            None
                        };
                        if let Some(e) = operand {
                            let v = self.eval(e)?;
                            let instr = match op {
                                BinOp::Add => Instr::Add {
                                    rd: acc,
                                    rn: acc,
                                    rm: v.reg,
                                },
                                _ => Instr::Sub {
                                    rd: acc,
                                    rn: acc,
                                    rm: v.reg,
                                },
                            };
                            self.builder.push(instr);
                            self.release(v);
                            return Ok(());
                        }
                    }
                    // ASV accumulation: `acc = AsvBin(acc, e)`.
                    if let Expr::AsvBin {
                        op: BinOp::Add,
                        a,
                        b,
                        lane_bits,
                    } = value
                    {
                        if matches!(a.as_ref(), Expr::Var(v) if v == var) {
                            if let Some(lanes) = LaneWidth::from_bits(*lane_bits) {
                                let v = self.eval(b)?;
                                self.builder.push(Instr::AddAsv {
                                    rd: acc,
                                    rn: acc,
                                    rm: v.reg,
                                    lanes,
                                });
                                self.release(v);
                                return Ok(());
                            }
                        }
                    }
                }
                let v = self.eval(value)?;
                let reg = match self.vars.get(var) {
                    Some(&r) => r,
                    None => {
                        let r = self.regs.alloc(&format!("var `{var}`"))?;
                        self.vars.insert(var.clone(), r);
                        r
                    }
                };
                if reg != v.reg {
                    self.builder.push(Instr::Mov { rd: reg, rm: v.reg });
                }
                self.release(v);
                Ok(())
            }
            Stmt::SkimPoint => {
                let skm = self
                    .builder
                    .with_label_target(Instr::Skm { target: 0 }, END_LABEL);
                self.builder.push(skm);
                Ok(())
            }
            Stmt::Label(name) => {
                self.builder.bind_label(name);
                Ok(())
            }
            Stmt::CopyArray { dst, src } => self.lower_copy_array(dst, src),
        }
    }

    /// Whole-backing-store copy: a counted word loop over the source
    /// layout's (4-byte-padded) size. Layout-agnostic by construction —
    /// packed and planar layouts copy bit-exactly because the unit is
    /// the raw data word, not the logical element.
    fn lower_copy_array(&mut self, dst: &str, src: &str) -> Result<(), CompileError> {
        let words = self.layout(src)?.byte_size().div_ceil(4);
        if words != self.layout(dst)?.byte_size().div_ceil(4) {
            return Err(CompileError::Internal(format!(
                "CopyArray between differently sized arrays `{dst}` and `{src}`"
            )));
        }
        let src_addr = self
            .builder
            .data_symbol(src)
            .ok_or_else(|| CompileError::Internal(format!("no data symbol for `{src}`")))?;
        let dst_addr = self
            .builder
            .data_symbol(dst)
            .ok_or_else(|| CompileError::Internal(format!("no data symbol for `{dst}`")))?;
        let sp = self.temp("copy src ptr")?;
        let dp = self.temp("copy dst ptr")?;
        let cnt = self.temp("copy counter")?;
        let tmp = self.temp("copy word")?;
        self.builder.push(Instr::MovImm {
            rd: sp,
            imm: src_addr as i32,
        });
        self.builder.push(Instr::MovImm {
            rd: dp,
            imm: dst_addr as i32,
        });
        self.builder.push(Instr::MovImm { rd: cnt, imm: 0 });
        let top = self.fresh_label("copy");
        let done = self.fresh_label("copydone");
        self.builder.bind_label(&top);
        self.builder.push(Instr::CmpImm {
            rn: cnt,
            imm: words as i32,
        });
        let exit = self.builder.with_label_target(
            Instr::BCond {
                cond: wn_isa::Cond::Ge,
                target: 0,
            },
            &done,
        );
        self.builder.push(exit);
        self.builder.push(Instr::Ldr {
            rt: tmp,
            rn: sp,
            off: 0,
        });
        self.builder.push(Instr::Str {
            rt: tmp,
            rn: dp,
            off: 0,
        });
        self.builder.push(Instr::AddImm {
            rd: sp,
            rn: sp,
            imm: 4,
        });
        self.builder.push(Instr::AddImm {
            rd: dp,
            rn: dp,
            imm: 4,
        });
        self.builder.push(Instr::AddImm {
            rd: cnt,
            rn: cnt,
            imm: 1,
        });
        let back = self.builder.branch_to_label(&top);
        self.builder.push(back);
        self.builder.bind_label(&done);
        for r in [sp, dp, cnt, tmp] {
            self.regs.free(r);
        }
        Ok(())
    }

    fn lower_for(
        &mut self,
        var: &str,
        start: i32,
        end: i32,
        body: &[Stmt],
    ) -> Result<(), CompileError> {
        let reg = self.regs.alloc(&format!("loop var `{var}`"))?;
        let shadowed = self.vars.insert(var.to_string(), reg);
        debug_assert!(shadowed.is_none(), "validation rejects shadowed loop vars");
        // Scalars first assigned inside the loop are scoped to it: their
        // registers return to the pool at loop exit (keeps hoisted
        // invariants from exhausting the register file).
        let outer_vars: Vec<String> = self.vars.keys().cloned().collect();

        // Pointer induction for the innermost loop: unit-stride accesses
        // walk a byte-address register instead of recomputing scale/base
        // per access — what the paper's `-O2`-compiled baselines do.
        let saved_ptrs = std::mem::take(&mut self.ptrs);
        self.setup_ptr_inductions(var, start, body)?;

        let top = self.fresh_label("loop");
        let done = self.fresh_label("done");

        self.builder.push(Instr::MovImm {
            rd: reg,
            imm: start,
        });
        self.builder.bind_label(&top);
        self.builder.push(Instr::CmpImm { rn: reg, imm: end });
        let exit = self.builder.with_label_target(
            Instr::BCond {
                cond: wn_isa::Cond::Ge,
                target: 0,
            },
            &done,
        );
        self.builder.push(exit);
        self.stmts(body)?;
        for i in 0..self.ptrs.len() {
            let (preg, stride) = (self.ptrs[i].reg, self.ptrs[i].stride_bytes);
            self.builder.push(Instr::AddImm {
                rd: preg,
                rn: preg,
                imm: stride as i32,
            });
        }
        self.builder.push(Instr::AddImm {
            rd: reg,
            rn: reg,
            imm: 1,
        });
        let back = self.builder.branch_to_label(&top);
        self.builder.push(back);
        self.builder.bind_label(&done);

        for p in std::mem::replace(&mut self.ptrs, saved_ptrs) {
            self.regs.free(p.reg);
        }
        let inner: Vec<String> = self
            .vars
            .keys()
            .filter(|k| !outer_vars.contains(k))
            .cloned()
            .collect();
        for name in inner {
            if let Some(r) = self.vars.remove(&name) {
                self.regs.free(r);
            }
        }
        self.vars.remove(var);
        self.regs.free(reg);
        Ok(())
    }

    /// Finds the active pointer induction matching an access, if any.
    fn find_ptr(&self, array: &str, index: &Expr, level: Option<u8>) -> Option<(Reg, u8)> {
        self.ptrs
            .iter()
            .find(|p| p.array == array && p.level == level && &p.index == index)
            .map(|p| (p.reg, p.elem_bits))
    }

    /// Detects unit-stride accesses in the direct body of an innermost
    /// loop and materializes walking byte-address registers for them.
    fn setup_ptr_inductions(
        &mut self,
        var: &str,
        start: i32,
        body: &[Stmt],
    ) -> Result<(), CompileError> {
        if body.iter().any(|s| matches!(s, Stmt::For { .. })) {
            return Ok(()); // only innermost loops
        }
        let mut assigned: Vec<&str> = vec![var];
        for s in body {
            if let Stmt::Assign { var: v, .. } = s {
                assigned.push(v);
            }
        }
        let mut candidates: Vec<(String, Expr, Option<u8>)> = Vec::new();
        for s in body {
            collect_candidates(s, var, &assigned, &mut candidates);
        }
        for (array, index, level) in candidates {
            let Some(layout) = self.layouts.get(&array).copied() else {
                continue;
            };
            let (stride_bytes, elem_bits, base_extra, scale) = match (layout, level) {
                (ArrayLayout::RowMajor { elem, .. }, None) => (
                    elem.bytes(),
                    elem.bits,
                    0u32,
                    elem.bytes().trailing_zeros() as u8,
                ),
                (ArrayLayout::SubwordMajor { .. }, Some(lvl)) => {
                    (4, 32, 4 * lvl as u32 * layout.words_per_level(), 2)
                }
                _ => continue,
            };
            let Some(base_addr) = self.builder.data_symbol(&array) else {
                continue;
            };
            // Leave headroom for expression temporaries.
            let Some(preg) = self.regs.try_alloc_with_headroom(5) else {
                break;
            };

            let (inv, coeff) = split_affine(&index, var).expect("candidate is affine");
            let stride = coeff * stride_bytes;
            match inv {
                Some(inv_expr) => {
                    let v = self.eval(&inv_expr)?;
                    if scale > 0 {
                        self.builder.push(Instr::LslImm {
                            rd: preg,
                            rn: v.reg,
                            sh: scale,
                        });
                    } else {
                        self.builder.push(Instr::Mov {
                            rd: preg,
                            rm: v.reg,
                        });
                    }
                    self.release(v);
                    let base = base_addr + base_extra + (start as u32) * stride;
                    self.builder.push(Instr::AddImm {
                        rd: preg,
                        rn: preg,
                        imm: base as i32,
                    });
                }
                None => {
                    let base = base_addr + base_extra + (start as u32) * stride;
                    self.builder.push(Instr::MovImm {
                        rd: preg,
                        imm: base as i32,
                    });
                }
            }
            self.ptrs.push(PtrInduction {
                array,
                index,
                level,
                reg: preg,
                stride_bytes: stride,
                elem_bits,
            });
        }
        Ok(())
    }

    /// Materializes a register-offset access to `array[index]` for a
    /// row-major array: returns `(base, offset, elem_bits)` where `base`
    /// holds the array's (constant) byte address plus `extra_bytes` and
    /// `offset` the scaled element offset — ready for the `[rn, rm]`
    /// addressing mode, saving the explicit add of a one-register address.
    /// Both registers are owned by the caller.
    fn elem_access(
        &mut self,
        array: &str,
        index: &Expr,
        extra_bytes: u32,
    ) -> Result<(Reg, Reg, u8), CompileError> {
        let layout = *self.layout(array)?;
        let elem = match layout {
            ArrayLayout::RowMajor { elem, .. } => elem,
            other => {
                return Err(CompileError::Internal(format!(
                    "element access to non-row-major array `{array}` ({other:?})"
                )))
            }
        };
        let idx = self.eval(index)?;
        let off = self.reuse_or_temp(idx, "offset")?;
        let scale = (elem.bytes()).trailing_zeros() as u8;
        if scale > 0 {
            self.builder.push(Instr::LslImm {
                rd: off,
                rn: idx.reg,
                sh: scale,
            });
        } else if off != idx.reg {
            self.builder.push(Instr::Mov {
                rd: off,
                rm: idx.reg,
            });
        }
        let base = self.temp("base")?;
        let base_addr = self
            .builder
            .data_symbol(array)
            .ok_or_else(|| CompileError::Internal(format!("no data symbol for `{array}`")))?;
        self.builder.push(Instr::MovImm {
            rd: base,
            imm: (base_addr + extra_bytes) as i32,
        });
        Ok((base, off, elem.bits))
    }

    fn lower_store(
        &mut self,
        array: &str,
        index: &Expr,
        value: &Expr,
        accumulate: bool,
    ) -> Result<(), CompileError> {
        let v = self.eval(value)?;
        if let Some((preg, bits)) = self.find_ptr(array, index, None) {
            if accumulate {
                let old = self.temp("accum")?;
                match bits {
                    8 => self.builder.push(Instr::Ldrb {
                        rt: old,
                        rn: preg,
                        off: 0,
                    }),
                    16 => self.builder.push(Instr::Ldrh {
                        rt: old,
                        rn: preg,
                        off: 0,
                    }),
                    _ => self.builder.push(Instr::Ldr {
                        rt: old,
                        rn: preg,
                        off: 0,
                    }),
                };
                self.builder.push(Instr::Add {
                    rd: old,
                    rn: old,
                    rm: v.reg,
                });
                match bits {
                    8 => self.builder.push(Instr::Strb {
                        rt: old,
                        rn: preg,
                        off: 0,
                    }),
                    16 => self.builder.push(Instr::Strh {
                        rt: old,
                        rn: preg,
                        off: 0,
                    }),
                    _ => self.builder.push(Instr::Str {
                        rt: old,
                        rn: preg,
                        off: 0,
                    }),
                };
                self.regs.free(old);
            } else {
                match bits {
                    8 => self.builder.push(Instr::Strb {
                        rt: v.reg,
                        rn: preg,
                        off: 0,
                    }),
                    16 => self.builder.push(Instr::Strh {
                        rt: v.reg,
                        rn: preg,
                        off: 0,
                    }),
                    _ => self.builder.push(Instr::Str {
                        rt: v.reg,
                        rn: preg,
                        off: 0,
                    }),
                };
            }
            self.release(v);
            return Ok(());
        }
        let (base, off, bits) = self.elem_access(array, index, 0)?;
        if accumulate {
            let old = self.temp("accum")?;
            match bits {
                8 => self.builder.push(Instr::LdrbReg {
                    rt: old,
                    rn: base,
                    rm: off,
                }),
                16 => self.builder.push(Instr::LdrhReg {
                    rt: old,
                    rn: base,
                    rm: off,
                }),
                _ => self.builder.push(Instr::LdrReg {
                    rt: old,
                    rn: base,
                    rm: off,
                }),
            };
            self.builder.push(Instr::Add {
                rd: old,
                rn: old,
                rm: v.reg,
            });
            match bits {
                8 => self.builder.push(Instr::StrbReg {
                    rt: old,
                    rn: base,
                    rm: off,
                }),
                16 => self.builder.push(Instr::StrhReg {
                    rt: old,
                    rn: base,
                    rm: off,
                }),
                _ => self.builder.push(Instr::StrReg {
                    rt: old,
                    rn: base,
                    rm: off,
                }),
            };
            self.regs.free(old);
        } else {
            match bits {
                8 => self.builder.push(Instr::StrbReg {
                    rt: v.reg,
                    rn: base,
                    rm: off,
                }),
                16 => self.builder.push(Instr::StrhReg {
                    rt: v.reg,
                    rn: base,
                    rm: off,
                }),
                _ => self.builder.push(Instr::StrReg {
                    rt: v.reg,
                    rn: base,
                    rm: off,
                }),
            };
        }
        self.regs.free(base);
        self.regs.free(off);
        self.release(v);
        Ok(())
    }

    /// Register-offset access to packed word (`level`, `word_index`) of a
    /// subword-major array: `(base, offset)`, both owned by the caller.
    /// The constant level displacement folds into the base immediate.
    fn packed_access(
        &mut self,
        array: &str,
        level: u8,
        word_index: &Expr,
    ) -> Result<(Reg, Reg), CompileError> {
        let layout = *self.layout(array)?;
        let wpl = match layout {
            ArrayLayout::SubwordMajor { .. } => layout.words_per_level(),
            other => {
                return Err(CompileError::Internal(format!(
                    "packed access to non-subword-major array `{array}` ({other:?})"
                )))
            }
        };
        let idx = self.eval(word_index)?;
        let off = self.reuse_or_temp(idx, "packed offset")?;
        self.builder.push(Instr::LslImm {
            rd: off,
            rn: idx.reg,
            sh: 2,
        });
        let base = self.temp("packed base")?;
        let base_addr = self
            .builder
            .data_symbol(array)
            .ok_or_else(|| CompileError::Internal(format!("no data symbol for `{array}`")))?;
        let level_off = 4 * level as u32 * wpl;
        self.builder.push(Instr::MovImm {
            rd: base,
            imm: (base_addr + level_off) as i32,
        });
        Ok((base, off))
    }

    fn lower_store_packed(
        &mut self,
        array: &str,
        level: u8,
        word_index: &Expr,
        value: &Expr,
    ) -> Result<(), CompileError> {
        let v = self.eval(value)?;
        if let Some((preg, _)) = self.find_ptr(array, word_index, Some(level)) {
            self.builder.push(Instr::Str {
                rt: v.reg,
                rn: preg,
                off: 0,
            });
            self.release(v);
            return Ok(());
        }
        let (base, off) = self.packed_access(array, level, word_index)?;
        self.builder.push(Instr::StrReg {
            rt: v.reg,
            rn: base,
            rm: off,
        });
        self.regs.free(base);
        self.regs.free(off);
        self.release(v);
        Ok(())
    }

    fn lower_store_component(
        &mut self,
        array: &str,
        elem_index: &Expr,
        level: u8,
        value: &Expr,
    ) -> Result<(), CompileError> {
        let layout = *self.layout(array)?;
        let n_sub = match layout {
            ArrayLayout::ComponentMajor { n_sub, .. } => n_sub,
            other => {
                return Err(CompileError::Internal(format!(
                    "component store to non-component-major array `{array}` ({other:?})"
                )))
            }
        };
        let v = self.eval(value)?;
        // offset = 4 * elem_index * n_sub; the constant level
        // displacement folds into the base immediate.
        let idx = self.eval(elem_index)?;
        let off = self.reuse_or_temp(idx, "component offset")?;
        self.emit_mul_by_const(off, idx.reg, n_sub as i32)?;
        self.builder.push(Instr::LslImm {
            rd: off,
            rn: off,
            sh: 2,
        });
        let base = self.temp("component base")?;
        let base_addr = self
            .builder
            .data_symbol(array)
            .ok_or_else(|| CompileError::Internal(format!("no data symbol for `{array}`")))?;
        self.builder.push(Instr::MovImm {
            rd: base,
            imm: (base_addr + 4 * level as u32) as i32,
        });
        self.builder.push(Instr::StrReg {
            rt: v.reg,
            rn: base,
            rm: off,
        });
        self.regs.free(base);
        self.regs.free(off);
        self.release(v);
        Ok(())
    }

    // ---- expressions ------------------------------------------------------

    fn eval(&mut self, e: &Expr) -> Result<Value, CompileError> {
        match e {
            Expr::Const(c) => {
                let r = self.temp("const")?;
                self.builder.push(Instr::MovImm { rd: r, imm: *c });
                Ok(Value {
                    reg: r,
                    owned: true,
                })
            }
            Expr::Var(name) => {
                let reg = *self
                    .vars
                    .get(name)
                    .ok_or_else(|| CompileError::UndefinedVar { var: name.clone() })?;
                Ok(Value { reg, owned: false })
            }
            Expr::Load { array, index } => {
                if let Some((preg, bits)) = self.find_ptr(array, index, None) {
                    let rt = self.temp("load")?;
                    match bits {
                        8 => self.builder.push(Instr::Ldrb {
                            rt,
                            rn: preg,
                            off: 0,
                        }),
                        16 => self.builder.push(Instr::Ldrh {
                            rt,
                            rn: preg,
                            off: 0,
                        }),
                        _ => self.builder.push(Instr::Ldr {
                            rt,
                            rn: preg,
                            off: 0,
                        }),
                    };
                    return Ok(Value {
                        reg: rt,
                        owned: true,
                    });
                }
                let (base, off, bits) = self.elem_access(array, index, 0)?;
                let rt = self.temp("load")?;
                match bits {
                    8 => self.builder.push(Instr::LdrbReg {
                        rt,
                        rn: base,
                        rm: off,
                    }),
                    16 => self.builder.push(Instr::LdrhReg {
                        rt,
                        rn: base,
                        rm: off,
                    }),
                    _ => self.builder.push(Instr::LdrReg {
                        rt,
                        rn: base,
                        rm: off,
                    }),
                };
                self.regs.free(base);
                self.regs.free(off);
                Ok(Value {
                    reg: rt,
                    owned: true,
                })
            }
            Expr::LoadSub {
                array,
                index,
                width,
                shift,
            } => self.eval_load_sub(array, index, *width, *shift),
            Expr::LoadPacked {
                array,
                level,
                word_index,
            } => {
                if let Some((preg, _)) = self.find_ptr(array, word_index, Some(*level)) {
                    let rt = self.temp("packed load")?;
                    self.builder.push(Instr::Ldr {
                        rt,
                        rn: preg,
                        off: 0,
                    });
                    return Ok(Value {
                        reg: rt,
                        owned: true,
                    });
                }
                let (base, off) = self.packed_access(array, *level, word_index)?;
                let rt = self.temp("packed load")?;
                self.builder.push(Instr::LdrReg {
                    rt,
                    rn: base,
                    rm: off,
                });
                self.regs.free(base);
                self.regs.free(off);
                Ok(Value {
                    reg: rt,
                    owned: true,
                })
            }
            Expr::Bin { op, a, b } => self.eval_bin(*op, a, b),
            Expr::MulAsp {
                full,
                sub,
                width,
                shift,
            } => {
                let f = self.eval(full)?;
                let s = self.eval(sub)?;
                let rd = self.temp("mul_asp")?;
                self.builder.push(Instr::MulAsp {
                    rd,
                    rn: f.reg,
                    rm: s.reg,
                    bits: *width,
                    shift: *shift,
                });
                self.release(f);
                self.release(s);
                Ok(Value {
                    reg: rd,
                    owned: true,
                })
            }
            Expr::AsvBin {
                op,
                a,
                b,
                lane_bits,
            } => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                let rd = self.reuse_or_temp(va, "asv")?;
                // A single 32-bit lane (provisioned 16-bit subwords) is a
                // plain full-width operation — no mux reconfiguration.
                let lanes = if *lane_bits == 32 {
                    None
                } else {
                    Some(LaneWidth::from_bits(*lane_bits).ok_or_else(|| {
                        CompileError::Internal(format!("bad ASV lane width {lane_bits}"))
                    })?)
                };
                match (op, lanes) {
                    (BinOp::Add, Some(lanes)) => self.builder.push(Instr::AddAsv {
                        rd,
                        rn: va.reg,
                        rm: vb.reg,
                        lanes,
                    }),
                    (BinOp::Sub, Some(lanes)) => self.builder.push(Instr::SubAsv {
                        rd,
                        rn: va.reg,
                        rm: vb.reg,
                        lanes,
                    }),
                    (BinOp::Add, None) => self.builder.push(Instr::Add {
                        rd,
                        rn: va.reg,
                        rm: vb.reg,
                    }),
                    (BinOp::Sub, None) => self.builder.push(Instr::Sub {
                        rd,
                        rn: va.reg,
                        rm: vb.reg,
                    }),
                    (other, _) => {
                        return Err(CompileError::Internal(format!(
                            "ASV op {other:?} should have been lowered as a plain logical op"
                        )))
                    }
                };
                self.release(vb);
                Ok(Value {
                    reg: rd,
                    owned: true,
                })
            }
            Expr::HSum { value, lane_bits } => self.eval_hsum(value, *lane_bits),
            Expr::Shl(x, sh) => {
                let v = self.eval(x)?;
                let rd = self.reuse_or_temp(v, "shl")?;
                self.builder.push(Instr::LslImm {
                    rd,
                    rn: v.reg,
                    sh: *sh,
                });
                Ok(Value {
                    reg: rd,
                    owned: true,
                })
            }
            Expr::Shr(x, sh) => {
                let v = self.eval(x)?;
                let rd = self.reuse_or_temp(v, "shr")?;
                self.builder.push(Instr::LsrImm {
                    rd,
                    rn: v.reg,
                    sh: *sh,
                });
                Ok(Value {
                    reg: rd,
                    owned: true,
                })
            }
        }
    }

    fn eval_bin(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Result<Value, CompileError> {
        // Constant-multiply strength reduction keeps the iterative
        // multiplier out of index arithmetic.
        if op == BinOp::Mul {
            if let Expr::Const(c) = b {
                let v = self.eval(a)?;
                let rd = self.reuse_or_temp(v, "mul-const")?;
                self.emit_mul_by_const(rd, v.reg, *c)?;
                return Ok(Value {
                    reg: rd,
                    owned: true,
                });
            }
            if let Expr::Const(c) = a {
                let v = self.eval(b)?;
                let rd = self.reuse_or_temp(v, "mul-const")?;
                self.emit_mul_by_const(rd, v.reg, *c)?;
                return Ok(Value {
                    reg: rd,
                    owned: true,
                });
            }
        }
        // Immediate forms for add/sub/and with a constant right operand.
        if let Expr::Const(c) = b {
            match op {
                BinOp::Add | BinOp::Sub | BinOp::And => {
                    let v = self.eval(a)?;
                    let rd = self.reuse_or_temp(v, "bin-imm")?;
                    let instr = match op {
                        BinOp::Add => Instr::AddImm {
                            rd,
                            rn: v.reg,
                            imm: *c,
                        },
                        BinOp::Sub => Instr::SubImm {
                            rd,
                            rn: v.reg,
                            imm: *c,
                        },
                        _ => Instr::AndImm {
                            rd,
                            rn: v.reg,
                            imm: *c,
                        },
                    };
                    self.builder.push(instr);
                    return Ok(Value {
                        reg: rd,
                        owned: true,
                    });
                }
                _ => {}
            }
        }
        let va = self.eval(a)?;
        let vb = self.eval(b)?;
        let rd = self.reuse_or_temp(va, "bin")?;
        let instr = match op {
            BinOp::Add => Instr::Add {
                rd,
                rn: va.reg,
                rm: vb.reg,
            },
            BinOp::Sub => Instr::Sub {
                rd,
                rn: va.reg,
                rm: vb.reg,
            },
            BinOp::Mul => Instr::Mul {
                rd,
                rn: va.reg,
                rm: vb.reg,
            },
            BinOp::And => Instr::And {
                rd,
                rn: va.reg,
                rm: vb.reg,
            },
            BinOp::Or => Instr::Orr {
                rd,
                rn: va.reg,
                rm: vb.reg,
            },
            BinOp::Xor => Instr::Eor {
                rd,
                rn: va.reg,
                rm: vb.reg,
            },
        };
        self.builder.push(instr);
        self.release(vb);
        Ok(Value {
            reg: rd,
            owned: true,
        })
    }

    fn eval_load_sub(
        &mut self,
        array: &str,
        index: &Expr,
        width: u8,
        shift: u8,
    ) -> Result<Value, CompileError> {
        let layout = *self.layout(array)?;
        let bits = width;
        let shift = shift as u32;
        match layout {
            ArrayLayout::RowMajor { elem, .. } => {
                if bits == 8 && shift.is_multiple_of(8) {
                    // Byte-aligned subword: a single LDRB (paper
                    // Listing 2); the byte displacement folds into the
                    // base immediate (or the pointer's offset field).
                    if let Some((preg, _)) = self.find_ptr(array, index, None) {
                        let rt = self.temp("sub load")?;
                        self.builder.push(Instr::Ldrb {
                            rt,
                            rn: preg,
                            off: (shift / 8) as i32,
                        });
                        return Ok(Value {
                            reg: rt,
                            owned: true,
                        });
                    }
                    let (base, off, _) = self.elem_access(array, index, shift / 8)?;
                    let rt = self.temp("sub load")?;
                    self.builder.push(Instr::LdrbReg {
                        rt,
                        rn: base,
                        rm: off,
                    });
                    self.regs.free(base);
                    self.regs.free(off);
                    Ok(Value {
                        reg: rt,
                        owned: true,
                    })
                } else {
                    // General extraction: load the element, shift, mask.
                    let v = self.eval(&Expr::Load {
                        array: array.to_string(),
                        index: Box::new(index.clone()),
                    })?;
                    let rd = self.reuse_or_temp(v, "sub extract")?;
                    if shift > 0 {
                        self.builder.push(Instr::LsrImm {
                            rd,
                            rn: v.reg,
                            sh: shift as u8,
                        });
                    } else if rd != v.reg {
                        self.builder.push(Instr::Mov { rd, rm: v.reg });
                    }
                    // Zero-extended loads make the top subword mask-free.
                    if shift + (bits as u32) < elem.bits as u32 {
                        let mask = ((1u32 << bits) - 1) as i32;
                        self.builder.push(Instr::AndImm {
                            rd,
                            rn: rd,
                            imm: mask,
                        });
                    }
                    Ok(Value {
                        reg: rd,
                        owned: true,
                    })
                }
            }
            ArrayLayout::SubwordMajor {
                sub_bits,
                lane_bits,
                ..
            } => {
                // Element access on a transposed array (correctness path
                // when vectorized loads could not rewrite a use): locate
                // the packed word, then extract the lane dynamically.
                if sub_bits != bits || !shift.is_multiple_of(bits as u32) {
                    return Err(CompileError::Internal(format!(
                        "subword load width {bits}@{shift} mismatches layout sub_bits {sub_bits}"
                    )));
                }
                let pos = (shift / bits as u32) as u8;
                let lanes = 32 / lane_bits as u32;
                let idx = self.eval(index)?;
                // word index = index / lanes
                let word = self.temp("sub word idx")?;
                self.builder.push(Instr::LsrImm {
                    rd: word,
                    rn: idx.reg,
                    sh: lanes.trailing_zeros() as u8,
                });
                // lane shift = (index % lanes) * lane_bits
                let lane_sh = self.temp("lane shift")?;
                self.builder.push(Instr::AndImm {
                    rd: lane_sh,
                    rn: idx.reg,
                    imm: (lanes - 1) as i32,
                });
                self.builder.push(Instr::LslImm {
                    rd: lane_sh,
                    rn: lane_sh,
                    sh: lane_bits.trailing_zeros() as u8,
                });
                self.release(idx);
                let addr = self.packed_addr_reg(array, pos, word)?;
                let rt = self.temp("sub packed load")?;
                self.builder.push(Instr::Ldr {
                    rt,
                    rn: addr,
                    off: 0,
                });
                self.regs.free(addr);
                self.builder.push(Instr::LsrReg {
                    rd: rt,
                    rn: rt,
                    rm: lane_sh,
                });
                self.regs.free(lane_sh);
                let mask = ((1u64 << bits) - 1) as i32;
                self.builder.push(Instr::AndImm {
                    rd: rt,
                    rn: rt,
                    imm: mask,
                });
                Ok(Value {
                    reg: rt,
                    owned: true,
                })
            }
            other => Err(CompileError::Internal(format!(
                "subword load from array `{array}` with layout {other:?}"
            ))),
        }
    }

    /// Like `packed_addr` but the word index is already in a register
    /// (which is consumed).
    fn packed_addr_reg(&mut self, array: &str, level: u8, word: Reg) -> Result<Reg, CompileError> {
        let layout = *self.layout(array)?;
        let wpl = layout.words_per_level();
        self.builder.push(Instr::LslImm {
            rd: word,
            rn: word,
            sh: 2,
        });
        let level_off = 4 * level as i32 * wpl as i32;
        if level_off != 0 {
            self.builder.push(Instr::AddImm {
                rd: word,
                rn: word,
                imm: level_off,
            });
        }
        let base = self.temp("packed base")?;
        let base_addr = self
            .builder
            .data_symbol(array)
            .ok_or_else(|| CompileError::Internal(format!("no data symbol for `{array}`")))?;
        self.builder.push(Instr::MovImm {
            rd: base,
            imm: base_addr as i32,
        });
        self.builder.push(Instr::Add {
            rd: word,
            rn: word,
            rm: base,
        });
        self.regs.free(base);
        Ok(word)
    }

    fn eval_hsum(&mut self, value: &Expr, lane_bits: u8) -> Result<Value, CompileError> {
        let v = self.eval(value)?;
        let lanes = 32 / lane_bits as u32;
        let mask = ((1u64 << lane_bits) - 1) as i32;
        let acc = self.temp("hsum acc")?;
        self.builder.push(Instr::AndImm {
            rd: acc,
            rn: v.reg,
            imm: mask,
        });
        let scratch = self.temp("hsum scratch")?;
        for l in 1..lanes {
            self.builder.push(Instr::LsrImm {
                rd: scratch,
                rn: v.reg,
                sh: (l * lane_bits as u32) as u8,
            });
            if l < lanes - 1 {
                self.builder.push(Instr::AndImm {
                    rd: scratch,
                    rn: scratch,
                    imm: mask,
                });
            }
            self.builder.push(Instr::Add {
                rd: acc,
                rn: acc,
                rm: scratch,
            });
        }
        self.regs.free(scratch);
        self.release(v);
        Ok(Value {
            reg: acc,
            owned: true,
        })
    }

    /// rd = rs * c via shifts and adds. `rd` may alias `rs`.
    fn emit_mul_by_const(&mut self, rd: Reg, rs: Reg, c: i32) -> Result<(), CompileError> {
        match c {
            0 => {
                self.builder.push(Instr::MovImm { rd, imm: 0 });
                return Ok(());
            }
            1 => {
                if rd != rs {
                    self.builder.push(Instr::Mov { rd, rm: rs });
                }
                return Ok(());
            }
            _ => {}
        }
        let negative = c < 0;
        let mag = c.unsigned_abs();
        if mag.is_power_of_two() {
            self.builder.push(Instr::LslImm {
                rd,
                rn: rs,
                sh: mag.trailing_zeros() as u8,
            });
        } else {
            // Binary decomposition: acc = Σ rs << bit_i.
            let acc = self.temp("mul-const acc")?;
            let mut first = true;
            for bit in 0..32 {
                if mag & (1 << bit) != 0 {
                    if first {
                        if bit == 0 {
                            self.builder.push(Instr::Mov { rd: acc, rm: rs });
                        } else {
                            self.builder.push(Instr::LslImm {
                                rd: acc,
                                rn: rs,
                                sh: bit,
                            });
                        }
                        first = false;
                    } else {
                        let t = self.temp("mul-const term")?;
                        self.builder.push(Instr::LslImm {
                            rd: t,
                            rn: rs,
                            sh: bit,
                        });
                        self.builder.push(Instr::Add {
                            rd: acc,
                            rn: acc,
                            rm: t,
                        });
                        self.regs.free(t);
                    }
                }
            }
            if rd != acc {
                self.builder.push(Instr::Mov { rd, rm: acc });
            }
            self.regs.free(acc);
        }
        if negative {
            self.builder.push(Instr::Rsb { rd, rn: rd });
        }
        Ok(())
    }
}

/// Decomposes `index` as a linear form in `var`: a sum of
/// `var`-independent terms plus `coeff * var` (from bare `var` uses and
/// `var * const` products anywhere in a sum tree). Returns
/// `Some((invariant_sum, coeff))` with `coeff >= 1`, or `None` when the
/// expression is not linear in `var`.
fn split_affine(index: &Expr, var: &str) -> Option<(Option<Expr>, u32)> {
    let mut inv_terms: Vec<Expr> = Vec::new();
    let mut coeff: u32 = 0;
    decompose_linear(index, var, &mut inv_terms, &mut coeff)?;
    if coeff == 0 {
        return None; // the access does not move with the loop
    }
    let inv = inv_terms.into_iter().reduce(|a, b| Expr::Bin {
        op: BinOp::Add,
        a: Box::new(a),
        b: Box::new(b),
    });
    Some((inv, coeff))
}

fn decompose_linear(e: &Expr, var: &str, inv_terms: &mut Vec<Expr>, coeff: &mut u32) -> Option<()> {
    match e {
        Expr::Var(v) if v == var => {
            *coeff = coeff.checked_add(1)?;
            Some(())
        }
        Expr::Bin {
            op: BinOp::Add,
            a,
            b,
        } => {
            decompose_linear(a, var, inv_terms, coeff)?;
            decompose_linear(b, var, inv_terms, coeff)
        }
        Expr::Bin {
            op: BinOp::Mul,
            a,
            b,
        } => {
            match (a.as_ref(), b.as_ref()) {
                (Expr::Var(v), Expr::Const(c)) | (Expr::Const(c), Expr::Var(v))
                    if v == var && *c > 0 =>
                {
                    *coeff = coeff.checked_add(*c as u32)?;
                    return Some(());
                }
                _ => {}
            }
            if uses_var(e, var) {
                None
            } else {
                inv_terms.push(e.clone());
                Some(())
            }
        }
        other if !uses_var(other, var) => {
            inv_terms.push(other.clone());
            Some(())
        }
        _ => None,
    }
}

fn uses_var(e: &Expr, var: &str) -> bool {
    let mut found = false;
    e.visit(&mut |node| {
        if matches!(node, Expr::Var(v) if v == var) {
            found = true;
        }
    });
    found
}

/// Is `e` safe to evaluate once before the loop: free of the loop/assigned
/// variables and of memory accesses?
fn induction_invariant(e: &Expr, assigned: &[&str]) -> bool {
    let mut ok = true;
    e.visit(&mut |node| match node {
        Expr::Var(v) if assigned.iter().any(|a| a == v) => ok = false,
        Expr::Load { .. } | Expr::LoadSub { .. } | Expr::LoadPacked { .. } => ok = false,
        _ => {}
    });
    ok
}

fn consider(
    array: &str,
    index: &Expr,
    level: Option<u8>,
    var: &str,
    assigned: &[&str],
    out: &mut Vec<(String, Expr, Option<u8>)>,
) {
    let Some((inv, _coeff)) = split_affine(index, var) else {
        return;
    };
    if let Some(inv) = &inv {
        if !induction_invariant(inv, assigned) {
            return;
        }
    }
    if !out
        .iter()
        .any(|(a, i, l)| a == array && i == index && *l == level)
    {
        out.push((array.to_string(), index.clone(), level));
    }
}

fn collect_candidates_expr(
    e: &Expr,
    var: &str,
    assigned: &[&str],
    out: &mut Vec<(String, Expr, Option<u8>)>,
) {
    e.visit(&mut |node| match node {
        Expr::Load { array, index } | Expr::LoadSub { array, index, .. } => {
            consider(array, index, None, var, assigned, out)
        }
        Expr::LoadPacked {
            array,
            level,
            word_index,
        } => consider(array, word_index, Some(*level), var, assigned, out),
        _ => {}
    });
}

fn collect_candidates(
    stmt: &Stmt,
    var: &str,
    assigned: &[&str],
    out: &mut Vec<(String, Expr, Option<u8>)>,
) {
    match stmt {
        Stmt::Store {
            array,
            index,
            value,
        }
        | Stmt::AccumStore {
            array,
            index,
            value,
        } => {
            consider(array, index, None, var, assigned, out);
            collect_candidates_expr(index, var, assigned, out);
            collect_candidates_expr(value, var, assigned, out);
        }
        Stmt::StorePacked {
            array,
            level,
            word_index,
            value,
        } => {
            consider(array, word_index, Some(*level), var, assigned, out);
            collect_candidates_expr(word_index, var, assigned, out);
            collect_candidates_expr(value, var, assigned, out);
        }
        Stmt::StoreComponent {
            elem_index, value, ..
        } => {
            collect_candidates_expr(elem_index, var, assigned, out);
            collect_candidates_expr(value, var, assigned, out);
        }
        Stmt::Assign { value, .. } => collect_candidates_expr(value, var, assigned, out),
        Stmt::For { .. } | Stmt::SkimPoint | Stmt::Label(_) | Stmt::CopyArray { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ArrayBuilder;
    use crate::layout::ElemType;

    fn layouts_for(kernel: &KernelIr) -> HashMap<String, ArrayLayout> {
        kernel
            .arrays
            .iter()
            .map(|a| {
                (
                    a.name.clone(),
                    ArrayLayout::RowMajor {
                        elem: a.elem,
                        len: a.len,
                    },
                )
            })
            .collect()
    }

    fn copy_kernel() -> KernelIr {
        KernelIr::new("copy")
            .array(ArrayBuilder::input("A", 4).elem16())
            .array(ArrayBuilder::output("X", 4))
            .body(vec![Stmt::for_loop(
                "i",
                0,
                4,
                vec![Stmt::store(
                    "X",
                    Expr::var("i"),
                    Expr::load("A", Expr::var("i")),
                )],
            )])
    }

    #[test]
    fn lowers_copy_loop() {
        let k = copy_kernel();
        let p = lower(&k, &layouts_for(&k)).unwrap();
        p.validate().unwrap();
        assert!(p.data_symbol("A").is_some());
        assert!(p.data_symbol("X").is_some());
        assert!(p.code_symbol(END_LABEL).is_some());
        assert!(matches!(p.instrs.last(), Some(Instr::Halt)));
        // Contains a loop: a backward branch.
        assert!(p
            .instrs
            .iter()
            .enumerate()
            .any(|(i, ins)| match ins.branch_target() {
                Some(t) => (t as usize) < i && matches!(ins, Instr::B { .. }),
                None => false,
            }));
    }

    #[test]
    fn data_blocks_are_aligned_and_sized() {
        let k = KernelIr::new("sizes")
            .array(ArrayBuilder::input("B8", 5).elem8())
            .array(ArrayBuilder::input("H16", 3).elem16())
            .array(ArrayBuilder::output("W32", 2));
        let p = lower(&k, &layouts_for(&k)).unwrap();
        let b8 = p.data_symbol("B8").unwrap();
        let h16 = p.data_symbol("H16").unwrap();
        let w32 = p.data_symbol("W32").unwrap();
        assert_eq!(b8, 0);
        assert_eq!(h16, 8, "5 bytes rounded to 8");
        assert_eq!(w32, 16, "6 bytes rounded to 8");
        assert_eq!(p.initial_data.len(), 24);
    }

    #[test]
    fn undefined_var_is_an_error() {
        let k = KernelIr::new("bad")
            .array(ArrayBuilder::output("X", 1))
            .body(vec![Stmt::store("X", Expr::c(0), Expr::var("nope"))]);
        assert!(matches!(
            lower(&k, &layouts_for(&k)),
            Err(CompileError::UndefinedVar { .. })
        ));
    }

    #[test]
    fn const_multiply_is_strength_reduced() {
        // X[0] = v * 136 (Conv2d row stride): no MUL instruction allowed.
        let k = KernelIr::new("sr")
            .array(ArrayBuilder::input("A", 1).elem16())
            .array(ArrayBuilder::output("X", 1))
            .body(vec![Stmt::store(
                "X",
                Expr::c(0),
                Expr::load("A", Expr::c(0)) * Expr::c(136),
            )]);
        let p = lower(&k, &layouts_for(&k)).unwrap();
        assert!(
            !p.instrs.iter().any(|i| matches!(i, Instr::Mul { .. })),
            "constant multiply must not use the iterative multiplier"
        );
    }

    #[test]
    fn data_multiply_uses_mul() {
        let k = KernelIr::new("mm")
            .array(ArrayBuilder::input("A", 1).elem16())
            .array(ArrayBuilder::input("B", 1).elem16())
            .array(ArrayBuilder::output("X", 1))
            .body(vec![Stmt::store(
                "X",
                Expr::c(0),
                Expr::load("A", Expr::c(0)) * Expr::load("B", Expr::c(0)),
            )]);
        let p = lower(&k, &layouts_for(&k)).unwrap();
        assert_eq!(
            p.instrs
                .iter()
                .filter(|i| matches!(i, Instr::Mul { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn skim_point_targets_end() {
        let k = KernelIr::new("skim")
            .array(ArrayBuilder::output("X", 1))
            .body(vec![
                Stmt::store("X", Expr::c(0), Expr::c(1)),
                Stmt::SkimPoint,
            ]);
        let p = lower(&k, &layouts_for(&k)).unwrap();
        let end = p.code_symbol(END_LABEL).unwrap();
        assert!(p
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Skm { target } if *target == end)));
    }

    #[test]
    fn packed_store_addresses_levels() {
        let mut layouts = HashMap::new();
        let elem = ElemType::u32();
        layouts.insert(
            "P".to_string(),
            ArrayLayout::subword_major(elem, 8, 8, false).unwrap(),
        );
        let k = KernelIr::new("packed")
            .array(ArrayBuilder::output("P", 8).elem32().asv_output())
            .body(vec![Stmt::StorePacked {
                array: "P".to_string(),
                level: 3,
                word_index: Expr::c(1),
                value: Expr::c(0x42),
            }]);
        let p = lower(&k, &layouts).unwrap();
        p.validate().unwrap();
        // 2 words per level, level 3 → the +24 byte level displacement is
        // folded into the base-address immediate (P sits at address 0).
        assert!(p
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::MovImm { imm: 24, .. })));
    }

    #[test]
    fn hsum_expands_to_shift_mask_add() {
        let k = KernelIr::new("hsum")
            .array(ArrayBuilder::output("X", 1))
            .body(vec![
                Stmt::assign("acc", Expr::c(0x01020304)),
                Stmt::store(
                    "X",
                    Expr::c(0),
                    Expr::HSum {
                        value: Box::new(Expr::var("acc")),
                        lane_bits: 8,
                    },
                ),
            ]);
        let p = lower(&k, &layouts_for(&k)).unwrap();
        let adds = p
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Add { .. }))
            .count();
        assert!(adds >= 3, "4 lanes need 3 adds, found {adds}");
    }

    #[test]
    fn register_pool_is_balanced() {
        // After lowering a deeply nested kernel, codegen must not leak
        // registers (checked indirectly: lowering twice gives identical
        // output).
        let k = copy_kernel();
        let p1 = lower(&k, &layouts_for(&k)).unwrap();
        let p2 = lower(&k, &layouts_for(&k)).unwrap();
        assert_eq!(p1.instrs, p2.instrs);
    }

    #[test]
    fn deep_nest_lowers() {
        let k = KernelIr::new("nest")
            .array(ArrayBuilder::output("X", 16))
            .body(vec![Stmt::for_loop(
                "i",
                0,
                2,
                vec![Stmt::for_loop(
                    "j",
                    0,
                    2,
                    vec![Stmt::for_loop(
                        "k",
                        0,
                        2,
                        vec![Stmt::for_loop(
                            "l",
                            0,
                            2,
                            vec![Stmt::store(
                                "X",
                                ((Expr::var("i") * Expr::c(8)) + (Expr::var("j") * Expr::c(4)))
                                    + ((Expr::var("k") * Expr::c(2)) + Expr::var("l")),
                                Expr::var("i") + Expr::var("j") + Expr::var("k") + Expr::var("l"),
                            )],
                        )],
                    )],
                )],
            )]);
        let p = lower(&k, &layouts_for(&k)).unwrap();
        p.validate().unwrap();
    }
}
