//! The wn-serve wire protocol: JSON lines over a byte stream.
//!
//! Every message is one JSON object on one `\n`-terminated line.
//! Requests carry `"schema":"wn-serve-req-v1"`, responses
//! `"wn-serve-resp-v1"`, and progress events pushed to `watch`
//! subscribers `"wn-serve-evt-v1"` — versioned exactly like the
//! `wn-fleet-*-v1` artifact schemas so incompatible changes rev the
//! suffix instead of silently breaking peers.
//!
//! The parser here is deliberately small and total: a flat JSON object
//! of string/number/bool/null values, with full string unescaping
//! (scenario text rides inside a string field, so `\"` and `\\` are
//! routine, not edge cases). Anything else — nesting, trailing bytes,
//! bad escapes, truncation, an oversized line — is a typed
//! [`ProtoError`], never a panic and never a hang.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Read;

use wn_telemetry::json::{escape, Obj};

/// Request-line schema tag.
pub const REQ_SCHEMA: &str = "wn-serve-req-v1";
/// Response-line schema tag.
pub const RESP_SCHEMA: &str = "wn-serve-resp-v1";
/// Pushed progress-event schema tag.
pub const EVT_SCHEMA: &str = "wn-serve-evt-v1";

/// Hard cap on one protocol line. Scenarios are a few KiB and reports a
/// few hundred KiB; anything beyond this is a confused or hostile peer,
/// and the reader must bound memory before parsing.
pub const MAX_LINE_BYTES: usize = 4 * 1024 * 1024;

/// Everything that can go wrong reading or parsing protocol lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Line exceeded [`MAX_LINE_BYTES`] before a `\n` arrived.
    Oversized { limit: usize },
    /// Stream ended mid-line (no trailing newline).
    Truncated,
    /// Line is not valid UTF-8.
    Utf8,
    /// Line is not the flat JSON object the protocol speaks.
    Malformed(String),
    /// Well-formed JSON, but not a valid message of the expected kind.
    BadMessage(String),
    /// Underlying transport error.
    Io(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Oversized { limit } => {
                write!(f, "protocol line exceeds {limit} bytes")
            }
            ProtoError::Truncated => write!(f, "stream ended mid-line"),
            ProtoError::Utf8 => write!(f, "protocol line is not valid UTF-8"),
            ProtoError::Malformed(m) => write!(f, "malformed protocol line: {m}"),
            ProtoError::BadMessage(m) => write!(f, "bad protocol message: {m}"),
            ProtoError::Io(m) => write!(f, "protocol transport error: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> ProtoError {
        ProtoError::Io(e.to_string())
    }
}

/// One value in a flat protocol object.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parsed flat JSON object. `BTreeMap` so iteration (and thus any
/// re-serialization) is deterministic.
pub type Fields = BTreeMap<String, Value>;

/// Parses one protocol line into its fields.
///
/// # Errors
///
/// [`ProtoError::Malformed`] on anything that is not a flat JSON object
/// (nesting included — the protocol is deliberately flat), duplicate
/// keys included: a peer sending `{"op":"a","op":"b"}` is ambiguous and
/// gets an error, mirroring the scenario parser's duplicate-key stance.
pub fn parse_object(line: &str) -> Result<Fields, ProtoError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = Fields::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            if fields.insert(key.clone(), value).is_some() {
                return Err(ProtoError::Malformed(format!("duplicate key `{key}`")));
            }
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(ProtoError::Malformed("expected `,` or `}`".to_string())),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(ProtoError::Malformed(
            "trailing bytes after object".to_string(),
        ));
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), ProtoError> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            _ => Err(ProtoError::Malformed(format!(
                "expected `{}`",
                want as char
            ))),
        }
    }

    /// A JSON string, fully unescaped (including `\uXXXX` with
    /// surrogate pairs).
    fn string(&mut self) -> Result<String, ProtoError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Consume a run of plain UTF-8 without byte-at-a-time
            // decoding.
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| ProtoError::Utf8)?,
            );
            match self.next() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: require the paired low.
                            if self.next() != Some(b'\\') || self.next() != Some(b'u') {
                                return Err(ProtoError::Malformed(
                                    "unpaired surrogate escape".to_string(),
                                ));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(ProtoError::Malformed(
                                    "invalid low surrogate".to_string(),
                                ));
                            }
                            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(cp)
                        } else {
                            char::from_u32(hi)
                        };
                        out.push(c.ok_or_else(|| {
                            ProtoError::Malformed("invalid \\u escape".to_string())
                        })?);
                    }
                    _ => {
                        return Err(ProtoError::Malformed("invalid escape".to_string()));
                    }
                },
                _ => {
                    return Err(ProtoError::Malformed(
                        "unterminated or control byte in string".to_string(),
                    ))
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ProtoError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.next() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(ProtoError::Malformed("bad hex escape".to_string())),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Value, ProtoError> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b'{' | b'[') => Err(ProtoError::Malformed(
                "nested values are not part of this protocol".to_string(),
            )),
            _ => Err(ProtoError::Malformed("expected a value".to_string())),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ProtoError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(ProtoError::Malformed(format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Value, ProtoError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|v| v.is_finite())
            .map(Value::Num)
            .ok_or_else(|| ProtoError::Malformed("invalid number".to_string()))
    }
}

/// Reads `\n`-terminated lines from a byte stream with a hard length
/// cap, robust to arbitrary read fragmentation: a line split across
/// any number of reads reassembles byte-exactly.
pub struct LineReader<R> {
    inner: R,
    /// Bytes read but not yet consumed into a returned line.
    buf: Vec<u8>,
    /// Scan position: everything before this has been checked for `\n`.
    scanned: usize,
    max_line: usize,
    chunk: [u8; 8192],
}

impl<R: Read> LineReader<R> {
    pub fn new(inner: R) -> LineReader<R> {
        LineReader::with_max_line(inner, MAX_LINE_BYTES)
    }

    pub fn with_max_line(inner: R, max_line: usize) -> LineReader<R> {
        LineReader {
            inner,
            buf: Vec::new(),
            scanned: 0,
            max_line,
            chunk: [0; 8192],
        }
    }

    /// The next complete line (without its newline), `None` at a clean
    /// end of stream.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Oversized`] once a line passes the cap (without
    /// buffering the rest), [`ProtoError::Truncated`] if the stream
    /// ends mid-line, [`ProtoError::Utf8`] on invalid UTF-8, and
    /// [`ProtoError::Io`] on transport errors.
    pub fn next_line(&mut self) -> Result<Option<String>, ProtoError> {
        loop {
            if let Some(nl) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                let end = self.scanned + nl;
                if end > self.max_line {
                    return Err(ProtoError::Oversized {
                        limit: self.max_line,
                    });
                }
                let mut line: Vec<u8> = self.buf.drain(..=end).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                self.scanned = 0;
                let line = String::from_utf8(line).map_err(|_| ProtoError::Utf8)?;
                return Ok(Some(line));
            }
            self.scanned = self.buf.len();
            if self.buf.len() > self.max_line {
                return Err(ProtoError::Oversized {
                    limit: self.max_line,
                });
            }
            let n = self.inner.read(&mut self.chunk)?;
            if n == 0 {
                if self.buf.is_empty() {
                    return Ok(None);
                }
                return Err(ProtoError::Truncated);
            }
            self.buf.extend_from_slice(&self.chunk[..n]);
        }
    }
}

/// Client → server requests.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a scenario for execution; `scenario` is the raw scenario
    /// text (TOML or JSON), byte-exactly what a CLI run would parse —
    /// which is what keeps the fingerprint, and therefore the report,
    /// identical across the service and CLI paths.
    Submit { scenario: String },
    /// Fetch the finished `wn-fleet-report-v1` document for a
    /// fingerprint.
    Report { fingerprint: u64 },
    /// Subscribe to `wn-fleet-shard-v1` progress lines for a
    /// fingerprint; the connection receives `wn-serve-evt-v1` events
    /// until the job finishes.
    Watch { fingerprint: u64 },
    /// Queue, store, and compilation-cache statistics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Graceful daemon shutdown (pause in-flight work at the next
    /// shard boundary).
    Shutdown,
}

impl Request {
    /// Serializes the request as one protocol line (no newline).
    pub fn to_line(&self) -> String {
        let o = Obj::new().str("schema", REQ_SCHEMA);
        match self {
            Request::Submit { scenario } => {
                o.str("op", "submit").str("scenario", scenario).finish()
            }
            Request::Report { fingerprint } => o
                .str("op", "report")
                .str("fingerprint", &format!("{fingerprint:016x}"))
                .finish(),
            Request::Watch { fingerprint } => o
                .str("op", "watch")
                .str("fingerprint", &format!("{fingerprint:016x}"))
                .finish(),
            Request::Stats => o.str("op", "stats").finish(),
            Request::Ping => o.str("op", "ping").finish(),
            Request::Shutdown => o.str("op", "shutdown").finish(),
        }
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] for non-JSON, [`ProtoError::BadMessage`]
    /// for JSON that is not a `wn-serve-req-v1` request.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let fields = parse_object(line)?;
        let bad = |msg: String| ProtoError::BadMessage(msg);
        match fields.get("schema").and_then(Value::as_str) {
            Some(REQ_SCHEMA) => {}
            Some(other) => return Err(bad(format!("unexpected schema `{other}`"))),
            None => return Err(bad("missing schema field".to_string())),
        }
        let op = fields
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing op field".to_string()))?;
        let fingerprint = || {
            fields
                .get("fingerprint")
                .and_then(Value::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| bad(format!("op `{op}` needs a hex fingerprint")))
        };
        match op {
            "submit" => {
                let scenario = fields
                    .get("scenario")
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad("submit needs a scenario field".to_string()))?;
                Ok(Request::Submit {
                    scenario: scenario.to_string(),
                })
            }
            "report" => Ok(Request::Report {
                fingerprint: fingerprint()?,
            }),
            "watch" => Ok(Request::Watch {
                fingerprint: fingerprint()?,
            }),
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(bad(format!("unknown op `{other}`"))),
        }
    }
}

/// Job lifecycle states reported by `submit` and `report`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Done,
}

impl JobState {
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
        }
    }

    pub fn parse(s: &str) -> Option<JobState> {
        match s {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "done" => Some(JobState::Done),
            _ => None,
        }
    }
}

/// Server → client responses (one per request, in order).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Submission accepted (or recognized: resubmitting a known
    /// fingerprint is idempotent and reports its current state).
    Submitted { fingerprint: u64, state: JobState },
    /// The finished report document, verbatim `wn-fleet-report-v1`
    /// bytes.
    Report { fingerprint: u64, report: String },
    /// The job exists but has not finished; poll again or `watch`.
    Pending { fingerprint: u64, state: JobState },
    /// Watch subscription confirmed; events follow on this connection.
    Watching { fingerprint: u64 },
    /// Daemon statistics.
    Stats {
        queued: u64,
        running: u64,
        done: u64,
        cache_len: u64,
        cache_capacity: u64,
        cache_evictions: u64,
        cache_hits: u64,
        cache_misses: u64,
        /// Supply fast-forward memo lookups served from the tables
        /// (`wn_energy::memo_stats`), across every sweep this daemon ran.
        supply_memo_hits: u64,
        /// Supply memo lookups that computed a fresh entry.
        supply_memo_misses: u64,
        /// 1 ms recharge steps elided by zero-run charge sprints.
        supply_charge_ff_steps: u64,
    },
    /// Ping reply.
    Pong,
    /// Shutdown acknowledged.
    ShuttingDown,
    /// The request failed; `error` says why.
    Error { error: String },
}

impl Response {
    /// Serializes the response as one protocol line (no newline).
    pub fn to_line(&self) -> String {
        let o = Obj::new().str("schema", RESP_SCHEMA);
        match self {
            Response::Submitted { fingerprint, state } => o
                .str("op", "submit")
                .bool("ok", true)
                .str("fingerprint", &format!("{fingerprint:016x}"))
                .str("state", state.as_str())
                .finish(),
            Response::Report {
                fingerprint,
                report,
            } => o
                .str("op", "report")
                .bool("ok", true)
                .str("fingerprint", &format!("{fingerprint:016x}"))
                .str("report", report)
                .finish(),
            Response::Pending { fingerprint, state } => o
                .str("op", "report")
                .bool("ok", false)
                .str("fingerprint", &format!("{fingerprint:016x}"))
                .str("state", state.as_str())
                .str("error", "not finished")
                .finish(),
            Response::Watching { fingerprint } => o
                .str("op", "watch")
                .bool("ok", true)
                .str("fingerprint", &format!("{fingerprint:016x}"))
                .finish(),
            Response::Stats {
                queued,
                running,
                done,
                cache_len,
                cache_capacity,
                cache_evictions,
                cache_hits,
                cache_misses,
                supply_memo_hits,
                supply_memo_misses,
                supply_charge_ff_steps,
            } => o
                .str("op", "stats")
                .bool("ok", true)
                .u64("queued", *queued)
                .u64("running", *running)
                .u64("done", *done)
                .u64("cache_len", *cache_len)
                .u64("cache_capacity", *cache_capacity)
                .u64("cache_evictions", *cache_evictions)
                .u64("cache_hits", *cache_hits)
                .u64("cache_misses", *cache_misses)
                .u64("supply_memo_hits", *supply_memo_hits)
                .u64("supply_memo_misses", *supply_memo_misses)
                .u64("supply_charge_ff_steps", *supply_charge_ff_steps)
                .finish(),
            Response::Pong => o.str("op", "ping").bool("ok", true).finish(),
            Response::ShuttingDown => o.str("op", "shutdown").bool("ok", true).finish(),
            Response::Error { error } => o.bool("ok", false).str("error", error).finish(),
        }
    }

    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// As [`Request::parse`], for responses.
    pub fn parse(line: &str) -> Result<Response, ProtoError> {
        let fields = parse_object(line)?;
        let bad = |msg: String| ProtoError::BadMessage(msg);
        match fields.get("schema").and_then(Value::as_str) {
            Some(RESP_SCHEMA) => {}
            Some(other) => return Err(bad(format!("unexpected schema `{other}`"))),
            None => return Err(bad("missing schema field".to_string())),
        }
        let ok = fields
            .get("ok")
            .and_then(Value::as_bool)
            .ok_or_else(|| bad("missing ok field".to_string()))?;
        let op = fields.get("op").and_then(Value::as_str).unwrap_or("");
        let fingerprint = || {
            fields
                .get("fingerprint")
                .and_then(Value::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| bad("missing/invalid fingerprint".to_string()))
        };
        let state = || {
            fields
                .get("state")
                .and_then(Value::as_str)
                .and_then(JobState::parse)
                .ok_or_else(|| bad("missing/invalid state".to_string()))
        };
        let u64_field = |name: &str| {
            fields
                .get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| bad(format!("missing/invalid {name}")))
        };
        if !ok {
            // `report` on an unfinished job is the one structured
            // failure; everything else is a plain error.
            if op == "report" && fields.contains_key("state") {
                return Ok(Response::Pending {
                    fingerprint: fingerprint()?,
                    state: state()?,
                });
            }
            let error = fields
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("unspecified error")
                .to_string();
            return Ok(Response::Error { error });
        }
        match op {
            "submit" => Ok(Response::Submitted {
                fingerprint: fingerprint()?,
                state: state()?,
            }),
            "report" => Ok(Response::Report {
                fingerprint: fingerprint()?,
                report: fields
                    .get("report")
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad("missing report field".to_string()))?
                    .to_string(),
            }),
            "watch" => Ok(Response::Watching {
                fingerprint: fingerprint()?,
            }),
            "stats" => Ok(Response::Stats {
                queued: u64_field("queued")?,
                running: u64_field("running")?,
                done: u64_field("done")?,
                cache_len: u64_field("cache_len")?,
                cache_capacity: u64_field("cache_capacity")?,
                cache_evictions: u64_field("cache_evictions")?,
                cache_hits: u64_field("cache_hits")?,
                cache_misses: u64_field("cache_misses")?,
                // Supply-memo fields default to zero so a newer client
                // can read a pre-supply-stats daemon's reply.
                supply_memo_hits: u64_field("supply_memo_hits").unwrap_or(0),
                supply_memo_misses: u64_field("supply_memo_misses").unwrap_or(0),
                supply_charge_ff_steps: u64_field("supply_charge_ff_steps").unwrap_or(0),
            }),
            "ping" => Ok(Response::Pong),
            "shutdown" => Ok(Response::ShuttingDown),
            other => Err(bad(format!("unknown response op `{other}`"))),
        }
    }
}

/// A pushed progress event for one `watch` subscription.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// One completed shard; `line` carries the verbatim
    /// `wn-fleet-shard-v1` JSON line — byte-identical to what the
    /// shard log on disk receives.
    Shard {
        fingerprint: u64,
        shard: u64,
        shard_count: u64,
        line: String,
    },
    /// The job finished; the report is now fetchable.
    Done { fingerprint: u64 },
}

impl Event {
    pub fn to_line(&self) -> String {
        let o = Obj::new().str("schema", EVT_SCHEMA);
        match self {
            Event::Shard {
                fingerprint,
                shard,
                shard_count,
                line,
            } => o
                .str("event", "shard")
                .str("fingerprint", &format!("{fingerprint:016x}"))
                .u64("shard", *shard)
                .u64("shard_count", *shard_count)
                .str("line", line)
                .finish(),
            Event::Done { fingerprint } => o
                .str("event", "done")
                .str("fingerprint", &format!("{fingerprint:016x}"))
                .finish(),
        }
    }

    /// Parses one event line.
    ///
    /// # Errors
    ///
    /// As [`Request::parse`], for events.
    pub fn parse(line: &str) -> Result<Event, ProtoError> {
        let fields = parse_object(line)?;
        let bad = |msg: String| ProtoError::BadMessage(msg);
        match fields.get("schema").and_then(Value::as_str) {
            Some(EVT_SCHEMA) => {}
            Some(other) => return Err(bad(format!("unexpected schema `{other}`"))),
            None => return Err(bad("missing schema field".to_string())),
        }
        let fingerprint = fields
            .get("fingerprint")
            .and_then(Value::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| bad("missing/invalid fingerprint".to_string()))?;
        match fields.get("event").and_then(Value::as_str) {
            Some("shard") => Ok(Event::Shard {
                fingerprint,
                shard: fields
                    .get("shard")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| bad("missing shard".to_string()))?,
                shard_count: fields
                    .get("shard_count")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| bad("missing shard_count".to_string()))?,
                line: fields
                    .get("line")
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad("missing line".to_string()))?
                    .to_string(),
            }),
            Some("done") => Ok(Event::Done { fingerprint }),
            Some(other) => Err(bad(format!("unknown event `{other}`"))),
            None => Err(bad("missing event field".to_string())),
        }
    }
}

/// Escapes `s` as the body of a JSON string (no quotes). Re-exported
/// convenience over [`wn_telemetry::json::escape`] so protocol users
/// have one import.
pub fn escape_str(s: &str) -> String {
    escape(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_their_lines() {
        let reqs = [
            Request::Submit {
                scenario: "[fleet]\nname = \"x\"\n".to_string(),
            },
            Request::Report { fingerprint: 0xabc },
            Request::Watch {
                fingerprint: u64::MAX,
            },
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ];
        for r in reqs {
            let line = r.to_line();
            assert!(!line.contains('\n'), "line-framed: {line}");
            assert_eq!(Request::parse(&line).unwrap(), r);
        }
    }

    #[test]
    fn responses_round_trip_through_their_lines() {
        let resps = [
            Response::Submitted {
                fingerprint: 1,
                state: JobState::Queued,
            },
            Response::Report {
                fingerprint: 2,
                report: r#"{"schema":"wn-fleet-report-v1","x":"a\"b\\c"}"#.to_string(),
            },
            Response::Pending {
                fingerprint: 3,
                state: JobState::Running,
            },
            Response::Watching { fingerprint: 4 },
            Response::Stats {
                queued: 1,
                running: 2,
                done: 3,
                cache_len: 4,
                cache_capacity: 5,
                cache_evictions: 6,
                cache_hits: 7,
                cache_misses: 8,
                supply_memo_hits: 9,
                supply_memo_misses: 10,
                supply_charge_ff_steps: 11,
            },
            Response::Pong,
            Response::ShuttingDown,
            Response::Error {
                error: "nope".to_string(),
            },
        ];
        for r in resps {
            let line = r.to_line();
            assert!(!line.contains('\n'), "line-framed: {line}");
            assert_eq!(Response::parse(&line).unwrap(), r);
        }
    }

    #[test]
    fn events_round_trip_through_their_lines() {
        let evts = [
            Event::Shard {
                fingerprint: 9,
                shard: 0,
                shard_count: 3,
                line: r#"{"schema":"wn-fleet-shard-v1","shard":0}"#.to_string(),
            },
            Event::Done { fingerprint: 9 },
        ];
        for e in evts {
            let line = e.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(Event::parse(&line).unwrap(), e);
        }
    }

    #[test]
    fn scenario_text_survives_the_submit_line_byte_exactly() {
        // The whole design rests on this: scenario text with quotes,
        // backslashes, newlines, tabs, and unicode crosses the wire
        // unchanged, so fingerprints agree with the CLI path.
        let scenario = "[fleet]\nname = \"we\\\"ird\"\n# π ≈ 3.14159\t(tab)\r\n";
        let line = Request::Submit {
            scenario: scenario.to_string(),
        }
        .to_line();
        match Request::parse(&line).unwrap() {
            Request::Submit { scenario: back } => assert_eq!(back, scenario),
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_are_errors_not_panics() {
        for line in [
            "",
            "not json",
            "{",
            "{}",
            r#"{"schema":"wn-serve-req-v1"}"#,
            r#"{"schema":"wn-serve-req-v2","op":"ping"}"#,
            r#"{"schema":"wn-serve-req-v1","op":"nope"}"#,
            r#"{"schema":"wn-serve-req-v1","op":"report"}"#,
            r#"{"schema":"wn-serve-req-v1","op":"report","fingerprint":"zz"}"#,
            r#"{"op":"ping","op":"ping"}"#,
            r#"{"nested":{"not":"allowed"}}"#,
            r#"{"arr":[1,2]}"#,
            r#"{"bad":"\u12"}"#,
            r#"{"bad":"\ud800x"}"#,
            r#"{"n":1e999}"#,
            r#"{"x":"ok"} trailing"#,
        ] {
            assert!(Request::parse(line).is_err(), "accepted: {line}");
        }
    }

    #[test]
    fn line_reader_handles_split_and_crlf_lines() {
        // One byte per read: maximum fragmentation.
        struct OneByte<'a>(&'a [u8], usize);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let data = b"alpha\nbeta\r\n\ngamma\n";
        let mut r = LineReader::new(OneByte(data, 0));
        assert_eq!(r.next_line().unwrap().as_deref(), Some("alpha"));
        assert_eq!(r.next_line().unwrap().as_deref(), Some("beta"));
        assert_eq!(r.next_line().unwrap().as_deref(), Some(""));
        assert_eq!(r.next_line().unwrap().as_deref(), Some("gamma"));
        assert_eq!(r.next_line().unwrap(), None);
    }

    #[test]
    fn line_reader_rejects_oversized_and_truncated() {
        let mut r = LineReader::with_max_line(&b"aaaaaaaaaa\n"[..], 4);
        assert_eq!(r.next_line(), Err(ProtoError::Oversized { limit: 4 }));

        let mut r = LineReader::new(&b"complete\npartial"[..]);
        assert_eq!(r.next_line().unwrap().as_deref(), Some("complete"));
        assert_eq!(r.next_line(), Err(ProtoError::Truncated));
    }
}
