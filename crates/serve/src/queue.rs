//! A bounded FIFO job queue with blocking pop.
//!
//! Submissions enqueue here; the scheduler thread pops and runs them
//! over the shared `wn_core::jobs::JobPool`. The bound is the daemon's
//! backpressure: a full queue rejects the submit (the client sees a
//! typed error and retries later) instead of growing without limit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// One queued sweep: the scenario fingerprint plus the raw scenario
/// text to parse and run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedJob {
    pub fingerprint: u64,
    pub scenario_text: String,
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; retry after jobs drain.
    Full { capacity: usize },
    /// The fingerprint is already queued (idempotent submit).
    AlreadyQueued,
}

struct QueueState {
    jobs: VecDeque<QueuedJob>,
    closed: bool,
}

/// The bounded queue. All methods recover from mutex poisoning — the
/// state is a plain `VecDeque` mutated only by complete push/pop
/// operations, so a panicking holder cannot tear it.
pub struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

impl JobQueue {
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues a job.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::AlreadyQueued`] if
    /// the fingerprint is already waiting.
    pub fn push(&self, job: QueuedJob) -> Result<(), PushError> {
        let mut state = self.lock();
        if state.jobs.iter().any(|j| j.fingerprint == job.fingerprint) {
            return Err(PushError::AlreadyQueued);
        }
        if state.jobs.len() >= self.capacity {
            return Err(PushError::Full {
                capacity: self.capacity,
            });
        }
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Pops the next job, blocking up to `wait` for one to arrive.
    /// Returns `None` on timeout or once the queue is closed and
    /// drained.
    pub fn pop(&self, wait: Duration) -> Option<QueuedJob> {
        let mut state = self.lock();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            let (next, timeout) = self
                .ready
                .wait_timeout(state, wait)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
            if timeout.timed_out() {
                return state.jobs.pop_front();
            }
        }
    }

    /// Is this fingerprint waiting in the queue?
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.lock()
            .jobs
            .iter()
            .any(|j| j.fingerprint == fingerprint)
    }

    pub fn len(&self) -> usize {
        self.lock().jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: pending jobs still drain, new pops return
    /// `None` once empty, and blocked pops wake immediately.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn job(fp: u64) -> QueuedJob {
        QueuedJob {
            fingerprint: fp,
            scenario_text: format!("scenario {fp}"),
        }
    }

    #[test]
    fn fifo_order_and_capacity_bound() {
        let q = JobQueue::new(2);
        q.push(job(1)).unwrap();
        q.push(job(2)).unwrap();
        assert_eq!(
            q.push(job(3)),
            Err(PushError::Full { capacity: 2 }),
            "third push must be refused"
        );
        assert_eq!(q.pop(Duration::ZERO).unwrap().fingerprint, 1);
        assert_eq!(q.pop(Duration::ZERO).unwrap().fingerprint, 2);
        assert!(q.pop(Duration::ZERO).is_none());
    }

    #[test]
    fn duplicate_fingerprints_are_refused() {
        let q = JobQueue::new(4);
        q.push(job(7)).unwrap();
        assert_eq!(q.push(job(7)), Err(PushError::AlreadyQueued));
        assert!(q.contains(7));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn blocked_pop_wakes_on_push_and_on_close() {
        let q = Arc::new(JobQueue::new(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        q.push(job(9)).unwrap();
        assert_eq!(popper.join().unwrap().unwrap().fingerprint, 9);

        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(popper.join().unwrap().is_none(), "close wakes empty pops");
    }
}
