//! The daemon's on-disk state, keyed by scenario fingerprint.
//!
//! Layout under the data directory:
//!
//! ```text
//! jobs/<fp>.scenario     raw submitted scenario text (the job journal)
//! ckpt/<fp>.ckpt.json    wn-fleet-ckpt-v1 shard checkpoint (while running)
//! shards/<fp>.jsonl      wn-fleet-shard-v1 progress lines (append-only)
//! store/<fp>.report.json finished wn-fleet-report-v1 document
//! ```
//!
//! Every publish goes through [`wn_fleet::persist_atomic`]'s pinned
//! write/sync/rename/sync-dir sequence, so the invariant a restart
//! leans on — *a journaled scenario without a stored report is exactly
//! an unfinished job* — holds across kill -9 and power failure. The
//! scenario is journaled byte-exactly as submitted: the fingerprint is
//! a pure function of the parsed scenario, so the resumed run and the
//! report it produces are byte-identical to an uninterrupted one.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use wn_fleet::persist_atomic;

/// On-disk store rooted at one data directory.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

fn fp_hex(fingerprint: u64) -> String {
    format!("{fingerprint:016x}")
}

impl Store {
    /// Opens (creating directories as needed) the store at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: &Path) -> io::Result<Store> {
        for sub in ["jobs", "ckpt", "shards", "store"] {
            fs::create_dir_all(root.join(sub))?;
        }
        Ok(Store {
            root: root.to_path_buf(),
        })
    }

    pub fn scenario_path(&self, fingerprint: u64) -> PathBuf {
        self.root
            .join("jobs")
            .join(format!("{}.scenario", fp_hex(fingerprint)))
    }

    pub fn checkpoint_path(&self, fingerprint: u64) -> PathBuf {
        self.root
            .join("ckpt")
            .join(format!("{}.ckpt.json", fp_hex(fingerprint)))
    }

    pub fn shard_log_path(&self, fingerprint: u64) -> PathBuf {
        self.root
            .join("shards")
            .join(format!("{}.jsonl", fp_hex(fingerprint)))
    }

    pub fn report_path(&self, fingerprint: u64) -> PathBuf {
        self.root
            .join("store")
            .join(format!("{}.report.json", fp_hex(fingerprint)))
    }

    /// Journals a submitted scenario durably. Must complete before the
    /// submit is acknowledged — an acknowledged job survives any crash.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn journal_scenario(&self, fingerprint: u64, text: &str) -> io::Result<()> {
        persist_atomic(&self.scenario_path(fingerprint), text.as_bytes())
    }

    /// The journaled scenario text, if this fingerprint was submitted.
    pub fn scenario(&self, fingerprint: u64) -> Option<String> {
        fs::read_to_string(self.scenario_path(fingerprint)).ok()
    }

    /// Publishes a finished report durably.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn publish_report(&self, fingerprint: u64, report_json: &str) -> io::Result<()> {
        persist_atomic(&self.report_path(fingerprint), report_json.as_bytes())
    }

    /// The stored report document, if finished.
    pub fn report(&self, fingerprint: u64) -> Option<String> {
        fs::read_to_string(self.report_path(fingerprint)).ok()
    }

    /// Whether a finished report exists.
    pub fn is_done(&self, fingerprint: u64) -> bool {
        self.report_path(fingerprint).exists()
    }

    /// Stored reports count (for `stats`).
    pub fn done_count(&self) -> u64 {
        fs::read_dir(self.root.join("store"))
            .map(|d| d.filter_map(Result::ok).count() as u64)
            .unwrap_or(0)
    }

    /// Fingerprints journaled but not finished — the restart-recovery
    /// set. Sorted, so recovery order is deterministic.
    pub fn unfinished(&self) -> Vec<u64> {
        let mut out = Vec::new();
        if let Ok(dir) = fs::read_dir(self.root.join("jobs")) {
            for entry in dir.filter_map(Result::ok) {
                let name = entry.file_name();
                let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".scenario")) else {
                    continue;
                };
                let Ok(fp) = u64::from_str_radix(stem, 16) else {
                    continue;
                };
                if !self.is_done(fp) {
                    out.push(fp);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> (PathBuf, Store) {
        let root =
            std::env::temp_dir().join(format!("wn-serve-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let store = Store::open(&root).unwrap();
        (root, store)
    }

    #[test]
    fn journal_then_publish_moves_a_job_from_unfinished_to_done() {
        let (root, store) = temp_store("lifecycle");
        assert!(store.unfinished().is_empty());

        store
            .journal_scenario(0xfeed, "[fleet]\nname = \"x\"\n")
            .unwrap();
        assert_eq!(store.unfinished(), vec![0xfeed]);
        assert!(!store.is_done(0xfeed));
        assert_eq!(store.scenario(0xfeed).unwrap(), "[fleet]\nname = \"x\"\n");

        store
            .publish_report(0xfeed, "{\"schema\":\"wn-fleet-report-v1\"}")
            .unwrap();
        assert!(store.is_done(0xfeed));
        assert!(store.unfinished().is_empty());
        assert_eq!(store.done_count(), 1);
        assert_eq!(
            store.report(0xfeed).unwrap(),
            "{\"schema\":\"wn-fleet-report-v1\"}"
        );

        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn unfinished_recovery_set_is_sorted_and_ignores_foreign_files() {
        let (root, store) = temp_store("recovery");
        store.journal_scenario(0xbbb, "b").unwrap();
        store.journal_scenario(0xaaa, "a").unwrap();
        fs::write(root.join("jobs").join("not-a-fingerprint.txt"), "x").unwrap();
        assert_eq!(store.unfinished(), vec![0xaaa, 0xbbb]);
        fs::remove_dir_all(&root).unwrap();
    }
}
