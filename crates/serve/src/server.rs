//! The wn-serve daemon: accept loop, request handling, and the
//! scheduler that drains the job queue through the fleet runner.
//!
//! One scenario runs at a time (the fleet runner already saturates the
//! machine through `wn_core::jobs::JobPool`); concurrency lives in the
//! queue, the subscriber fan-out, and the per-connection threads. The
//! durability story is a composition of invariants proved lower in the
//! stack: submits are journaled before they are acknowledged
//! ([`crate::store`]), every shard boundary is a durable checkpoint
//! ([`wn_fleet::checkpoint`]), and a fleet report is a pure function of
//! its scenario — so a daemon killed at any instant and restarted over
//! the same data directory serves byte-identical reports.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

use wn_core::prepared::{prepared_cache_stats, set_prepared_cache_capacity};
use wn_fleet::{run_fleet_with, FleetEngine, FleetOptions, FleetScenario, FleetStatus};

use crate::protocol::{Event, JobState, LineReader, ProtoError, Request, Response, MAX_LINE_BYTES};
use crate::queue::{JobQueue, PushError, QueuedJob};
use crate::store::Store;

/// How often blocking loops (accept, scheduler pop, watch forward)
/// re-check the stop flag.
const POLL: Duration = Duration::from_millis(25);

/// SIGTERM/SIGINT land here; polled by every server with signal
/// handlers installed. Process-global by nature — the handler has no
/// way to address one server instance.
static SIGNAL_STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: one atomic store.
    SIGNAL_STOP.store(true, Ordering::SeqCst);
}

/// Installs the handler for SIGTERM (15) and SIGINT (2) via the libc
/// `signal` symbol directly — the toolchain links libc on this target
/// and the container offers no signal-handling crate.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(15, handler); // SIGTERM
        signal(2, handler); // SIGINT
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Root of the durable store ([`crate::store`] layout).
    pub data_dir: PathBuf,
    /// Job-queue bound: submits beyond this are refused, not buffered.
    pub queue_capacity: usize,
    /// Worker width for fleet runs; `None` uses the global pool.
    pub jobs: Option<usize>,
    /// Fleet execution engine (results are byte-identical across
    /// engines).
    pub engine: FleetEngine,
    /// Rebound the process-wide compilation cache at startup.
    pub prepared_cache_capacity: Option<usize>,
    /// Install SIGTERM/SIGINT handlers that trigger graceful pause.
    /// Tests restarting servers in-process leave this off and drive
    /// [`ServerHandle::shutdown`] instead — the signal flag is
    /// process-global and would couple them.
    pub install_signal_handlers: bool,
    /// Fault-injection hook for tests and CI: pause every job after
    /// this many newly-run shards, leaving it checkpointed and
    /// unfinished — a deterministic stand-in for a kill arriving
    /// mid-scenario. A daemon restarted without the hook resumes and
    /// finishes the job.
    pub stop_after_shards: Option<usize>,
}

impl ServeConfig {
    /// Daemon defaults rooted at `data_dir`, binding an ephemeral
    /// localhost port.
    pub fn new(data_dir: PathBuf) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            data_dir,
            queue_capacity: 64,
            jobs: None,
            engine: FleetEngine::default(),
            prepared_cache_capacity: None,
            install_signal_handlers: false,
            stop_after_shards: None,
        }
    }
}

/// Shared server state.
struct Inner {
    store: Store,
    queue: JobQueue,
    /// Graceful-stop flag: accept loop stops accepting, the in-flight
    /// run pauses at its next shard boundary (checkpoint already
    /// durable), scheduler exits.
    stop: AtomicBool,
    /// Fingerprint currently executing, if any.
    running: Mutex<Option<u64>>,
    /// Jobs that failed with a fleet error this process lifetime.
    failed: Mutex<HashMap<u64, String>>,
    /// Progress subscribers per fingerprint.
    subscribers: Mutex<HashMap<u64, Vec<mpsc::Sender<Event>>>>,
    jobs: Option<usize>,
    engine: FleetEngine,
    signals: bool,
    stop_after_shards: Option<usize>,
}

impl Inner {
    fn stopping(&self) -> bool {
        if self.signals && SIGNAL_STOP.load(Ordering::SeqCst) {
            // Mirror the process-global signal into this server's flag
            // so the in-flight run's pause reference observes it.
            self.stop.store(true, Ordering::SeqCst);
        }
        self.stop.load(Ordering::SeqCst)
    }

    fn running_fp(&self) -> Option<u64> {
        *self.running.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The externally visible state of a fingerprint, if known.
    fn job_state(&self, fp: u64) -> Option<JobState> {
        if self.store.is_done(fp) {
            Some(JobState::Done)
        } else if self.running_fp() == Some(fp) {
            Some(JobState::Running)
        } else if self.queue.contains(fp) || self.store.scenario(fp).is_some() {
            Some(JobState::Queued)
        } else {
            None
        }
    }

    fn subscribe(&self, fp: u64) -> mpsc::Receiver<Event> {
        let (tx, rx) = mpsc::channel();
        self.subscribers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(fp)
            .or_default()
            .push(tx);
        rx
    }

    fn broadcast(&self, fp: u64, event: &Event) {
        let mut subs = self
            .subscribers
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(list) = subs.get_mut(&fp) {
            // Dead subscribers (dropped receivers) fall out here.
            list.retain(|tx| tx.send(event.clone()).is_ok());
        }
        if matches!(event, Event::Done { .. }) {
            subs.remove(&fp);
        }
    }
}

/// A started daemon: its bound address plus the accept/scheduler
/// threads to join.
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful stop: pause in-flight work at the next
    /// shard boundary, stop accepting, drain threads.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.queue.close();
    }

    /// Waits for the accept and scheduler threads to exit. Connection
    /// threads are detached; they die with their sockets.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Starts the daemon: opens the store, re-enqueues unfinished jobs
/// from the journal (each resumes from its shard checkpoint), binds
/// the listener, and spawns the accept and scheduler threads.
///
/// # Errors
///
/// Propagates store-open and bind failures.
pub fn start(config: &ServeConfig) -> std::io::Result<ServerHandle> {
    if let Some(cap) = config.prepared_cache_capacity {
        set_prepared_cache_capacity(cap);
    }
    if config.install_signal_handlers {
        install_signal_handlers();
    }
    let store = Store::open(&config.data_dir)?;
    let inner = Arc::new(Inner {
        queue: JobQueue::new(config.queue_capacity),
        stop: AtomicBool::new(false),
        running: Mutex::new(None),
        failed: Mutex::new(HashMap::new()),
        subscribers: Mutex::new(HashMap::new()),
        jobs: config.jobs,
        engine: config.engine,
        signals: config.install_signal_handlers,
        stop_after_shards: config.stop_after_shards,
        store,
    });

    // Crash recovery: every journaled scenario without a report is an
    // unfinished job; re-enqueue it to resume from its checkpoint.
    for fp in inner.store.unfinished() {
        if let Some(text) = inner.store.scenario(fp) {
            let _ = inner.queue.push(QueuedJob {
                fingerprint: fp,
                scenario_text: text,
            });
        }
    }

    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let accept_inner = Arc::clone(&inner);
    let accept = thread::spawn(move || accept_loop(&accept_inner, &listener));
    let sched_inner = Arc::clone(&inner);
    let scheduler = thread::spawn(move || scheduler_loop(&sched_inner));

    Ok(ServerHandle {
        addr,
        inner,
        threads: vec![accept, scheduler],
    })
}

fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    while !inner.stopping() {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_inner = Arc::clone(inner);
                thread::spawn(move || {
                    let _ = serve_connection(&conn_inner, stream);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
    // Stop feeding the scheduler and wake its blocked pop.
    inner.queue.close();
}

fn scheduler_loop(inner: &Arc<Inner>) {
    loop {
        if inner.stopping() {
            return;
        }
        let Some(job) = inner.queue.pop(POLL) else {
            continue;
        };
        run_job(inner, &job);
    }
}

fn run_job(inner: &Arc<Inner>, job: &QueuedJob) {
    let fp = job.fingerprint;
    let scenario = match FleetScenario::parse(&job.scenario_text) {
        Ok(s) => s,
        Err(e) => {
            // Submits are parse-validated, so only journal corruption
            // lands here; surface it through `report`.
            inner
                .failed
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(fp, e.to_string());
            return;
        }
    };
    *inner.running.lock().unwrap_or_else(PoisonError::into_inner) = Some(fp);
    let options = FleetOptions {
        jobs: inner.jobs,
        engine: inner.engine,
        checkpoint: Some(inner.store.checkpoint_path(fp)),
        resume: true,
        shard_log: Some(inner.store.shard_log_path(fp)),
        stop_after_shards: inner.stop_after_shards,
    };
    let shard_count = scenario.shard_count() as u64;
    let result = run_fleet_with(&scenario, &options, Some(&inner.stop), |p| {
        inner.broadcast(
            fp,
            &Event::Shard {
                fingerprint: fp,
                shard: p.shard as u64,
                shard_count,
                line: p.line.to_string(),
            },
        );
    });
    *inner.running.lock().unwrap_or_else(PoisonError::into_inner) = None;
    match result {
        Ok(FleetStatus::Complete(report)) => {
            match inner.store.publish_report(fp, &report.to_json()) {
                Ok(()) => {
                    // Checkpoint is now redundant; the report is the
                    // durable artifact.
                    let _ = std::fs::remove_file(inner.store.checkpoint_path(fp));
                    inner.broadcast(fp, &Event::Done { fingerprint: fp });
                }
                Err(e) => {
                    inner
                        .failed
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .insert(fp, format!("publishing report: {e}"));
                }
            }
        }
        Ok(FleetStatus::Paused { .. }) => {
            // Stop-flag pause: the checkpoint holds the progress; the
            // journal still lists the job, so the next start resumes
            // it. Nothing to record.
        }
        Err(e) => {
            inner
                .failed
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(fp, e.to_string());
        }
    }
}

/// Handles one client connection: a request/response loop, with
/// `watch` switching the connection to event streaming until the
/// watched job finishes.
fn serve_connection(inner: &Arc<Inner>, stream: TcpStream) -> Result<(), ProtoError> {
    let write_stream = stream.try_clone()?;
    let mut out = std::io::BufWriter::new(write_stream);
    let mut reader = LineReader::with_max_line(stream, MAX_LINE_BYTES);
    loop {
        let line = match reader.next_line() {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(()),
            Err(e @ (ProtoError::Truncated | ProtoError::Io(_))) => return Err(e),
            Err(e) => {
                // Parse-level garbage gets a structured error; an
                // oversized line has desynced framing, so close after.
                send_line(
                    &mut out,
                    &Response::Error {
                        error: e.to_string(),
                    }
                    .to_line(),
                )?;
                if matches!(e, ProtoError::Oversized { .. }) {
                    return Err(e);
                }
                continue;
            }
        };
        let request = match Request::parse(&line) {
            Ok(r) => r,
            Err(e) => {
                send_line(
                    &mut out,
                    &Response::Error {
                        error: e.to_string(),
                    }
                    .to_line(),
                )?;
                continue;
            }
        };
        match request {
            Request::Submit { scenario } => {
                let resp = handle_submit(inner, &scenario);
                send_line(&mut out, &resp.to_line())?;
            }
            Request::Report { fingerprint } => {
                let resp = handle_report(inner, fingerprint);
                send_line(&mut out, &resp.to_line())?;
            }
            Request::Watch { fingerprint } => {
                // Subscribe before the done-check so a finish between
                // the two still delivers its Done event.
                let rx = inner.subscribe(fingerprint);
                send_line(&mut out, &Response::Watching { fingerprint }.to_line())?;
                if inner.store.is_done(fingerprint) {
                    send_line(&mut out, &Event::Done { fingerprint }.to_line())?;
                    continue;
                }
                loop {
                    match rx.recv_timeout(POLL) {
                        Ok(event) => {
                            let done = matches!(event, Event::Done { .. });
                            send_line(&mut out, &event.to_line())?;
                            if done {
                                break;
                            }
                        }
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            if inner.stopping() {
                                return Ok(());
                            }
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => {
                            // Broadcaster dropped us (job finished and
                            // map entry cleared) — emit Done if the
                            // report landed, else close.
                            if inner.store.is_done(fingerprint) {
                                send_line(&mut out, &Event::Done { fingerprint }.to_line())?;
                            }
                            break;
                        }
                    }
                }
            }
            Request::Stats => {
                let cache = prepared_cache_stats();
                let memo = wn_energy::memo_stats::snapshot();
                let resp = Response::Stats {
                    queued: inner.queue.len() as u64,
                    running: u64::from(inner.running_fp().is_some()),
                    done: inner.store.done_count(),
                    cache_len: cache.len as u64,
                    cache_capacity: cache.capacity as u64,
                    cache_evictions: cache.evictions,
                    cache_hits: cache.hits,
                    cache_misses: cache.misses,
                    supply_memo_hits: memo.memo_hits,
                    supply_memo_misses: memo.memo_misses,
                    supply_charge_ff_steps: memo.charge_ff_steps,
                };
                send_line(&mut out, &resp.to_line())?;
            }
            Request::Ping => send_line(&mut out, &Response::Pong.to_line())?,
            Request::Shutdown => {
                send_line(&mut out, &Response::ShuttingDown.to_line())?;
                inner.stop.store(true, Ordering::SeqCst);
                inner.queue.close();
            }
        }
    }
}

fn handle_submit(inner: &Arc<Inner>, scenario_text: &str) -> Response {
    let scenario = match FleetScenario::parse(scenario_text) {
        Ok(s) => s,
        Err(e) => {
            return Response::Error {
                error: e.to_string(),
            }
        }
    };
    let fp = scenario.fingerprint();
    // Idempotent resubmit: a known fingerprint reports its state.
    if let Some(state) = inner.job_state(fp) {
        return Response::Submitted {
            fingerprint: fp,
            state,
        };
    }
    // Journal durably *before* acknowledging: an acked submit survives
    // any crash from here on.
    if let Err(e) = inner.store.journal_scenario(fp, scenario_text) {
        return Response::Error {
            error: format!("journaling scenario: {e}"),
        };
    }
    match inner.queue.push(QueuedJob {
        fingerprint: fp,
        scenario_text: scenario_text.to_string(),
    }) {
        Ok(()) | Err(PushError::AlreadyQueued) => Response::Submitted {
            fingerprint: fp,
            state: JobState::Queued,
        },
        Err(PushError::Full { capacity }) => {
            // Roll the journal back so the refused job is not silently
            // resurrected at the next restart.
            let _ = std::fs::remove_file(inner.store.scenario_path(fp));
            Response::Error {
                error: format!("queue full ({capacity} jobs); retry later"),
            }
        }
    }
}

fn handle_report(inner: &Arc<Inner>, fp: u64) -> Response {
    if let Some(report) = inner.store.report(fp) {
        return Response::Report {
            fingerprint: fp,
            report,
        };
    }
    if let Some(error) = inner
        .failed
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&fp)
    {
        return Response::Error {
            error: format!("job {fp:016x} failed: {error}"),
        };
    }
    match inner.job_state(fp) {
        Some(state) => Response::Pending {
            fingerprint: fp,
            state,
        },
        None => Response::Error {
            error: format!("unknown fingerprint {fp:016x}"),
        },
    }
}

fn send_line(out: &mut impl Write, line: &str) -> Result<(), ProtoError> {
    out.write_all(line.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()?;
    Ok(())
}
