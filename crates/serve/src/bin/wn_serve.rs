//! `wn-serve` — the fleet-as-a-service daemon and its client CLI.
//!
//! ```text
//! wn-serve listen --data-dir DIR [--addr HOST:PORT] [--jobs N]
//!                 [--queue N] [--cache-cap N] [--engine scalar|batched]
//! wn-serve submit   --addr HOST:PORT <scenario.toml|.json> [--wait SECS]
//! wn-serve report   --addr HOST:PORT <fingerprint|scenario file>
//! wn-serve watch    --addr HOST:PORT <fingerprint|scenario file>
//! wn-serve stats    --addr HOST:PORT
//! wn-serve ping     --addr HOST:PORT
//! wn-serve shutdown --addr HOST:PORT
//! ```
//!
//! `listen` runs until SIGTERM/SIGINT (or a client `shutdown`), pausing
//! any in-flight sweep at its next shard boundary; restarting over the
//! same `--data-dir` resumes every unfinished job byte-exactly.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use wn_fleet::{FleetEngine, FleetScenario};
use wn_serve::protocol::Event;
use wn_serve::server::{start, ServeConfig};
use wn_serve::Client;

const USAGE: &str = "usage: wn-serve listen --data-dir DIR [--addr HOST:PORT] [--jobs N] [--queue N] [--cache-cap N] [--engine scalar|batched] [--stop-after-shards N]\n       wn-serve submit --addr HOST:PORT <scenario> [--wait SECS]\n       wn-serve report|watch --addr HOST:PORT <fingerprint|scenario>\n       wn-serve stats|ping|shutdown --addr HOST:PORT";

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn positional(args: &[String]) -> Option<String> {
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        return Some(a.clone());
    }
    None
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("wn-serve: {msg}\n{USAGE}");
    ExitCode::FAILURE
}

/// Resolves a job argument: a 16-hex fingerprint, or a scenario file
/// whose fingerprint we compute locally (the same pure function the
/// server applies).
fn resolve_fingerprint(arg: &str) -> Result<u64, String> {
    if let Ok(fp) = u64::from_str_radix(arg, 16) {
        if arg.len() == 16 {
            return Ok(fp);
        }
    }
    let text =
        std::fs::read_to_string(arg).map_err(|e| format!("reading scenario `{arg}`: {e}"))?;
    let scenario = FleetScenario::parse(&text).map_err(|e| e.to_string())?;
    Ok(scenario.fingerprint())
}

fn connect(args: &[String]) -> Result<Client, String> {
    let addr = flag_value(args, "--addr").ok_or("missing --addr")?;
    Client::connect(&addr).map_err(|e| format!("connecting to {addr}: {e}"))
}

fn listen(args: &[String]) -> Result<(), String> {
    let data_dir = flag_value(args, "--data-dir").ok_or("listen needs --data-dir")?;
    let mut config = ServeConfig::new(PathBuf::from(data_dir));
    config.install_signal_handlers = true;
    if let Some(addr) = flag_value(args, "--addr") {
        config.addr = addr;
    }
    if let Some(jobs) = flag_value(args, "--jobs") {
        config.jobs = Some(
            jobs.parse::<usize>()
                .map_err(|_| "--jobs must be a number")?,
        );
    }
    if let Some(cap) = flag_value(args, "--queue") {
        config.queue_capacity = cap
            .parse::<usize>()
            .map_err(|_| "--queue must be a number")?;
    }
    if let Some(cap) = flag_value(args, "--cache-cap") {
        config.prepared_cache_capacity = Some(
            cap.parse::<usize>()
                .map_err(|_| "--cache-cap must be a number")?,
        );
    }
    if let Some(n) = flag_value(args, "--stop-after-shards") {
        config.stop_after_shards = Some(
            n.parse::<usize>()
                .map_err(|_| "--stop-after-shards must be a number")?,
        );
    }
    match flag_value(args, "--engine").as_deref() {
        None => {}
        Some("scalar") => config.engine = FleetEngine::Scalar,
        Some("batched") => config.engine = FleetEngine::default(),
        Some(other) => return Err(format!("--engine must be scalar|batched, got `{other}`")),
    }
    let handle = start(&config).map_err(|e| format!("starting server: {e}"))?;
    println!("wn-serve listening on {}", handle.local_addr());
    handle.join();
    println!("wn-serve stopped");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return fail("missing subcommand");
    };
    let rest = &args[1..];
    let result = match cmd {
        "listen" => listen(rest),
        "submit" => (|| {
            let file = positional(rest).ok_or("submit needs a scenario file")?;
            let text = std::fs::read_to_string(&file)
                .map_err(|e| format!("reading scenario `{file}`: {e}"))?;
            let mut client = connect(rest)?;
            let (fp, state) = client.submit(&text).map_err(|e| e.to_string())?;
            println!("{fp:016x} {}", state.as_str());
            if let Some(wait) = flag_value(rest, "--wait") {
                let secs = wait.parse::<u64>().map_err(|_| "--wait must be seconds")?;
                let report = client
                    .wait_report(fp, Duration::from_secs(secs))
                    .map_err(|e| e.to_string())?;
                println!("{report}");
            }
            Ok(())
        })(),
        "report" => (|| {
            let arg = positional(rest).ok_or("report needs a fingerprint or scenario")?;
            let fp = resolve_fingerprint(&arg)?;
            let mut client = connect(rest)?;
            match client.report(fp).map_err(|e| e.to_string())? {
                Some(report) => {
                    println!("{report}");
                    Ok(())
                }
                None => Err(format!("job {fp:016x} has not finished")),
            }
        })(),
        "watch" => (|| {
            let arg = positional(rest).ok_or("watch needs a fingerprint or scenario")?;
            let fp = resolve_fingerprint(&arg)?;
            let mut client = connect(rest)?;
            client
                .watch(fp, |event| match event {
                    Event::Shard { line, .. } => println!("{line}"),
                    Event::Done { fingerprint } => println!("done {fingerprint:016x}"),
                })
                .map_err(|e| e.to_string())
        })(),
        "stats" => (|| {
            let mut client = connect(rest)?;
            let stats = client.stats().map_err(|e| e.to_string())?;
            println!("{}", stats.to_line());
            Ok(())
        })(),
        "ping" => (|| {
            let mut client = connect(rest)?;
            client.ping().map_err(|e| e.to_string())?;
            println!("pong");
            Ok(())
        })(),
        "shutdown" => (|| {
            let mut client = connect(rest)?;
            client.shutdown().map_err(|e| e.to_string())?;
            println!("shutting down");
            Ok(())
        })(),
        other => Err(format!("unknown subcommand `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => fail(&msg),
    }
}
