//! # wn-serve — fleet-as-a-service for the WN reproduction
//!
//! The batch CLI (`experiments fleet`) runs one scenario and exits.
//! This crate turns the same fleet runner into a long-running daemon:
//! scenarios arrive over a TCP socket as JSON lines ([`protocol`]),
//! wait in a bounded queue ([`queue`]), execute one at a time over the
//! shared `wn_core::jobs::JobPool`, stream `wn-fleet-shard-v1` progress
//! lines to `watch` subscribers, and land as `wn-fleet-report-v1`
//! documents in a durable on-disk store ([`store`]) keyed by scenario
//! fingerprint.
//!
//! The service adds **no result semantics of its own** — that is the
//! point. A fleet report is a pure function of its scenario, shard
//! boundaries are durable checkpoints, and submissions are journaled
//! before they are acknowledged; composing those invariants, a daemon
//! killed at any instant (SIGTERM, SIGKILL, power) and restarted over
//! the same data directory finishes every accepted job and serves
//! reports byte-identical to a CLI run of the same scenario.
//!
//! ## Quickstart
//!
//! ```
//! use std::time::Duration;
//! use wn_serve::{client::Client, server};
//!
//! let dir = std::env::temp_dir().join(format!("wn-serve-doc-{}", std::process::id()));
//! let handle = server::start(&server::ServeConfig::new(dir.clone()))?;
//! let mut client = Client::connect(&handle.local_addr().to_string())?;
//!
//! let scenario = r#"
//! [fleet]
//! name = "doc"
//! seed = 7
//! shard_size = 4
//! wall_limit_s = 600.0
//! trace_duration_s = 10.0
//!
//! [[cohort]]
//! count = 4
//! benchmark = "matadd"
//! technique = "precise"
//! substrate = "clank"
//! "#;
//! let (fingerprint, _state) = client.submit(scenario)?;
//! let report = client.wait_report(fingerprint, Duration::from_secs(120))?;
//! assert!(report.contains("wn-fleet-report-v1"));
//!
//! client.shutdown()?;
//! handle.join();
//! std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod store;

pub use client::{Client, ClientError};
pub use protocol::{Event, JobState, LineReader, ProtoError, Request, Response};
pub use queue::{JobQueue, PushError, QueuedJob};
pub use server::{start, ServeConfig, ServerHandle};
pub use store::Store;
