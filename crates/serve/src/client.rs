//! A blocking client for the wn-serve protocol — used by the CLI, the
//! integration tests, and anything else that wants a fleet run without
//! owning the machine it executes on.

use std::fmt;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::protocol::{Event, JobState, LineReader, ProtoError, Request, Response};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing problems.
    Proto(ProtoError),
    /// The server answered, but with an error or an unexpected
    /// response kind.
    Server(String),
    /// The server closed the connection mid-exchange.
    Disconnected,
    /// `wait_report` ran out of time.
    Timeout { fingerprint: u64 },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Timeout { fingerprint } => {
                write!(f, "timed out waiting for report {fingerprint:016x}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Proto(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Proto(ProtoError::from(e))
    }
}

/// One connection to a wn-serve daemon.
pub struct Client {
    stream: TcpStream,
    reader: LineReader<TcpStream>,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7171`).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let reader = LineReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`ClientError::Disconnected`] if the
    /// server hangs up instead of answering.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        use std::io::Write as _;
        self.stream.write_all(req.to_line().as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        match self.reader.next_line()? {
            Some(line) => Ok(Response::parse(&line)?),
            None => Err(ClientError::Disconnected),
        }
    }

    /// Submits scenario text; returns `(fingerprint, state)`.
    /// Resubmitting a known scenario is idempotent.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] carries scenario parse errors and
    /// queue-full refusals.
    pub fn submit(&mut self, scenario_text: &str) -> Result<(u64, JobState), ClientError> {
        match self.request(&Request::Submit {
            scenario: scenario_text.to_string(),
        })? {
            Response::Submitted { fingerprint, state } => Ok((fingerprint, state)),
            Response::Error { error } => Err(ClientError::Server(error)),
            other => Err(ClientError::Server(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Fetches a finished report's bytes; `Ok(None)` while the job is
    /// still queued or running.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for unknown fingerprints and failed
    /// jobs.
    pub fn report(&mut self, fingerprint: u64) -> Result<Option<String>, ClientError> {
        match self.request(&Request::Report { fingerprint })? {
            Response::Report { report, .. } => Ok(Some(report)),
            Response::Pending { .. } => Ok(None),
            Response::Error { error } => Err(ClientError::Server(error)),
            other => Err(ClientError::Server(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Polls `report` until it lands or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] after `timeout`; otherwise as
    /// [`Client::report`].
    pub fn wait_report(
        &mut self,
        fingerprint: u64,
        timeout: Duration,
    ) -> Result<String, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(report) = self.report(fingerprint)? {
                return Ok(report);
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout { fingerprint });
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Subscribes to progress events for `fingerprint`, invoking
    /// `on_event` per event until the job's `done` event arrives (the
    /// final `Done` is passed to the callback too).
    ///
    /// # Errors
    ///
    /// Transport errors; [`ClientError::Disconnected`] if the server
    /// closes the stream before `done` (e.g. it is shutting down).
    pub fn watch(
        &mut self,
        fingerprint: u64,
        mut on_event: impl FnMut(&Event),
    ) -> Result<(), ClientError> {
        match self.request(&Request::Watch { fingerprint })? {
            Response::Watching { .. } => {}
            Response::Error { error } => return Err(ClientError::Server(error)),
            other => {
                return Err(ClientError::Server(format!(
                    "unexpected response {other:?}"
                )))
            }
        }
        loop {
            let line = self.reader.next_line()?.ok_or(ClientError::Disconnected)?;
            let event = Event::parse(&line)?;
            let done = matches!(event, Event::Done { .. });
            on_event(&event);
            if done {
                return Ok(());
            }
        }
    }

    /// Daemon statistics.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        match self.request(&Request::Stats)? {
            r @ Response::Stats { .. } => Ok(r),
            Response::Error { error } => Err(ClientError::Server(error)),
            other => Err(ClientError::Server(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Server(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Asks the daemon to stop gracefully.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::Server(format!(
                "unexpected response {other:?}"
            ))),
        }
    }
}
