//! Property tests for the wn-serve wire protocol.
//!
//! The daemon reads from sockets it does not trust: lines fragment at
//! arbitrary byte boundaries, peers truncate mid-line, send garbage,
//! or send far too much. Under all of it the protocol layer must
//! return typed errors — never panic, never hang, never mis-frame the
//! lines around the damage.

use std::io::Read;

use proptest::prelude::*;
use wn_serve::protocol::{
    parse_object, Event, LineReader, ProtoError, Request, Response, MAX_LINE_BYTES,
};

/// A reader that hands out its data in caller-chosen fragment sizes —
/// the adversarial version of TCP's "read returns whatever it wants".
struct Fragmented {
    data: Vec<u8>,
    cuts: Vec<usize>,
    pos: usize,
    turn: usize,
}

impl Fragmented {
    fn new(data: Vec<u8>, cuts: Vec<usize>) -> Fragmented {
        Fragmented {
            data,
            cuts,
            pos: 0,
            turn: 0,
        }
    }
}

impl Read for Fragmented {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        // Fragment size cycles through the cut list; at least 1 byte.
        let want = self
            .cuts
            .get(self.turn % self.cuts.len().max(1))
            .copied()
            .unwrap_or(1)
            .clamp(1, buf.len());
        self.turn += 1;
        let n = want.min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Strategy: printable-ish scenario-like text including every byte the
/// escaper has an opinion about.
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..=127, 0..200).prop_map(|bytes| {
        bytes
            .into_iter()
            .map(|b| match b {
                0..=8 | 11..=31 | 127 => '#',
                b => b as char,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any fragmentation of a stream of valid lines reassembles the
    /// exact same lines.
    #[test]
    fn split_reads_reassemble_lines_byte_exactly(
        lines in proptest::collection::vec(text_strategy(), 1..8),
        cuts in proptest::collection::vec(1usize..64, 1..8),
    ) {
        let mut data = Vec::new();
        for l in &lines {
            data.extend_from_slice(l.replace(['\n', '\r'], " ").as_bytes());
            data.push(b'\n');
        }
        let expect: Vec<String> = lines.iter().map(|l| l.replace(['\n', '\r'], " ")).collect();
        let mut reader = LineReader::new(Fragmented::new(data, cuts));
        let mut got = Vec::new();
        while let Some(line) = reader.next_line().unwrap() {
            got.push(line);
        }
        prop_assert_eq!(got, expect);
    }

    /// A stream that dies mid-line yields each complete line, then a
    /// Truncated error — not a hang and not a silent partial line.
    #[test]
    fn truncated_streams_error_after_the_complete_lines(
        lines in proptest::collection::vec(text_strategy(), 0..4),
        partial in text_strategy(),
        cuts in proptest::collection::vec(1usize..32, 1..4),
    ) {
        let mut data = Vec::new();
        for l in &lines {
            data.extend_from_slice(l.replace(['\n', '\r'], " ").as_bytes());
            data.push(b'\n');
        }
        let partial = format!("{} ", partial.replace(['\n', '\r'], " "));
        data.extend_from_slice(partial.as_bytes()); // no trailing newline
        let mut reader = LineReader::new(Fragmented::new(data, cuts));
        for _ in &lines {
            prop_assert!(reader.next_line().unwrap().is_some());
        }
        prop_assert_eq!(reader.next_line(), Err(ProtoError::Truncated));
    }

    /// Oversized lines are refused without buffering the whole flood,
    /// regardless of where the cap falls relative to read boundaries.
    #[test]
    fn oversized_lines_are_refused(
        cap in 8usize..100,
        extra in 1usize..64,
        cuts in proptest::collection::vec(1usize..32, 1..4),
    ) {
        let mut data = vec![b'x'; cap + extra];
        data.push(b'\n');
        let mut reader = LineReader::with_max_line(Fragmented::new(data, cuts), cap);
        prop_assert_eq!(
            reader.next_line(),
            Err(ProtoError::Oversized { limit: cap })
        );
    }

    /// Arbitrary bytes through the request parser: errors, never
    /// panics. (The `unwrap_or` is the assertion — a panic fails the
    /// test harness.)
    #[test]
    fn arbitrary_input_never_panics_the_parsers(
        bytes in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let line = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse_object(&line);
        let _ = Request::parse(&line);
        let _ = Response::parse(&line);
        let _ = Event::parse(&line);
    }

    /// Mutating one byte of a valid request line parses to an error or
    /// to another valid request — never a panic, and never a submit
    /// whose scenario text silently changed framing.
    #[test]
    fn bit_damage_on_valid_lines_is_contained(
        scenario in text_strategy(),
        victim in any::<usize>(),
        replacement in 0u8..=255,
    ) {
        let line = Request::Submit { scenario }.to_line();
        let mut bytes = line.into_bytes();
        let i = victim % bytes.len();
        bytes[i] = replacement;
        let damaged = String::from_utf8_lossy(&bytes).into_owned();
        let _ = Request::parse(&damaged);
    }

    /// Two subscriptions' event lines interleaved on one stream parse
    /// back out in order with nothing lost or cross-attributed — the
    /// wire-level form of "a subscriber sees exactly its events".
    #[test]
    fn interleaved_subscription_events_parse_in_order(
        shards_a in 1u64..6,
        shards_b in 1u64..6,
        order in proptest::collection::vec(any::<bool>(), 1..12),
        cuts in proptest::collection::vec(1usize..16, 1..4),
    ) {
        let mk = |fp: u64, shard: u64, count: u64| Event::Shard {
            fingerprint: fp,
            shard,
            shard_count: count,
            line: format!("{{\"schema\":\"wn-fleet-shard-v1\",\"shard\":{shard}}}"),
        };
        let (mut next_a, mut next_b) = (0u64, 0u64);
        let mut sent = Vec::new();
        for pick_a in order {
            if pick_a && next_a < shards_a {
                sent.push(mk(0xa, next_a, shards_a));
                next_a += 1;
            } else if next_b < shards_b {
                sent.push(mk(0xb, next_b, shards_b));
                next_b += 1;
            }
        }
        sent.push(Event::Done { fingerprint: 0xa });
        sent.push(Event::Done { fingerprint: 0xb });

        let mut data = Vec::new();
        for e in &sent {
            data.extend_from_slice(e.to_line().as_bytes());
            data.push(b'\n');
        }
        let mut reader = LineReader::new(Fragmented::new(data, cuts));
        let mut got = Vec::new();
        while let Some(line) = reader.next_line().unwrap() {
            got.push(Event::parse(&line).unwrap());
        }
        prop_assert_eq!(got, sent);
    }

    /// Submit lines round-trip arbitrary scenario text byte-exactly —
    /// the property the service's fingerprint equality rests on.
    #[test]
    fn submit_scenario_text_round_trips(scenario in text_strategy()) {
        let line = Request::Submit { scenario: scenario.clone() }.to_line();
        prop_assert!(line.len() < MAX_LINE_BYTES);
        match Request::parse(&line) {
            Ok(Request::Submit { scenario: back }) => prop_assert_eq!(back, scenario),
            other => prop_assert!(false, "round trip failed: {:?}", other),
        }
    }
}
