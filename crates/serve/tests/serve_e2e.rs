//! End-to-end tests driving the wn-serve daemon exactly as a client
//! would: over its TCP socket, via the JSON-lines protocol.
//!
//! The properties under test are the service's whole contract:
//!
//! 1. Reports served over the socket are **byte-identical** to running
//!    the same scenario in-process (and to the scalar engine, crossing
//!    both the transport and the engine dimension at once).
//! 2. Concurrent submissions all complete, idempotently.
//! 3. The compilation cache stays bounded — evictions happen and are
//!    observable over `stats`, and results do not change.
//! 4. A daemon stopped mid-scenario (the in-process stand-in for
//!    SIGTERM) and restarted over the same data directory resumes and
//!    serves a byte-identical report.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

use wn_fleet::{run_fleet, FleetEngine, FleetOptions, FleetScenario};
use wn_serve::protocol::{Event, JobState, Response};
use wn_serve::server::{start, ServeConfig};
use wn_serve::Client;

/// The prepared-run compilation cache is process-global; tests that
/// rebound its capacity or count its evictions serialize here.
static CACHE_TOUCHING: Mutex<()> = Mutex::new(());

const WAIT: Duration = Duration::from_secs(300);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wn-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A smoke-scale scenario; `seed` differentiates fingerprints.
fn scenario_text(name: &str, seed: u64) -> String {
    format!(
        r#"
[fleet]
name = "{name}"
seed = {seed}
shard_size = 4
wall_limit_s = 600.0
trace_duration_s = 15.0

[[cohort]]
count = 6
benchmark = "matadd"
technique = "anytime8"
substrate = "clank"
environment = "rf-bursty"

[[cohort]]
count = 4
benchmark = "home"
technique = "precise"
substrate = "nvp"
environment = "solar"
"#
    )
}

/// The reference bytes: an in-process run on the *scalar* engine, no
/// service anywhere near it.
fn reference_report(text: &str) -> String {
    let scenario = FleetScenario::parse(text).unwrap();
    run_fleet(
        &scenario,
        &FleetOptions {
            engine: FleetEngine::Scalar,
            ..FleetOptions::default()
        },
    )
    .unwrap()
    .report()
    .unwrap()
    .to_json()
}

#[test]
fn concurrent_submissions_serve_reports_byte_identical_to_in_process_runs() {
    let _guard = CACHE_TOUCHING.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("concurrent");
    let handle = start(&ServeConfig::new(dir.clone())).unwrap();
    let addr = handle.local_addr().to_string();

    // Three clients, three distinct scenarios, all in flight at once.
    let texts: Vec<String> = (0..3)
        .map(|i| scenario_text(&format!("cc{i}"), 100 + i))
        .collect();
    let served: Vec<(String, String)> = std::thread::scope(|s| {
        let threads: Vec<_> = texts
            .iter()
            .map(|text| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut client = Client::connect(&addr).unwrap();
                    let (fp, _) = client.submit(text).unwrap();
                    let report = client.wait_report(fp, WAIT).unwrap();
                    (text.clone(), report)
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).collect()
    });

    for (text, report) in &served {
        assert_eq!(
            report,
            &reference_report(text),
            "served report differs from the in-process scalar run"
        );
    }

    // Idempotent resubmit: same fingerprint, already done.
    let mut client = Client::connect(&addr).unwrap();
    let (fp, state) = client.submit(&texts[0]).unwrap();
    assert_eq!(state, JobState::Done);
    assert_eq!(fp, FleetScenario::parse(&texts[0]).unwrap().fingerprint());

    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cache_eviction_is_observable_and_does_not_change_results() {
    let _guard = CACHE_TOUCHING.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("eviction");
    let mut config = ServeConfig::new(dir.clone());
    // Each scenario compiles 2 cohort builds; a capacity of 2 forces
    // eviction across the sequence of distinct submissions.
    config.prepared_cache_capacity = Some(2);
    let handle = start(&config).unwrap();
    let mut client = Client::connect(&handle.local_addr().to_string()).unwrap();

    let before = match client.stats().unwrap() {
        Response::Stats {
            cache_evictions, ..
        } => cache_evictions,
        other => panic!("unexpected stats response {other:?}"),
    };

    let mut reports = Vec::new();
    for i in 0..3 {
        let text = scenario_text(&format!("ev{i}"), 200 + i);
        let (fp, _) = client.submit(&text).unwrap();
        reports.push((text, client.wait_report(fp, WAIT).unwrap()));
    }

    let (after_len, after_cap, after_evictions) = match client.stats().unwrap() {
        Response::Stats {
            cache_len,
            cache_capacity,
            cache_evictions,
            ..
        } => (cache_len, cache_capacity, cache_evictions),
        other => panic!("unexpected stats response {other:?}"),
    };
    assert_eq!(after_cap, 2);
    assert!(after_len <= 2, "cache exceeded its bound: {after_len}");
    assert!(
        after_evictions > before,
        "no evictions observed across distinct submissions"
    );

    // Evicted-and-recompiled builds still produce byte-exact reports.
    for (text, report) in &reports {
        assert_eq!(report, &reference_report(text));
    }

    // Restore the default bound for whatever runs next.
    wn_core::set_prepared_cache_capacity(64);
    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pause_mid_scenario_and_restart_resumes_byte_exactly() {
    let _guard = CACHE_TOUCHING.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("resume");
    let text = scenario_text("resume", 300);
    let fingerprint = FleetScenario::parse(&text).unwrap().fingerprint();

    // First daemon, with the fault-injection hook standing in for a
    // SIGTERM arriving mid-scenario: the sweep pauses after one shard,
    // durably checkpointed, report unpublished.
    let mut first_config = ServeConfig::new(dir.clone());
    first_config.stop_after_shards = Some(1);
    let handle = start(&first_config).unwrap();
    let addr = handle.local_addr().to_string();
    let mut submitter = Client::connect(&addr).unwrap();
    let (fp, state) = submitter.submit(&text).unwrap();
    assert_eq!(fp, fingerprint);
    assert_eq!(state, JobState::Queued);

    // Watch from a second connection on its own thread: the paused job
    // never sends `done`, so the stream only ends when the daemon
    // stops and closes it.
    let watch_thread = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut watcher = Client::connect(&addr).unwrap();
            let mut lines = Vec::new();
            let _ = watcher.watch(fp, |event| {
                if let Event::Shard { line, .. } = event {
                    lines.push(line.clone());
                }
            });
            lines
        }
    });
    // Wait for the pause to land, then stop the daemon.
    let ckpt_path = dir.join("ckpt").join(format!("{fp:016x}.ckpt.json"));
    let deadline = std::time::Instant::now() + WAIT;
    while !ckpt_path.exists() {
        assert!(std::time::Instant::now() < deadline, "pause never landed");
        std::thread::sleep(Duration::from_millis(20));
    }
    Client::connect(&addr).unwrap().shutdown().unwrap();
    handle.join();
    let first_lines = watch_thread.join().unwrap();

    let store = wn_serve::Store::open(&dir).unwrap();
    assert!(!store.is_done(fp), "hook must pause, not finish");
    assert_eq!(store.unfinished(), vec![fp], "journal must list the job");
    assert!(ckpt_path.exists(), "paused without a checkpoint on disk");
    assert!(
        first_lines.len() <= 1,
        "at most the single pre-pause shard event can stream: {first_lines:?}"
    );

    // Second daemon over the same data directory: recovers the job
    // from the journal, resumes from the checkpoint, finishes.
    let handle = start(&ServeConfig::new(dir.clone())).unwrap();
    let mut client = Client::connect(&handle.local_addr().to_string()).unwrap();
    let report = client.wait_report(fp, WAIT).unwrap();
    assert_eq!(
        report,
        reference_report(&text),
        "resumed report differs from an uninterrupted run"
    );

    // The shard log accumulated across both daemon lifetimes replays
    // the full sweep: resumed shards continue, they do not duplicate.
    let log = std::fs::read_to_string(dir.join("shards").join(format!("{fp:016x}.jsonl"))).unwrap();
    let shard_count = FleetScenario::parse(&text).unwrap().shard_count();
    assert_eq!(
        log.lines().count(),
        shard_count,
        "shard log must hold exactly one line per shard across the restart"
    );

    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&dir).unwrap();
}
