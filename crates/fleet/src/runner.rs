//! The sharded fleet runner.
//!
//! Devices are numbered `0..total` across the scenario's cohorts and
//! processed in shards of `shard_size`. Each shard fans its devices
//! across a [`JobPool`]; results come back in device-index order (the
//! pool's contract), are folded into per-cohort aggregates in that
//! order, and shards run strictly sequentially — so the aggregate state
//! after shard *k* is a pure function of the scenario, whatever the
//! `--jobs` width. A checkpoint written after each shard carries that
//! state bit-exactly (see [`crate::codec`]), which makes a killed and
//! resumed sweep byte-identical to an uninterrupted one.
//!
//! Memory stays bounded by the shard: a device's power trace is
//! synthesized inside its job and dropped with it, and only one shard's
//! outcome vector is ever alive.

use std::fmt;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use wn_core::error::WnError;
use wn_core::intermittent::{run_intermittent, IntermittentOutcome, SubstrateKind};
use wn_core::jobs::JobPool;
use wn_core::prepared::PreparedRun;
use wn_energy::SupplyError;
use wn_intermittent::ExecError;
use wn_telemetry::json::Obj;
use wn_telemetry::Histogram;

use crate::agg::MetricAgg;
use crate::batch::{self, FleetEngine};
use crate::checkpoint::{self, Checkpoint};
use crate::codec::{StateReader, StateWriter};
use crate::report::FleetReport;
use crate::scenario::FleetScenario;

/// How one device's run ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeviceFate {
    /// Produced an output (possibly via a skim jump).
    Completed,
    /// The harvester never delivered enough energy to finish charging.
    Starved,
    /// The simulated wall-clock budget expired first.
    TimedOut,
}

/// One device's outcome, as folded into cohort aggregates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceOutcome {
    /// Global device index.
    pub device: u64,
    /// Index into the scenario's cohorts.
    pub cohort: usize,
    pub fate: DeviceFate,
    /// Completed via skim jump (approximate output committed).
    pub skimmed: bool,
    /// Wall-clock completion time, seconds (completed devices only).
    pub time_s: f64,
    /// Powered-on execution time, seconds.
    pub on_time_s: f64,
    /// Output NRMSE (%) against golden.
    pub error_percent: f64,
    /// Power outages survived.
    pub outages: u64,
    /// Checkpoints taken by the substrate.
    pub checkpoints: u64,
    /// Task-boundary commits.
    pub commits: u64,
    /// Useful fraction of executed cycles:
    /// `1 − (lost + overhead) / active`.
    pub forward_progress: f64,
}

/// Per-cohort mergeable aggregate: outcome counters plus streaming
/// metrics over the completed devices.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CohortAggregate {
    pub devices: u64,
    pub completed: u64,
    pub skimmed: u64,
    pub starved: u64,
    pub timed_out: u64,
    /// Completion time, seconds.
    pub time: MetricAgg,
    /// Powered-on time, seconds.
    pub on_time: MetricAgg,
    /// Output NRMSE, percent.
    pub qor: MetricAgg,
    /// Forward-progress ratio in `[0, 1]`.
    pub progress: MetricAgg,
    /// Outages per completed run.
    pub outages: MetricAgg,
    /// Checkpoints per completed run.
    pub checkpoints: MetricAgg,
    /// Commits per completed run.
    pub commits: MetricAgg,
    /// Completion times on wn-telemetry's decade buckets (comparable
    /// with run-report duration histograms).
    pub time_hist: Histogram,
}

impl CohortAggregate {
    pub fn new() -> CohortAggregate {
        CohortAggregate::default()
    }

    /// Folds one device in (the runner calls this in device-index
    /// order).
    pub fn record(&mut self, d: &DeviceOutcome) {
        self.devices += 1;
        match d.fate {
            DeviceFate::Starved => self.starved += 1,
            DeviceFate::TimedOut => self.timed_out += 1,
            DeviceFate::Completed => {
                self.completed += 1;
                if d.skimmed {
                    self.skimmed += 1;
                }
                self.time.record(d.time_s);
                self.on_time.record(d.on_time_s);
                self.qor.record(d.error_percent);
                self.progress.record(d.forward_progress);
                self.outages.record(d.outages as f64);
                self.checkpoints.record(d.checkpoints as f64);
                self.commits.record(d.commits as f64);
                self.time_hist.record(d.time_s);
            }
        }
    }

    /// Merges another aggregate in (shard order for determinism).
    pub fn merge(&mut self, other: &CohortAggregate) {
        self.devices += other.devices;
        self.completed += other.completed;
        self.skimmed += other.skimmed;
        self.starved += other.starved;
        self.timed_out += other.timed_out;
        self.time.merge(&other.time);
        self.on_time.merge(&other.on_time);
        self.qor.merge(&other.qor);
        self.progress.merge(&other.progress);
        self.outages.merge(&other.outages);
        self.checkpoints.merge(&other.checkpoints);
        self.commits.merge(&other.commits);
        self.time_hist.merge(&other.time_hist);
    }

    /// Fraction of devices that produced an output.
    pub fn completion_rate(&self) -> f64 {
        if self.devices == 0 {
            0.0
        } else {
            self.completed as f64 / self.devices as f64
        }
    }

    pub(crate) fn save(&self, w: &mut StateWriter) {
        w.u64(self.devices);
        w.u64(self.completed);
        w.u64(self.skimmed);
        w.u64(self.starved);
        w.u64(self.timed_out);
        self.time.save(w);
        self.on_time.save(w);
        self.qor.save(w);
        self.progress.save(w);
        self.outages.save(w);
        self.checkpoints.save(w);
        self.commits.save(w);
        let (counts, count, sum_s, min_s, max_s) = self.time_hist.raw_parts();
        for c in counts {
            w.u64(c);
        }
        w.u64(count);
        w.f64(sum_s);
        w.f64(min_s);
        w.f64(max_s);
    }

    pub(crate) fn load(r: &mut StateReader) -> Option<CohortAggregate> {
        let devices = r.u64()?;
        let completed = r.u64()?;
        let skimmed = r.u64()?;
        let starved = r.u64()?;
        let timed_out = r.u64()?;
        let time = MetricAgg::load(r)?;
        let on_time = MetricAgg::load(r)?;
        let qor = MetricAgg::load(r)?;
        let progress = MetricAgg::load(r)?;
        let outages = MetricAgg::load(r)?;
        let checkpoints = MetricAgg::load(r)?;
        let commits = MetricAgg::load(r)?;
        let mut counts = [0u64; Histogram::BUCKETS];
        for c in &mut counts {
            *c = r.u64()?;
        }
        let time_hist = Histogram::from_raw_parts(counts, r.u64()?, r.f64()?, r.f64()?, r.f64()?);
        Some(CohortAggregate {
            devices,
            completed,
            skimmed,
            starved,
            timed_out,
            time,
            on_time,
            qor,
            progress,
            outages,
            checkpoints,
            commits,
            time_hist,
        })
    }
}

/// Fleet runner options.
#[derive(Debug, Clone, Default)]
pub struct FleetOptions {
    /// Worker count; `None` uses the global pool width (`WN_JOBS`).
    pub jobs: Option<usize>,
    /// Execution engine (lockstep tape replay by default; results are
    /// byte-identical across engines).
    pub engine: FleetEngine,
    /// Checkpoint file: written atomically after every shard, consumed
    /// by `resume`.
    pub checkpoint: Option<PathBuf>,
    /// Resume from `checkpoint` if it exists and matches the scenario
    /// fingerprint (a stale or foreign checkpoint is an error, not a
    /// silent restart).
    pub resume: bool,
    /// Append one JSON line per completed shard (progress stream).
    pub shard_log: Option<PathBuf>,
    /// Stop after this many *newly run* shards — deterministic stand-in
    /// for a mid-sweep kill in tests and CI.
    pub stop_after_shards: Option<usize>,
}

/// Live progress of one completed shard, handed to [`run_fleet_with`]
/// observers *after* the shard's aggregates are folded in and its
/// checkpoint (if configured) is durably stored — so anything an
/// observer publishes is already resumable state.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardProgress<'a> {
    /// Shard index just completed (0-based).
    pub shard: usize,
    /// Total shards in the sweep.
    pub shard_count: usize,
    /// The `wn-fleet-shard-v1` JSON line summarizing the shard — the
    /// same line `shard_log` appends, so subscribers and log readers
    /// see identical bytes.
    pub line: &'a str,
}

/// What a fleet run produced.
#[derive(Debug)]
pub enum FleetStatus {
    /// All shards done.
    Complete(FleetReport),
    /// Stopped early by [`FleetOptions::stop_after_shards`] or a pause
    /// flag; the checkpoint (if configured) holds `shards_done` shards
    /// of state.
    Paused {
        shards_done: usize,
        shard_count: usize,
    },
}

impl FleetStatus {
    /// The report, if the run completed.
    pub fn report(self) -> Option<FleetReport> {
        match self {
            FleetStatus::Complete(r) => Some(r),
            FleetStatus::Paused { .. } => None,
        }
    }
}

/// Errors from the fleet runner.
#[derive(Debug)]
pub enum FleetError {
    /// A device hit a fatal (non-population) error: compile failure,
    /// simulator fault, bad configuration.
    Device { device: u64, source: WnError },
    /// Checkpoint file problems: unreadable, unparsable, or from a
    /// different scenario.
    Checkpoint(String),
    /// Shard-log or checkpoint I/O failed.
    Io(std::io::Error),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Device { device, source } => {
                write!(f, "device {device} failed: {source}")
            }
            FleetError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            FleetError::Io(e) => write!(f, "fleet i/o error: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Device { source, .. } => Some(source),
            FleetError::Io(e) => Some(e),
            FleetError::Checkpoint(_) => None,
        }
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> FleetError {
        FleetError::Io(e)
    }
}

/// Runs (or resumes) a fleet sweep.
///
/// # Errors
///
/// Returns [`FleetError::Device`] on the first fatal device error,
/// [`FleetError::Checkpoint`] on a mismatched resume file, or an I/O
/// error from checkpoint/shard-log writes. Starved and timed-out
/// devices are *outcomes*, not errors.
pub fn run_fleet(
    scenario: &FleetScenario,
    options: &FleetOptions,
) -> Result<FleetStatus, FleetError> {
    run_fleet_with(scenario, options, None, |_| {})
}

/// As [`run_fleet`], with the two hooks a long-running service needs:
///
/// * `pause` — checked at every shard boundary (after the shard's
///   checkpoint is stored); when set, the sweep returns
///   [`FleetStatus::Paused`] instead of starting the next shard. This
///   is how `wn-serve` turns SIGTERM into a byte-exactly resumable
///   pause. Resuming requires a configured checkpoint path — pausing
///   without one discards the in-memory aggregates.
/// * `observe` — called once per completed shard with its
///   [`ShardProgress`], after durable state (checkpoint, shard log) is
///   written; progress subscribers stream these lines live.
///
/// # Errors
///
/// As [`run_fleet`].
pub fn run_fleet_with<F: FnMut(&ShardProgress<'_>)>(
    scenario: &FleetScenario,
    options: &FleetOptions,
    pause: Option<&AtomicBool>,
    mut observe: F,
) -> Result<FleetStatus, FleetError> {
    let shard_count = scenario.shard_count();
    let total = scenario.total_devices();
    let fingerprint = scenario.fingerprint();

    // Pausing without a checkpoint path would discard every aggregate
    // accumulated so far — reject the combination up front instead of
    // silently returning `Paused` with nowhere to resume from.
    if options.stop_after_shards.is_some() && options.checkpoint.is_none() {
        return Err(FleetError::Checkpoint(
            "stop_after_shards requires a checkpoint path \
             (pausing without one discards all progress)"
                .into(),
        ));
    }

    let mut cohorts: Vec<CohortAggregate> = vec![CohortAggregate::new(); scenario.cohorts.len()];
    let mut next_shard = 0usize;
    if options.resume {
        let path = options.checkpoint.as_ref().ok_or_else(|| {
            FleetError::Checkpoint("resume requested without a checkpoint path".into())
        })?;
        if path.exists() {
            let ckpt = checkpoint::load(path)?;
            if ckpt.fingerprint != fingerprint {
                return Err(FleetError::Checkpoint(format!(
                    "checkpoint {} is from a different scenario \
                     (fingerprint {:016x}, expected {:016x})",
                    path.display(),
                    ckpt.fingerprint,
                    fingerprint
                )));
            }
            if ckpt.cohorts.len() != cohorts.len() {
                return Err(FleetError::Checkpoint(
                    "checkpoint cohort count does not match scenario".into(),
                ));
            }
            cohorts = ckpt.cohorts;
            next_shard = ckpt.shards_done;
        }
    }

    let pool = match options.jobs {
        Some(n) => JobPool::with_jobs(n),
        None => JobPool::global(),
    };
    // Lockstep plans are built once per sweep; cohorts the replay
    // cannot mirror bit-exactly fall back to the scalar path inside.
    let plans = match options.engine {
        FleetEngine::Scalar => None,
        FleetEngine::Batched { .. } => Some(batch::build_plans(scenario)),
    };

    for (ran, shard) in (next_shard..shard_count).enumerate() {
        let lo = shard as u64 * scenario.shard_size as u64;
        let hi = (lo + scenario.shard_size as u64).min(total);
        let outcomes = run_shard(scenario, options.engine, plans.as_deref(), &pool, lo, hi)
            .map_err(|(device, source)| FleetError::Device { device, source })?;
        // Index order: the pool returns job-index order, which is
        // device order within the shard.
        for d in &outcomes {
            cohorts[d.cohort].record(d);
        }
        // Durable state first: a kill between the two writes loses the
        // (reconstructible) log line for this shard, not the other way
        // round — logging first would duplicate the line after a
        // `--resume`, since the checkpoint still says the shard is
        // pending.
        if let Some(path) = &options.checkpoint {
            checkpoint::store(
                path,
                &Checkpoint {
                    fingerprint,
                    shards_done: shard + 1,
                    shard_count,
                    cohorts: cohorts.clone(),
                },
            )?;
        }
        let line = shard_line(scenario, shard, &outcomes);
        if let Some(log) = &options.shard_log {
            append_line(log, &line)?;
        }
        observe(&ShardProgress {
            shard,
            shard_count,
            line: &line,
        });
        let pause_requested = pause.is_some_and(|p| p.load(Ordering::SeqCst));
        let stop_requested = options.stop_after_shards.is_some_and(|n| ran + 1 >= n);
        if (stop_requested || pause_requested) && shard + 1 < shard_count {
            return Ok(FleetStatus::Paused {
                shards_done: shard + 1,
                shard_count,
            });
        }
    }

    Ok(FleetStatus::Complete(FleetReport::new(scenario, cohorts)))
}

/// Fans one shard's devices `lo..hi` across the pool under the chosen
/// engine, returning outcomes in device order either way.
fn run_shard(
    scenario: &FleetScenario,
    engine: FleetEngine,
    plans: Option<&[batch::CohortPlan]>,
    pool: &JobPool,
    lo: u64,
    hi: u64,
) -> Result<Vec<DeviceOutcome>, (u64, WnError)> {
    let n = (hi - lo) as usize;
    match (engine, plans) {
        (FleetEngine::Batched { chunk }, Some(plans)) => {
            // Chunked jobs amortize pool dispatch over the (cheap)
            // per-device replays; flattening job-index order preserves
            // device order because chunks are contiguous.
            let chunk = chunk.max(1);
            let batches = pool.run(n.div_ceil(chunk), |j| {
                let start = lo + (j * chunk) as u64;
                let end = (start + chunk as u64).min(hi);
                (start..end)
                    .map(|device| batch::simulate_device_batched(scenario, plans, device))
                    .collect::<Result<Vec<DeviceOutcome>, (u64, WnError)>>()
            })?;
            Ok(batches.into_iter().flatten().collect())
        }
        _ => pool.run(n, |i| simulate_device(scenario, lo + i as u64)),
    }
}

/// Assembles a completed device's outcome from its run totals. Shared
/// by the scalar and lockstep engines so the two fold bit-identical
/// values — including the forward-progress clamp — into aggregates.
pub(crate) fn completed_outcome(
    device: u64,
    cohort: usize,
    out: &IntermittentOutcome,
) -> DeviceOutcome {
    let wasted = out.substrate.lost_cycles + out.substrate.overhead_cycles;
    // `active_cycles` counts executed instruction cycles; `wasted`
    // includes checkpoint/restore overheads charged on top of them, so
    // the raw ratio can exceed 1 on overhead-dominated runs. Clamp at
    // the source: forward progress is a fraction in [0, 1].
    let forward_progress = if out.active_cycles == 0 {
        0.0
    } else {
        (1.0 - wasted as f64 / out.active_cycles as f64).clamp(0.0, 1.0)
    };
    DeviceOutcome {
        device,
        cohort,
        fate: DeviceFate::Completed,
        skimmed: out.skimmed,
        time_s: out.time_s,
        on_time_s: out.on_time_s,
        error_percent: out.error_percent,
        outages: out.outages,
        checkpoints: out.substrate.checkpoints,
        commits: out.substrate.commits,
        forward_progress,
    }
}

/// A starved or timed-out device's outcome (all metrics zero).
pub(crate) fn incomplete_outcome(device: u64, cohort: usize, fate: DeviceFate) -> DeviceOutcome {
    DeviceOutcome {
        device,
        cohort,
        fate,
        skimmed: false,
        time_s: 0.0,
        on_time_s: 0.0,
        error_percent: 0.0,
        outages: 0,
        checkpoints: 0,
        commits: 0,
        forward_progress: 0.0,
    }
}

/// Simulates one device end to end: derive its seeds, synthesize its
/// environment, run it on its cohort's substrate.
///
/// # Errors
///
/// Fatal errors only (tagged with the device index); starvation and
/// wall-clock expiry are outcomes.
pub(crate) fn simulate_device(
    scenario: &FleetScenario,
    device: u64,
) -> Result<DeviceOutcome, (u64, WnError)> {
    let cohort = scenario.cohort_of(device);
    let spec = &scenario.cohorts[cohort];
    // One compilation per cohort (inputs are a cohort-level property;
    // the population varies the *environment* per device). Task cohorts
    // get the task-decomposed build; the checkpoint substrates keep the
    // plain one, so their cache entries (and results) are untouched.
    let substrate = spec.substrate.kind();
    let prepared = PreparedRun::cached_with_tasks(
        spec.benchmark,
        scenario.scale,
        scenario.cohort_input_seed(cohort),
        spec.technique,
        matches!(substrate, SubstrateKind::Task(_)),
    )
    .map_err(|e| (device, e))?;
    let trace = spec
        .env
        .synthesize(scenario.device_seed(device), scenario.trace_duration_s);
    match run_intermittent(
        &prepared,
        substrate,
        &trace,
        spec.supply(),
        scenario.wall_limit_s,
    ) {
        Ok(out) => Ok(completed_outcome(device, cohort, &out)),
        // Population phenomena, not failures: a dark environment or a
        // too-small budget is exactly what fleet sweeps measure.
        Err(WnError::Exec(ExecError::WallClock { .. })) => {
            Ok(incomplete_outcome(device, cohort, DeviceFate::TimedOut))
        }
        Err(WnError::Exec(ExecError::Supply(SupplyError::Starved { .. }))) => {
            Ok(incomplete_outcome(device, cohort, DeviceFate::Starved))
        }
        Err(e) => Err((device, e)),
    }
}

/// Renders one `wn-fleet-shard-v1` JSON line summarizing a shard — the
/// progress unit both the `--shard-jsonl` log and `wn-serve`
/// subscription streams carry.
fn shard_line(scenario: &FleetScenario, shard: usize, outcomes: &[DeviceOutcome]) -> String {
    let completed = outcomes
        .iter()
        .filter(|d| d.fate == DeviceFate::Completed)
        .count() as u64;
    Obj::new()
        .str("schema", "wn-fleet-shard-v1")
        .str("scenario", &scenario.name)
        .u64("shard", shard as u64)
        .u64("devices", outcomes.len() as u64)
        .u64("first_device", outcomes.first().map_or(0, |d| d.device))
        .u64("completed", completed)
        .u64(
            "starved",
            outcomes
                .iter()
                .filter(|d| d.fate == DeviceFate::Starved)
                .count() as u64,
        )
        .u64(
            "timed_out",
            outcomes
                .iter()
                .filter(|d| d.fate == DeviceFate::TimedOut)
                .count() as u64,
        )
        .finish()
}

/// Appends one line to a JSONL file, creating it if needed.
fn append_line(path: &std::path::Path, line: &str) -> Result<(), FleetError> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{line}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario() -> FleetScenario {
        FleetScenario::parse(
            r#"
[fleet]
name = "tiny"
seed = 5
shard_size = 8
wall_limit_s = 600.0
trace_duration_s = 20.0

[[cohort]]
count = 12
benchmark = "matadd"
technique = "anytime8"
substrate = "clank"
environment = "rf-bursty"

[[cohort]]
count = 6
benchmark = "home"
technique = "precise"
substrate = "nvp"
environment = "solar"
"#,
        )
        .unwrap()
    }

    #[test]
    fn fleet_runs_and_counts_every_device() {
        let s = tiny_scenario();
        let report = run_fleet(&s, &FleetOptions::default())
            .unwrap()
            .report()
            .unwrap();
        let total: u64 = report.cohorts.iter().map(|c| c.devices).sum();
        assert_eq!(total, 18);
        for c in &report.cohorts {
            assert_eq!(
                c.completed + c.starved + c.timed_out,
                c.devices,
                "every device has exactly one fate"
            );
        }
        // The RF default environment powers quick kernels: someone
        // must finish, and completed metrics must be populated.
        let c0 = &report.cohorts[0];
        assert!(c0.completed > 0, "rf cohort completed none");
        assert_eq!(c0.time.count(), c0.completed);
        assert_eq!(c0.time_hist.count(), c0.completed);
    }

    #[test]
    fn jobs_width_does_not_change_aggregates() {
        let s = tiny_scenario();
        let one = run_fleet(
            &s,
            &FleetOptions {
                jobs: Some(1),
                ..Default::default()
            },
        )
        .unwrap()
        .report()
        .unwrap();
        let four = run_fleet(
            &s,
            &FleetOptions {
                jobs: Some(4),
                ..Default::default()
            },
        )
        .unwrap()
        .report()
        .unwrap();
        assert_eq!(one.cohorts, four.cohorts);
        assert_eq!(one.to_json(), four.to_json());
        assert_eq!(one.to_csv(), four.to_csv());
    }

    #[test]
    fn device_outcomes_are_deterministic() {
        let s = tiny_scenario();
        let a = simulate_device(&s, 3).unwrap();
        let b = simulate_device(&s, 3).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.cohort, 0);
        assert_eq!(simulate_device(&s, 14).unwrap().cohort, 1);
    }

    /// Acceptance property at report granularity: scalar and batched
    /// engines render byte-identical JSON and CSV at several chunk
    /// widths (including a width that straddles shard boundaries).
    #[test]
    fn engines_produce_identical_reports_at_any_chunk_width() {
        let s = tiny_scenario();
        let run = |engine| {
            run_fleet(
                &s,
                &FleetOptions {
                    engine,
                    ..Default::default()
                },
            )
            .unwrap()
            .report()
            .unwrap()
        };
        let scalar = run(FleetEngine::Scalar);
        for chunk in [1, 4, 33] {
            let batched = run(FleetEngine::Batched { chunk });
            assert_eq!(scalar.cohorts, batched.cohorts, "chunk {chunk}");
            assert_eq!(scalar.to_json(), batched.to_json(), "chunk {chunk}");
            assert_eq!(scalar.to_csv(), batched.to_csv(), "chunk {chunk}");
        }
    }

    #[test]
    fn stop_after_shards_without_checkpoint_is_an_error() {
        let s = tiny_scenario();
        let r = run_fleet(
            &s,
            &FleetOptions {
                stop_after_shards: Some(1),
                ..Default::default()
            },
        );
        match r {
            Err(FleetError::Checkpoint(msg)) => {
                assert!(msg.contains("checkpoint path"), "{msg}")
            }
            other => panic!("expected a Checkpoint error, got {other:?}"),
        }
    }

    #[test]
    fn resume_from_truncated_checkpoint_is_a_checkpoint_error() {
        let s = tiny_scenario();
        let dir = std::env::temp_dir().join(format!("wn-fleet-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let opts = FleetOptions {
            checkpoint: Some(path.clone()),
            stop_after_shards: Some(1),
            ..Default::default()
        };
        assert!(matches!(
            run_fleet(&s, &opts).unwrap(),
            FleetStatus::Paused { shards_done: 1, .. }
        ));
        let doc = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &doc[..doc.len() / 3]).unwrap();
        let r = run_fleet(
            &s,
            &FleetOptions {
                checkpoint: Some(path),
                resume: true,
                ..Default::default()
            },
        );
        match r {
            Err(FleetError::Checkpoint(_)) => {}
            other => panic!("expected a Checkpoint error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pause_flag_checkpoints_and_resume_is_byte_identical() {
        let s = tiny_scenario();
        let dir = std::env::temp_dir().join(format!("wn-fleet-pause-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let whole = run_fleet(&s, &FleetOptions::default())
            .unwrap()
            .report()
            .unwrap();

        // Pause after the first shard via the service-style flag
        // (SIGTERM path): the observer arms it once shard 0 is durable.
        let pause = AtomicBool::new(false);
        let mut seen: Vec<String> = Vec::new();
        let opts = FleetOptions {
            checkpoint: Some(path.clone()),
            ..Default::default()
        };
        let status = run_fleet_with(&s, &opts, Some(&pause), |p: &ShardProgress<'_>| {
            seen.push(p.line.to_string());
            pause.store(true, Ordering::SeqCst);
        })
        .unwrap();
        assert!(matches!(status, FleetStatus::Paused { shards_done: 1, .. }));
        assert_eq!(seen.len(), 1, "observer saw exactly the completed shard");
        assert!(seen[0].contains("wn-fleet-shard-v1"));

        // Resume without the flag: the finished report is byte-identical
        // to the uninterrupted run.
        let resumed = run_fleet(
            &s,
            &FleetOptions {
                checkpoint: Some(path),
                resume: true,
                ..Default::default()
            },
        )
        .unwrap()
        .report()
        .unwrap();
        assert_eq!(whole.to_json(), resumed.to_json());
        assert_eq!(whole.to_csv(), resumed.to_csv());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn observer_lines_match_the_shard_log() {
        let s = tiny_scenario();
        let dir = std::env::temp_dir().join(format!("wn-fleet-observe-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("shards.jsonl");
        let mut seen: Vec<String> = Vec::new();
        let opts = FleetOptions {
            shard_log: Some(log.clone()),
            ..Default::default()
        };
        run_fleet_with(&s, &opts, None, |p: &ShardProgress<'_>| {
            assert_eq!(p.shard_count, s.shard_count());
            seen.push(p.line.to_string());
        })
        .unwrap();
        let logged: Vec<String> = std::fs::read_to_string(&log)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        assert_eq!(
            seen, logged,
            "subscribers and log readers see the same bytes"
        );
        assert_eq!(seen.len(), s.shard_count());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aggregate_state_round_trips_through_codec() {
        let s = tiny_scenario();
        let report = run_fleet(&s, &FleetOptions::default())
            .unwrap()
            .report()
            .unwrap();
        for c in &report.cohorts {
            let mut w = StateWriter::new();
            c.save(&mut w);
            let mut r = StateReader::new(w.as_str());
            let back = CohortAggregate::load(&mut r).unwrap();
            assert_eq!(&back, c);
            assert!(r.is_empty());
        }
    }
}
