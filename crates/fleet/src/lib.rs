//! wn-fleet: sharded multi-device fleet simulation.
//!
//! The paper evaluates WN on single devices under recorded traces; this
//! crate asks the deployment-scale question — what does a *population*
//! of intermittent devices look like? A [`scenario::FleetScenario`]
//! describes cohorts (benchmark × technique × substrate × capacitor ×
//! harvesting environment), [`EnvModel`](wn_energy::EnvModel)
//! synthesizes each device's power trace on the fly from a derived
//! seed, and [`runner::run_fleet`] sweeps the population in
//! bounded-memory shards, folding every outcome into mergeable
//! streaming aggregates ([`agg`]). Checkpoints ([`checkpoint`]) make
//! sweeps resumable at shard granularity, byte-identical to an
//! uninterrupted run; [`report::FleetReport`] renders the
//! `wn-fleet-report-v1` JSON/CSV artifacts.

pub mod agg;
pub mod batch;
pub mod checkpoint;
pub mod codec;
pub mod durable;
pub mod predict;
pub mod report;
pub mod runner;
pub mod scenario;

pub use agg::{FixedSketch, MetricAgg, StreamStats};
pub use batch::FleetEngine;
pub use checkpoint::Checkpoint;
pub use durable::persist_atomic;
pub use predict::{
    check_scenario, predict_fleet, validate, CheckSummary, CohortForecast, PredictReport,
    Validation, PREDICT_SCHEMA,
};
pub use report::FleetReport;
pub use runner::{
    run_fleet, run_fleet_with, CohortAggregate, DeviceFate, DeviceOutcome, FleetError,
    FleetOptions, FleetStatus, ShardProgress,
};
pub use scenario::{CohortSpec, FleetScenario, ScenarioError, SubstrateChoice};
