//! Exact state serialization for fleet checkpoints.
//!
//! A resumed sweep must finish **bit-identical** to the uninterrupted
//! one, so aggregate state crosses the checkpoint file without any
//! decimal round-trip: every `f64` travels as the hex of its IEEE-754
//! bit pattern. The encoding is a flat space-separated token stream
//! (alphanumerics only), safe to embed as a JSON string field.

/// Token-stream writer.
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: String,
}

impl StateWriter {
    pub fn new() -> StateWriter {
        StateWriter::default()
    }

    fn push(&mut self, token: &str) {
        if !self.buf.is_empty() {
            self.buf.push(' ');
        }
        self.buf.push_str(token);
    }

    pub fn u64(&mut self, v: u64) {
        self.push(&v.to_string());
    }

    /// Exact: the IEEE-754 bit pattern in hex (`fHHHH…`).
    pub fn f64(&mut self, v: f64) {
        self.push(&format!("f{:016x}", v.to_bits()));
    }

    pub fn as_str(&self) -> &str {
        &self.buf
    }

    pub fn into_string(self) -> String {
        self.buf
    }
}

/// Token-stream reader; every accessor returns `None` on malformed or
/// exhausted input (a truncated checkpoint is rejected, never guessed).
#[derive(Debug)]
pub struct StateReader<'a> {
    tokens: std::str::SplitAsciiWhitespace<'a>,
}

impl<'a> StateReader<'a> {
    pub fn new(text: &'a str) -> StateReader<'a> {
        StateReader {
            tokens: text.split_ascii_whitespace(),
        }
    }

    pub fn u64(&mut self) -> Option<u64> {
        self.tokens.next()?.parse().ok()
    }

    pub fn f64(&mut self) -> Option<f64> {
        let token = self.tokens.next()?;
        let hex = token.strip_prefix('f')?;
        u64::from_str_radix(hex, 16).ok().map(f64::from_bits)
    }

    /// True when every token has been consumed.
    pub fn is_empty(&mut self) -> bool {
        self.tokens.clone().next().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_bit_exactly() {
        let values = [
            0.0,
            -0.0,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            1.0 / 3.0,
            f64::NAN,
        ];
        let mut w = StateWriter::new();
        for &v in &values {
            w.f64(v);
        }
        w.u64(u64::MAX);
        let text = w.into_string();
        let mut r = StateReader::new(&text);
        for &v in &values {
            let back = r.f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} must round-trip exactly");
        }
        assert_eq!(r.u64(), Some(u64::MAX));
        assert!(r.is_empty());
    }

    #[test]
    fn malformed_and_truncated_input_is_rejected() {
        let mut r = StateReader::new("42 fnotahexvalue");
        assert_eq!(r.u64(), Some(42));
        assert_eq!(r.f64(), None);
        let mut r = StateReader::new("7");
        assert_eq!(r.f64(), None, "u64 token is not an f64 token");
        let mut r = StateReader::new("");
        assert_eq!(r.u64(), None);
        assert!(r.is_empty());
    }
}
