//! Fleet scenarios: who is in the population and what world they live in.
//!
//! A scenario is a device population — cohorts of `count` devices, each
//! cohort fixing a benchmark × technique × substrate × capacitor ×
//! harvesting environment — plus the sweep parameters (master seed,
//! shard size, wall-clock limit). Everything a device does is a pure
//! function of the scenario and its global device index: input data is
//! seeded per cohort, the power trace per device (splitmix64 over the
//! master seed), so any device can be re-simulated bit-identically in
//! isolation — the property shard resume and `--jobs` invariance rest
//! on.
//!
//! Scenarios parse from a small TOML subset (`[fleet]` + `[[cohort]]`
//! tables, string/number/bool values) or from JSON with the same shape
//! (`{"fleet": {...}, "cohorts": [...]}`); the two lower into one
//! document model. No external parser crates exist in this container,
//! so both grammars are hand-rolled here and deliberately tiny.

use std::fmt;

use wn_compiler::Technique;
use wn_core::intermittent::SubstrateKind;
use wn_energy::{EnvModel, SupplyConfig};
use wn_kernels::{Benchmark, Scale};

/// Default shard size: bounds peak memory at ~512 per-device outcome
/// structs regardless of fleet size, while keeping the job pool fed.
pub const DEFAULT_SHARD_SIZE: usize = 512;

/// Which substrate a cohort's devices run on (default configurations;
/// the paper's Clank and NVP checkpoint models, plus the checkpoint-free
/// task substrate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubstrateChoice {
    Clank,
    Nvp,
    Task,
}

impl SubstrateChoice {
    /// Every parseable substrate, in the order `VALID_NAMES` lists them.
    pub const ALL: [SubstrateChoice; 3] = [
        SubstrateChoice::Clank,
        SubstrateChoice::Nvp,
        SubstrateChoice::Task,
    ];

    /// The valid `substrate = "..."` spellings, for error messages.
    pub const VALID_NAMES: &'static str = "clank, nvp, task";

    pub fn name(&self) -> &'static str {
        match self {
            SubstrateChoice::Clank => "clank",
            SubstrateChoice::Nvp => "nvp",
            SubstrateChoice::Task => "task",
        }
    }

    /// The executor-facing substrate kind (default parameters).
    pub fn kind(&self) -> SubstrateKind {
        match self {
            SubstrateChoice::Clank => SubstrateKind::clank(),
            SubstrateChoice::Nvp => SubstrateKind::nvp(),
            SubstrateChoice::Task => SubstrateKind::task(),
        }
    }

    fn parse(s: &str) -> Option<SubstrateChoice> {
        SubstrateChoice::ALL.into_iter().find(|c| c.name() == s)
    }
}

/// One cohort: `count` devices sharing a workload and an environment
/// family (each device still sees its own seeded trace).
#[derive(Debug, Clone, PartialEq)]
pub struct CohortSpec {
    /// Display name (defaults to `bench-technique-substrate-env`).
    pub name: String,
    /// Devices in this cohort.
    pub count: u64,
    pub benchmark: Benchmark,
    pub technique: Technique,
    pub substrate: SubstrateChoice,
    /// Storage capacitance in microfarads.
    pub capacitance_uf: f64,
    /// The harvesting environment family (per-device traces are seeded
    /// from the master seed and the global device index).
    pub env: EnvModel,
}

impl CohortSpec {
    /// The cohort's supply configuration: its capacitor on the default
    /// electrical model.
    pub fn supply(&self) -> SupplyConfig {
        SupplyConfig {
            capacitance_f: self.capacitance_uf * 1e-6,
            ..SupplyConfig::default()
        }
    }
}

/// A full fleet scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetScenario {
    pub name: String,
    /// Master seed: cohort inputs and device traces derive from it.
    pub seed: u64,
    /// Devices per shard (bounds peak memory; does not change results).
    pub shard_size: usize,
    /// Per-device simulated wall-clock budget, seconds.
    pub wall_limit_s: f64,
    /// Length of each synthesized power trace, seconds (traces wrap).
    pub trace_duration_s: f64,
    /// Kernel scale for every cohort.
    pub scale: Scale,
    pub cohorts: Vec<CohortSpec>,
}

impl FleetScenario {
    /// Total devices across cohorts.
    pub fn total_devices(&self) -> u64 {
        self.cohorts.iter().map(|c| c.count).sum()
    }

    /// Number of shards the sweep runs in.
    pub fn shard_count(&self) -> usize {
        let total = self.total_devices();
        if total == 0 {
            0
        } else {
            ((total - 1) / self.shard_size as u64 + 1) as usize
        }
    }

    /// The cohort a global device index belongs to. Panics if out of
    /// range (the runner only hands in valid indices).
    pub fn cohort_of(&self, device: u64) -> usize {
        let mut start = 0u64;
        for (i, c) in self.cohorts.iter().enumerate() {
            if device < start + c.count {
                return i;
            }
            start += c.count;
        }
        panic!("device index {device} beyond fleet of {}", start)
    }

    /// Per-device trace seed: splitmix64 over the master seed and the
    /// global index, so neighbouring devices get decorrelated streams.
    pub fn device_seed(&self, device: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(device.wrapping_add(0x9e37_79b9_7f4a_7c15)))
    }

    /// Per-cohort kernel-input seed (one compiled instance per cohort;
    /// compilation is the expensive step, and population statistics are
    /// about environments, not input data).
    pub fn cohort_input_seed(&self, cohort: usize) -> u64 {
        splitmix64(self.seed ^ splitmix64(0x5bf0_3635 + cohort as u64))
    }

    /// A canonical, order-stable rendering of everything that affects
    /// results — the fingerprint input for checkpoint compatibility.
    pub fn canonical(&self) -> String {
        let mut s = format!(
            "wn-fleet-scenario-v1|name={}|seed={}|shard={}|limit={}|trace={}|scale={:?}",
            self.name,
            self.seed,
            self.shard_size,
            bits(self.wall_limit_s),
            bits(self.trace_duration_s),
            self.scale,
        );
        for c in &self.cohorts {
            s.push_str(&format!(
                "|cohort:{}:{}:{}:{}:{}:{}:{}",
                c.name,
                c.count,
                c.benchmark.name(),
                c.technique,
                c.substrate.name(),
                bits(c.capacitance_uf),
                env_canonical(&c.env),
            ));
        }
        s
    }

    /// FNV-1a 64 fingerprint of [`FleetScenario::canonical`]: two
    /// scenarios with the same fingerprint produce the same sweep, so a
    /// checkpoint from one resumes the other.
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(self.canonical().as_bytes())
    }

    /// Parses a scenario from TOML (default) or JSON (first
    /// non-whitespace byte `{`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line/field.
    pub fn parse(text: &str) -> Result<FleetScenario, ScenarioError> {
        let doc = if text.trim_start().starts_with('{') {
            doc_from_json(text)?
        } else {
            doc_from_toml(text)?
        };
        FleetScenario::from_doc(doc)
    }

    fn from_doc(doc: ScenarioDoc) -> Result<FleetScenario, ScenarioError> {
        let f = &doc.fleet;
        check_known_keys(f, "[fleet]", &[FLEET_KEYS])?;
        let scenario_name = f.str_or("name", "fleet");
        let seed = f.u64_or("seed", 42)?;
        let shard_size = f.u64_or("shard_size", DEFAULT_SHARD_SIZE as u64)? as usize;
        if shard_size == 0 {
            return Err(err("fleet.shard_size must be positive"));
        }
        let wall_limit_s = f.f64_or("wall_limit_s", 3600.0)?;
        if !wall_limit_s.is_finite() || wall_limit_s <= 0.0 {
            return Err(err("fleet.wall_limit_s must be positive"));
        }
        let trace_duration_s = f.f64_or("trace_duration_s", 60.0)?;
        if !trace_duration_s.is_finite() || trace_duration_s <= 0.0 {
            return Err(err("fleet.trace_duration_s must be positive"));
        }
        let scale = match f.str_or("scale", "quick").as_str() {
            "quick" => Scale::Quick,
            "paper" => Scale::Paper,
            other => return Err(err(&format!("unknown fleet.scale `{other}`"))),
        };
        if doc.cohorts.is_empty() {
            return Err(err("a scenario needs at least one [[cohort]]"));
        }
        let mut cohorts = Vec::with_capacity(doc.cohorts.len());
        for (i, t) in doc.cohorts.iter().enumerate() {
            cohorts.push(parse_cohort(t, i)?);
        }
        let scenario = FleetScenario {
            name: scenario_name,
            seed,
            shard_size,
            wall_limit_s,
            trace_duration_s,
            scale,
            cohorts,
        };
        if scenario.total_devices() == 0 {
            return Err(err("fleet has zero devices"));
        }
        Ok(scenario)
    }
}

fn parse_cohort(t: &TableDoc, index: usize) -> Result<CohortSpec, ScenarioError> {
    let at = |field: &str| format!("cohort[{index}].{field}");
    let count = t.u64_or("count", 1)?;
    let bench_name = t
        .str("benchmark")
        .ok_or_else(|| err(&format!("{} is required", at("benchmark"))))?;
    let benchmark = Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == bench_name)
        .ok_or_else(|| err(&format!("unknown benchmark `{bench_name}`")))?;
    let technique_name = t.str_or("technique", "precise");
    let technique = parse_technique(&technique_name, benchmark).ok_or_else(|| {
        err(&format!(
            "unknown {} `{technique_name}` (valid: {TECHNIQUE_FORMS})",
            at("technique")
        ))
    })?;
    let substrate_name = t.str_or("substrate", "clank");
    let substrate = SubstrateChoice::parse(&substrate_name).ok_or_else(|| {
        err(&format!(
            "unknown {} `{substrate_name}` (valid: {})",
            at("substrate"),
            SubstrateChoice::VALID_NAMES
        ))
    })?;
    let capacitance_uf = t.f64_or("capacitance_uf", 1.0)?;
    if !capacitance_uf.is_finite() || capacitance_uf <= 0.0 {
        return Err(err(&format!("{} must be positive", at("capacitance_uf"))));
    }
    let env = parse_env(t).map_err(|e| match e {
        ScenarioError::Message(m) => err(&format!("{}: {m}", at("environment"))),
        other => other,
    })?;
    check_known_keys(
        t,
        &format!("cohort[{index}]"),
        &[
            COHORT_KEYS,
            env_param_keys(&t.str_or("environment", "rf-bursty")),
        ],
    )?;
    let mean_power_w = env.expected_mean_power_w();
    if !mean_power_w.is_finite() || mean_power_w <= 0.0 {
        return Err(err(&format!(
            "{}: environment mean power must be positive",
            at("environment")
        )));
    }
    let name = t.str_or(
        "name",
        &format!(
            "{}-{}-{}-{}",
            benchmark.name(),
            technique,
            substrate.name(),
            env.name()
        ),
    );
    Ok(CohortSpec {
        name,
        count,
        benchmark,
        technique,
        substrate,
        capacitance_uf,
        env,
    })
}

/// The valid `technique = "..."` forms, for error messages.
const TECHNIQUE_FORMS: &str = "precise, swpN, swpN+vld, swvN, swvN-unprov, anytimeN";

/// `precise`, `swpN`, `swvN`, `swpN+vld`, `swvN-unprov`, or `anytimeN`
/// (the benchmark's Table-I default technique at N bits).
fn parse_technique(s: &str, benchmark: Benchmark) -> Option<Technique> {
    if s == "precise" {
        return Some(Technique::Precise);
    }
    if let Some(bits) = s.strip_prefix("anytime").and_then(|b| b.parse().ok()) {
        return Some(benchmark.technique(bits));
    }
    if let Some(rest) = s.strip_prefix("swp") {
        if let Some(bits) = rest.strip_suffix("+vld").and_then(|b| b.parse().ok()) {
            return Some(Technique::swp_vectorized(bits));
        }
        return rest.parse().ok().map(Technique::swp);
    }
    if let Some(rest) = s.strip_prefix("swv") {
        if let Some(bits) = rest.strip_suffix("-unprov").and_then(|b| b.parse().ok()) {
            return Some(Technique::swv_unprovisioned(bits));
        }
        return rest.parse().ok().map(Technique::swv);
    }
    None
}

/// Environment from a cohort table: the `environment` family name plus
/// optional per-family parameter overrides (powers in µW, durations in
/// their named units).
fn parse_env(t: &TableDoc) -> Result<EnvModel, ScenarioError> {
    let family = t.str_or("environment", "rf-bursty");
    match family.as_str() {
        "rf-bursty" | "rf" => {
            let mut m = EnvModel::rf_default();
            if let EnvModel::RfBursty {
                mean_power_w,
                mean_burst_ms,
                mean_gap_ms,
            } = &mut m
            {
                if let Some(v) = t.f64_opt("mean_power_uw")? {
                    *mean_power_w = v * 1e-6;
                }
                if let Some(v) = t.f64_opt("burst_ms")? {
                    *mean_burst_ms = v;
                }
                if let Some(v) = t.f64_opt("gap_ms")? {
                    *mean_gap_ms = v;
                }
            }
            Ok(m)
        }
        "solar-diurnal" | "solar" => {
            let mut m = EnvModel::solar_default();
            if let EnvModel::SolarDiurnal {
                peak_power_w,
                day_s,
            } = &mut m
            {
                if let Some(v) = t.f64_opt("peak_power_uw")? {
                    *peak_power_w = v * 1e-6;
                }
                if let Some(v) = t.f64_opt("day_s")? {
                    *day_s = v;
                }
            }
            Ok(m)
        }
        "piezo-impulse" | "piezo" => {
            let mut m = EnvModel::piezo_default();
            if let EnvModel::PiezoImpulse {
                baseline_w,
                impulse_w,
                impulse_ms,
                mean_gap_ms,
            } = &mut m
            {
                if let Some(v) = t.f64_opt("baseline_uw")? {
                    *baseline_w = v * 1e-6;
                }
                if let Some(v) = t.f64_opt("impulse_uw")? {
                    *impulse_w = v * 1e-6;
                }
                if let Some(v) = t.f64_opt("impulse_ms")? {
                    *impulse_ms = v;
                }
                if let Some(v) = t.f64_opt("gap_ms")? {
                    *mean_gap_ms = v;
                }
            }
            Ok(m)
        }
        other => Err(err(&format!("unknown environment family `{other}`"))),
    }
}

fn env_canonical(env: &EnvModel) -> String {
    match *env {
        EnvModel::RfBursty {
            mean_power_w,
            mean_burst_ms,
            mean_gap_ms,
        } => format!(
            "rf:{}:{}:{}",
            bits(mean_power_w),
            bits(mean_burst_ms),
            bits(mean_gap_ms)
        ),
        EnvModel::SolarDiurnal {
            peak_power_w,
            day_s,
        } => {
            format!("solar:{}:{}", bits(peak_power_w), bits(day_s))
        }
        EnvModel::PiezoImpulse {
            baseline_w,
            impulse_w,
            impulse_ms,
            mean_gap_ms,
        } => format!(
            "piezo:{}:{}:{}:{}",
            bits(baseline_w),
            bits(impulse_w),
            bits(impulse_ms),
            bits(mean_gap_ms)
        ),
    }
}

/// Exact float rendering for canonical strings.
fn bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A scenario parse/validation error.
///
/// Key-shape problems get named variants (a service rejecting scenario
/// submissions wants to tell a duplicated key apart from a typo'd one);
/// everything else is a human-readable [`ScenarioError::Message`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// Malformed syntax or an invalid field value.
    Message(String),
    /// The same key appeared twice in one table. The parser used to
    /// resolve duplicates silently (first occurrence won), which turns
    /// an edited-but-not-deleted line into a quietly ignored override —
    /// rejected outright instead.
    DuplicateKey { table: String, key: String },
    /// A key no schema field or environment parameter matches — almost
    /// always a typo that would otherwise silently fall back to the
    /// default value.
    UnknownKey {
        table: String,
        key: String,
        /// Comma-separated list of the keys valid in that table.
        valid: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Message(msg) => write!(f, "scenario error: {msg}"),
            ScenarioError::DuplicateKey { table, key } => write!(
                f,
                "scenario error: duplicate key `{key}` in {table} \
                 (each key may appear once; duplicates are rejected \
                 rather than silently resolved)"
            ),
            ScenarioError::UnknownKey { table, key, valid } => write!(
                f,
                "scenario error: unknown key `{key}` in {table} \
                 (valid keys: {valid})"
            ),
        }
    }
}

impl std::error::Error for ScenarioError {}

fn err(msg: &str) -> ScenarioError {
    ScenarioError::Message(msg.to_string())
}

/// Keys the `[fleet]` table accepts.
const FLEET_KEYS: &[&str] = &[
    "name",
    "seed",
    "shard_size",
    "wall_limit_s",
    "trace_duration_s",
    "scale",
];

/// Keys every `[[cohort]]` table accepts, before environment parameters.
const COHORT_KEYS: &[&str] = &[
    "name",
    "count",
    "benchmark",
    "technique",
    "substrate",
    "capacitance_uf",
    "environment",
];

/// The per-family environment parameter keys a cohort may override.
fn env_param_keys(family: &str) -> &'static [&'static str] {
    match family {
        "rf-bursty" | "rf" => &["mean_power_uw", "burst_ms", "gap_ms"],
        "solar-diurnal" | "solar" => &["peak_power_uw", "day_s"],
        "piezo-impulse" | "piezo" => &["baseline_uw", "impulse_uw", "impulse_ms", "gap_ms"],
        _ => &[],
    }
}

/// Rejects any key in `t` that none of the `allowed` sets contain.
fn check_known_keys(t: &TableDoc, table: &str, allowed: &[&[&str]]) -> Result<(), ScenarioError> {
    for (key, _) in &t.entries {
        if !allowed.iter().any(|set| set.contains(&key.as_str())) {
            return Err(ScenarioError::UnknownKey {
                table: table.to_string(),
                key: key.clone(),
                valid: allowed
                    .iter()
                    .flat_map(|set| set.iter().copied())
                    .collect::<Vec<_>>()
                    .join(", "),
            });
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Document model shared by the TOML and JSON frontends.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum DocValue {
    Str(String),
    Num(f64),
    Bool(bool),
}

#[derive(Debug, Clone, Default, PartialEq)]
struct TableDoc {
    entries: Vec<(String, DocValue)>,
}

impl TableDoc {
    fn get(&self, key: &str) -> Option<&DocValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Appends an entry, rejecting a key already present — the silent
    /// first-wins duplicate resolution this parser used to have turned
    /// edited-but-not-deleted lines into ignored overrides.
    fn push_unique(
        &mut self,
        table: &str,
        key: String,
        value: DocValue,
    ) -> Result<(), ScenarioError> {
        if self.get(&key).is_some() {
            return Err(ScenarioError::DuplicateKey {
                table: table.to_string(),
                key,
            });
        }
        self.entries.push((key, value));
        Ok(())
    }

    fn str(&self, key: &str) -> Option<String> {
        match self.get(key)? {
            DocValue::Str(s) => Some(s.clone()),
            DocValue::Num(n) => Some(format!("{n}")),
            DocValue::Bool(b) => Some(b.to_string()),
        }
    }

    fn str_or(&self, key: &str, default: &str) -> String {
        self.str(key).unwrap_or_else(|| default.to_string())
    }

    fn f64_opt(&self, key: &str) -> Result<Option<f64>, ScenarioError> {
        match self.get(key) {
            None => Ok(None),
            Some(DocValue::Num(n)) => Ok(Some(*n)),
            Some(_) => Err(err(&format!("field `{key}` must be a number"))),
        }
    }

    fn f64_or(&self, key: &str, default: f64) -> Result<f64, ScenarioError> {
        Ok(self.f64_opt(key)?.unwrap_or(default))
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, ScenarioError> {
        let v = self.f64_or(key, default as f64)?;
        if v < 0.0 || v.fract() != 0.0 || v > u64::MAX as f64 {
            return Err(err(&format!(
                "field `{key}` must be a non-negative integer, got {v}"
            )));
        }
        Ok(v as u64)
    }
}

#[derive(Debug, Default)]
struct ScenarioDoc {
    fleet: TableDoc,
    cohorts: Vec<TableDoc>,
}

// ---------------------------------------------------------------------
// TOML-subset frontend: `[fleet]`, repeated `[[cohort]]`, and
// `key = value` lines with string / number / boolean values.
// ---------------------------------------------------------------------

fn doc_from_toml(text: &str) -> Result<ScenarioDoc, ScenarioError> {
    enum Section {
        None,
        Fleet,
        Cohort,
    }
    let mut doc = ScenarioDoc::default();
    let mut section = Section::None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        let at = |msg: &str| err(&format!("line {}: {msg}", lineno + 1));
        if line == "[fleet]" {
            section = Section::Fleet;
            continue;
        }
        if line == "[[cohort]]" {
            doc.cohorts.push(TableDoc::default());
            section = Section::Cohort;
            continue;
        }
        if line.starts_with('[') {
            return Err(at(&format!(
                "unknown section `{line}` (expected [fleet] or [[cohort]])"
            )));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(at("expected `key = value`"));
        };
        let key = key.trim().to_string();
        let value = parse_toml_value(value.trim())
            .ok_or_else(|| at(&format!("cannot parse value for `{key}`")))?;
        let (table, context) = match section {
            Section::Fleet => (&mut doc.fleet, "[fleet]".to_string()),
            Section::Cohort => {
                let context = format!("cohort[{}]", doc.cohorts.len() - 1);
                (
                    doc.cohorts.last_mut().expect("pushed on [[cohort]]"),
                    context,
                )
            }
            Section::None => {
                return Err(at("key outside any section (start with [fleet])"));
            }
        };
        table.push_unique(&context, key, value)?;
    }
    Ok(doc)
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_toml_value(s: &str) -> Option<DocValue> {
    if let Some(inner) = s.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
        return Some(DocValue::Str(inner.to_string()));
    }
    match s {
        "true" => return Some(DocValue::Bool(true)),
        "false" => return Some(DocValue::Bool(false)),
        _ => {}
    }
    s.parse::<f64>().ok().map(DocValue::Num)
}

// ---------------------------------------------------------------------
// JSON frontend: `{"fleet": {...}, "cohorts": [{...}, ...]}` with
// string / number / boolean leaf values. Recursive descent, no serde.
// ---------------------------------------------------------------------

fn doc_from_json(text: &str) -> Result<ScenarioDoc, ScenarioError> {
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let mut doc = ScenarioDoc::default();
    let (mut seen_fleet, mut seen_cohorts) = (false, false);
    p.expect(b'{')?;
    loop {
        p.skip_ws();
        if p.eat(b'}') {
            break;
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        match key.as_str() {
            "fleet" if seen_fleet => {
                return Err(ScenarioError::DuplicateKey {
                    table: "the top-level object".to_string(),
                    key,
                })
            }
            "fleet" => {
                seen_fleet = true;
                doc.fleet = p.table("[fleet]")?;
            }
            "cohorts" if seen_cohorts => {
                return Err(ScenarioError::DuplicateKey {
                    table: "the top-level object".to_string(),
                    key,
                })
            }
            "cohorts" => {
                seen_cohorts = true;
                p.expect(b'[')?;
                loop {
                    p.skip_ws();
                    if p.eat(b']') {
                        break;
                    }
                    let context = format!("cohort[{}]", doc.cohorts.len());
                    doc.cohorts.push(p.table(&context)?);
                    p.skip_ws();
                    if !p.eat(b',') {
                        p.expect(b']')?;
                        break;
                    }
                }
            }
            other => {
                return Err(err(&format!(
                    "unknown top-level key `{other}` (expected fleet/cohorts)"
                )))
            }
        }
        p.skip_ws();
        if !p.eat(b',') {
            p.expect(b'}')?;
            break;
        }
    }
    Ok(doc)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ScenarioError> {
        self.skip_ws();
        if self.eat(b) {
            Ok(())
        } else {
            Err(err(&format!(
                "JSON: expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn string(&mut self) -> Result<String, ScenarioError> {
        self.skip_ws();
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        _ => return Err(err("JSON: unsupported escape in string")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
                None => return Err(err("JSON: unterminated string")),
            }
        }
    }

    fn value(&mut self) -> Result<DocValue, ScenarioError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'"') => Ok(DocValue::Str(self.string()?)),
            Some(b't') if self.bytes[self.pos..].starts_with(b"true") => {
                self.pos += 4;
                Ok(DocValue::Bool(true))
            }
            Some(b'f') if self.bytes[self.pos..].starts_with(b"false") => {
                self.pos += 5;
                Ok(DocValue::Bool(false))
            }
            Some(_) => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .ok()
                    .and_then(|s| s.parse::<f64>().ok())
                    .map(DocValue::Num)
                    .ok_or_else(|| err(&format!("JSON: bad value at byte {start}")))
            }
            None => Err(err("JSON: unexpected end of input")),
        }
    }

    fn table(&mut self, context: &str) -> Result<TableDoc, ScenarioError> {
        self.expect(b'{')?;
        let mut t = TableDoc::default();
        loop {
            self.skip_ws();
            if self.eat(b'}') {
                break;
            }
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            t.push_unique(context, key, value)?;
            self.skip_ws();
            if !self.eat(b',') {
                self.expect(b'}')?;
                break;
            }
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOML: &str = r#"
# A two-cohort mixed fleet.
[fleet]
name = "mini"
seed = 7
shard_size = 128
wall_limit_s = 1800.0
trace_duration_s = 30.0
scale = "quick"

[[cohort]]
count = 96
benchmark = "matmul"
technique = "swp8"
substrate = "clank"
capacitance_uf = 1.0
environment = "rf-bursty"
mean_power_uw = 125.0

[[cohort]]
count = 32
benchmark = "home"          # trailing comment
technique = "precise"
substrate = "nvp"
environment = "solar"
day_s = 10.0
"#;

    #[test]
    fn toml_scenario_parses() {
        let s = FleetScenario::parse(TOML).unwrap();
        assert_eq!(s.name, "mini");
        assert_eq!(s.seed, 7);
        assert_eq!(s.shard_size, 128);
        assert_eq!(s.total_devices(), 128);
        assert_eq!(s.shard_count(), 1);
        assert_eq!(s.cohorts.len(), 2);
        let c0 = &s.cohorts[0];
        assert_eq!(c0.benchmark, Benchmark::MatMul);
        assert_eq!(c0.technique, Technique::swp(8));
        assert_eq!(c0.substrate, SubstrateChoice::Clank);
        assert!(matches!(
            c0.env,
            EnvModel::RfBursty { mean_power_w, .. } if (mean_power_w - 125e-6).abs() < 1e-12
        ));
        let c1 = &s.cohorts[1];
        assert_eq!(c1.substrate, SubstrateChoice::Nvp);
        assert!(matches!(c1.env, EnvModel::SolarDiurnal { day_s, .. } if day_s == 10.0));
        assert_eq!(c1.name, "home-precise-nvp-solar-diurnal");
    }

    #[test]
    fn json_scenario_matches_toml_scenario() {
        let json = r#"{
  "fleet": {"name": "mini", "seed": 7, "shard_size": 128,
            "wall_limit_s": 1800.0, "trace_duration_s": 30.0, "scale": "quick"},
  "cohorts": [
    {"count": 96, "benchmark": "matmul", "technique": "swp8",
     "substrate": "clank", "capacitance_uf": 1.0,
     "environment": "rf-bursty", "mean_power_uw": 125.0},
    {"count": 32, "benchmark": "home", "technique": "precise",
     "substrate": "nvp", "environment": "solar", "day_s": 10.0}
  ]
}"#;
        let a = FleetScenario::parse(TOML).unwrap();
        let b = FleetScenario::parse(json).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn device_and_cohort_indexing() {
        let s = FleetScenario::parse(TOML).unwrap();
        assert_eq!(s.cohort_of(0), 0);
        assert_eq!(s.cohort_of(95), 0);
        assert_eq!(s.cohort_of(96), 1);
        assert_eq!(s.cohort_of(127), 1);
        // Seeds are deterministic and decorrelated.
        assert_eq!(s.device_seed(3), s.device_seed(3));
        assert_ne!(s.device_seed(3), s.device_seed(4));
        assert_ne!(s.cohort_input_seed(0), s.cohort_input_seed(1));
    }

    #[test]
    fn fingerprint_tracks_every_result_affecting_field() {
        let base = FleetScenario::parse(TOML).unwrap();
        let mut seeded = base.clone();
        seeded.seed = 8;
        assert_ne!(base.fingerprint(), seeded.fingerprint());
        let mut sharded = base.clone();
        sharded.shard_size = 64;
        assert_ne!(base.fingerprint(), sharded.fingerprint());
        let mut env = base.clone();
        env.cohorts[1].env = EnvModel::SolarDiurnal {
            peak_power_w: 1e-4,
            day_s: 10.0,
        };
        assert_ne!(base.fingerprint(), env.fingerprint());
    }

    #[test]
    fn technique_parsing_covers_the_compiler_surface() {
        let b = Benchmark::MatAdd;
        assert_eq!(parse_technique("precise", b), Some(Technique::Precise));
        assert_eq!(parse_technique("swp4", b), Some(Technique::swp(4)));
        assert_eq!(
            parse_technique("swp8+vld", b),
            Some(Technique::swp_vectorized(8))
        );
        assert_eq!(parse_technique("swv8", b), Some(Technique::swv(8)));
        assert_eq!(
            parse_technique("swv4-unprov", b),
            Some(Technique::swv_unprovisioned(4))
        );
        assert_eq!(parse_technique("anytime8", b), Some(b.technique(8)));
        assert_eq!(parse_technique("warp9", b), None);
    }

    #[test]
    fn bad_scenarios_are_rejected_with_messages() {
        for (text, needle) in [
            ("[fleet]\nseed = 1\n", "at least one"),
            ("count = 1\n", "outside any section"),
            ("[fleet]\n[[cohort]]\ncount = 4\n", "benchmark"),
            (
                "[fleet]\n[[cohort]]\nbenchmark = \"nope\"\n",
                "unknown benchmark",
            ),
            (
                "[fleet]\n[[cohort]]\nbenchmark = \"home\"\nenvironment = \"wind\"\n",
                "unknown environment",
            ),
            (
                "[fleet]\nshard_size = 0\n[[cohort]]\nbenchmark = \"home\"\n",
                "shard_size",
            ),
            (
                "[fleet]\n[[cohort]]\nbenchmark = \"home\"\ncount = 0\n",
                "zero devices",
            ),
        ] {
            let e = FleetScenario::parse(text).unwrap_err().to_string();
            assert!(
                e.contains(needle),
                "`{needle}` not in error `{e}` for:\n{text}"
            );
        }
    }

    #[test]
    fn task_substrate_parses() {
        let text = TOML.replace("substrate = \"nvp\"", "substrate = \"task\"");
        let s = FleetScenario::parse(&text).unwrap();
        assert_eq!(s.cohorts[1].substrate, SubstrateChoice::Task);
        assert_eq!(s.cohorts[1].substrate.name(), "task");
        assert!(matches!(
            s.cohorts[1].substrate.kind(),
            SubstrateKind::Task(_)
        ));
        assert_eq!(s.cohorts[1].name, "home-precise-task-solar-diurnal");
        // The substrate participates in the checkpoint fingerprint.
        assert_ne!(
            s.fingerprint(),
            FleetScenario::parse(TOML).unwrap().fingerprint()
        );
    }

    /// Satellite regression: an unknown substrate or technique must name
    /// the offending value and list the valid ones, not just point at a
    /// field.
    #[test]
    fn unknown_substrate_and_technique_errors_name_value_and_list_valid() {
        let bad_substrate = "[fleet]\n[[cohort]]\nbenchmark = \"home\"\nsubstrate = \"alpaca\"\n";
        let e = FleetScenario::parse(bad_substrate).unwrap_err().to_string();
        for needle in ["cohort[0].substrate", "`alpaca`", "clank, nvp, task"] {
            assert!(e.contains(needle), "`{needle}` not in `{e}`");
        }

        let bad_technique = "[fleet]\n[[cohort]]\nbenchmark = \"home\"\ntechnique = \"warp9\"\n";
        let e = FleetScenario::parse(bad_technique).unwrap_err().to_string();
        for needle in [
            "cohort[0].technique",
            "`warp9`",
            "precise",
            "swpN+vld",
            "swvN-unprov",
            "anytimeN",
        ] {
            assert!(e.contains(needle), "`{needle}` not in `{e}`");
        }
    }

    /// Satellite regression: a repeated key must be rejected with the
    /// named [`ScenarioError::DuplicateKey`] variant, never silently
    /// resolved (the parser used to keep the first occurrence and
    /// ignore the rest).
    #[test]
    fn duplicate_keys_are_rejected_in_both_frontends() {
        // TOML: duplicate in [fleet].
        let toml_fleet = "[fleet]\nseed = 1\nseed = 2\n[[cohort]]\nbenchmark = \"home\"\n";
        match FleetScenario::parse(toml_fleet) {
            Err(ScenarioError::DuplicateKey { table, key }) => {
                assert_eq!(table, "[fleet]");
                assert_eq!(key, "seed");
            }
            other => panic!("expected DuplicateKey, got {other:?}"),
        }
        // TOML: duplicate in a cohort table, with the cohort named.
        let toml_cohort = "[fleet]\n[[cohort]]\nbenchmark = \"home\"\n\
                           [[cohort]]\nbenchmark = \"home\"\ncount = 2\ncount = 3\n";
        match FleetScenario::parse(toml_cohort) {
            Err(ScenarioError::DuplicateKey { table, key }) => {
                assert_eq!(table, "cohort[1]");
                assert_eq!(key, "count");
            }
            other => panic!("expected DuplicateKey, got {other:?}"),
        }
        // JSON: duplicate inside a table.
        let json = r#"{"fleet": {"seed": 1, "seed": 2},
                       "cohorts": [{"benchmark": "home"}]}"#;
        match FleetScenario::parse(json) {
            Err(ScenarioError::DuplicateKey { key, .. }) => assert_eq!(key, "seed"),
            other => panic!("expected DuplicateKey, got {other:?}"),
        }
        // JSON: duplicate top-level section.
        let json_top = r#"{"fleet": {"seed": 1}, "fleet": {"seed": 2},
                           "cohorts": [{"benchmark": "home"}]}"#;
        match FleetScenario::parse(json_top) {
            Err(ScenarioError::DuplicateKey { key, .. }) => assert_eq!(key, "fleet"),
            other => panic!("expected DuplicateKey, got {other:?}"),
        }
        // The error message names the key and the table.
        let e = FleetScenario::parse(toml_fleet).unwrap_err().to_string();
        assert!(
            e.contains("duplicate key `seed`") && e.contains("[fleet]"),
            "{e}"
        );
    }

    /// Satellite regression: a typo'd key must be rejected with the
    /// named [`ScenarioError::UnknownKey`] variant instead of silently
    /// falling back to the field's default.
    #[test]
    fn unknown_keys_are_rejected_with_the_valid_set() {
        // Typo in [fleet].
        let toml = "[fleet]\nsard_size = 64\n[[cohort]]\nbenchmark = \"home\"\n";
        match FleetScenario::parse(toml) {
            Err(ScenarioError::UnknownKey { table, key, valid }) => {
                assert_eq!(table, "[fleet]");
                assert_eq!(key, "sard_size");
                assert!(valid.contains("shard_size"), "{valid}");
            }
            other => panic!("expected UnknownKey, got {other:?}"),
        }
        // Typo in a cohort.
        let toml = "[fleet]\n[[cohort]]\nbenchmark = \"home\"\ncapacitence_uf = 3.0\n";
        match FleetScenario::parse(toml) {
            Err(ScenarioError::UnknownKey { table, key, valid }) => {
                assert_eq!(table, "cohort[0]");
                assert_eq!(key, "capacitence_uf");
                assert!(valid.contains("capacitance_uf"), "{valid}");
            }
            other => panic!("expected UnknownKey, got {other:?}"),
        }
        // An environment parameter of a *different* family is unknown
        // in this cohort (solar has no burst length).
        let toml = "[fleet]\n[[cohort]]\nbenchmark = \"home\"\n\
                    environment = \"solar\"\nburst_ms = 5.0\n";
        match FleetScenario::parse(toml) {
            Err(ScenarioError::UnknownKey { key, valid, .. }) => {
                assert_eq!(key, "burst_ms");
                assert!(valid.contains("peak_power_uw") && valid.contains("day_s"));
            }
            other => panic!("expected UnknownKey, got {other:?}"),
        }
        // The matching family's parameters stay accepted.
        let ok = "[fleet]\n[[cohort]]\nbenchmark = \"home\"\n\
                  environment = \"solar\"\nday_s = 10.0\n";
        assert!(FleetScenario::parse(ok).is_ok());
    }

    #[test]
    fn shard_count_rounds_up() {
        let mut s = FleetScenario::parse(TOML).unwrap();
        assert_eq!(s.shard_count(), 1);
        s.shard_size = 50;
        assert_eq!(s.shard_count(), 3);
        s.shard_size = 128;
        s.cohorts[0].count = 97;
        assert_eq!(s.total_devices(), 129);
        assert_eq!(s.shard_count(), 2);
    }
}
