//! Lockstep cohort execution: batched tape replay for fleet sweeps.
//!
//! Within a cohort every device runs the *same compiled program on the
//! same inputs* — only the power trace (and hence outage placement)
//! differs. Both checkpoint substrates keep architectural state on the
//! fault-free trajectory: Clank rolls memory and registers back to the
//! exact checkpointed position, and NVP persists the exact interrupted
//! state, so no outage ever perturbs *what* executes — only *when*. That means
//! the whole cohort shares one instruction-by-instruction trajectory,
//! which this module records once per cohort as a
//! [`wn_sim::ExecutionTape`] and then replays per device as pure
//! supply/substrate bookkeeping ([`wn_intermittent::lockstep`]),
//! skipping per-device decode/execute/memory work entirely.
//!
//! The single way a device can leave the shared trajectory is a taken
//! skim jump. The replayer detects it (armed SKM register at a
//! restore), reconstructs the device's architectural state by walking
//! the master core to the resume position, and hands the device off to
//! the ordinary scalar [`wn_intermittent::IntermittentExecutor`] —
//! which then performs the jump and the approximate-region execution
//! exactly as an unbatched run would. Cohorts the replay cannot mirror
//! bit-exactly (telemetry enabled, per-word checkpoint costs,
//! memoization, and the whole Task substrate — whose re-execution from
//! task entries *does* replay instructions, violating the shared
//! trajectory premise) fall back to the scalar engine wholesale, so
//! fleet reports are byte-identical across engines by construction.

use std::sync::Arc;

use wn_core::error::WnError;
use wn_core::intermittent::{IntermittentOutcome, SubstrateKind};
use wn_core::prepared::PreparedRun;
use wn_core::telemetry;
use wn_energy::{EnergySupply, SupplyError};
use wn_intermittent::{replay_run_clank, replay_run_nvp, ExecError};
use wn_sim::{Core, ExecutionTape, WalkCache};

use crate::runner::{completed_outcome, incomplete_outcome, simulate_device};
use crate::runner::{DeviceFate, DeviceOutcome};
use crate::scenario::FleetScenario;

/// Devices per lockstep batch job by default: large enough to amortize
/// job-pool dispatch, small enough to keep every worker fed on the
/// smoke-sized shards.
pub const DEFAULT_CHUNK: usize = 32;

/// Backstop on recorded trajectory length. Quick-scale kernels retire
/// well under a million instructions; a cohort beyond the cap (or one
/// that faults mid-trajectory) falls back to the scalar engine instead
/// of holding an unbounded tape.
const TAPE_STEP_CAP: u64 = 8_000_000;

/// Which execution engine [`crate::runner::run_fleet`] drives devices
/// through. Results are byte-identical either way (proven by the
/// differential tests in this module); the engine only changes speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetEngine {
    /// One scalar intermittent executor per device.
    Scalar,
    /// Lockstep tape replay per cohort, `chunk` devices per pool job;
    /// divergent (skimming) devices peel onto the scalar engine.
    Batched {
        /// Devices per pool job.
        chunk: usize,
    },
}

impl Default for FleetEngine {
    fn default() -> FleetEngine {
        FleetEngine::Batched {
            chunk: DEFAULT_CHUNK,
        }
    }
}

/// Per-cohort execution plan, built once per sweep.
pub(crate) enum CohortPlan {
    /// Drive every device through [`simulate_device`].
    Scalar,
    /// Replay devices over the cohort's recorded trajectory.
    Tape(Box<TapePlan>),
}

/// Everything a lockstep replay needs, shared read-only across pool
/// workers.
pub(crate) struct TapePlan {
    prepared: Arc<PreparedRun>,
    /// Pristine core (inputs injected, fused-block table built) — the
    /// replayer consults its block table; handoffs clone and walk it.
    master: Core,
    tape: ExecutionTape,
    /// Snapshot grid shared by every diverging device in the cohort so
    /// handoff reconstructions walk from the nearest cached core, not
    /// from step zero. Contents are pure functions of (master, tape),
    /// so sharing across pool workers cannot change a byte of output.
    walk_cache: WalkCache,
    /// NRMSE of the fault-free trajectory's output. A device that
    /// retires the whole tape commits exactly the master's memory, so
    /// its score is this cohort-level constant.
    tape_error_percent: f64,
}

/// Builds one [`CohortPlan`] per cohort. Infallible by design: any
/// condition the tape replay cannot mirror bit-exactly — and any error
/// preparing the cohort — selects the scalar engine, which reproduces
/// (and correctly attributes) the behavior on the devices themselves.
pub(crate) fn build_plans(scenario: &FleetScenario) -> Vec<CohortPlan> {
    (0..scenario.cohorts.len())
        .map(|cohort| build_plan(scenario, cohort))
        .collect()
}

fn build_plan(scenario: &FleetScenario, cohort: usize) -> CohortPlan {
    let spec = &scenario.cohorts[cohort];
    // Telemetry observes scalar-executor internals the replayer does
    // not produce; per-word checkpoint costs need register dirty-word
    // counts the tape does not carry.
    if telemetry::is_enabled() {
        return CohortPlan::Scalar;
    }
    match spec.substrate.kind() {
        SubstrateKind::Clank(cfg) => {
            if cfg.cycles_per_checkpoint_word != 0 {
                return CohortPlan::Scalar;
            }
        }
        SubstrateKind::Nvp(_) => {}
        // The Task substrate re-executes the interrupted task from its
        // entry after every outage, so its devices do not share one
        // fault-free trajectory — the premise the tape replay rests on.
        // Task cohorts run on the scalar engine (the explicit fallback
        // ISSUE 7 allows), pinned by the differential tests below.
        SubstrateKind::Task(_) => return CohortPlan::Scalar,
    }
    let Ok(prepared) = PreparedRun::cached(
        spec.benchmark,
        scenario.scale,
        scenario.cohort_input_seed(cohort),
        spec.technique,
    ) else {
        return CohortPlan::Scalar;
    };
    // Memoization mutates dispatch costs as the memo table warms, so a
    // re-executing (Clank) device's costs depend on its outage history.
    if prepared.core_config.memo.is_some() {
        return CohortPlan::Scalar;
    }
    let Ok(master) = prepared.fresh_core() else {
        return CohortPlan::Scalar;
    };
    let mut recorder = master.clone();
    let tape = match ExecutionTape::record(&mut recorder, TAPE_STEP_CAP) {
        Ok(Some(tape)) => tape,
        Ok(None) | Err(_) => return CohortPlan::Scalar,
    };
    // The recorder just retired the fault-free trajectory: its memory
    // holds the output every tape-completing device commits.
    let Ok(tape_error_percent) = prepared.error_percent(&recorder) else {
        return CohortPlan::Scalar;
    };
    CohortPlan::Tape(Box::new(TapePlan {
        prepared,
        master,
        tape,
        walk_cache: WalkCache::new(),
        tape_error_percent,
    }))
}

/// [`simulate_device`]'s lockstep twin: identical outcome, different
/// engine. Devices in scalar-planned cohorts delegate to the scalar
/// path unchanged.
///
/// # Errors
///
/// Fatal errors only, tagged with the device index, exactly as the
/// scalar path tags them; starvation and wall-clock expiry are
/// outcomes.
pub(crate) fn simulate_device_batched(
    scenario: &FleetScenario,
    plans: &[CohortPlan],
    device: u64,
) -> Result<DeviceOutcome, (u64, WnError)> {
    let cohort = scenario.cohort_of(device);
    let plan = match &plans[cohort] {
        CohortPlan::Scalar => return simulate_device(scenario, device),
        CohortPlan::Tape(plan) => plan,
    };
    let spec = &scenario.cohorts[cohort];
    let trace = spec
        .env
        .synthesize(scenario.device_seed(device), scenario.trace_duration_s);
    let supply = EnergySupply::new(trace, spec.supply());
    let result = match spec.substrate.kind() {
        SubstrateKind::Clank(cfg) => replay_run_clank(
            &plan.tape,
            &plan.master,
            &plan.walk_cache,
            supply,
            cfg,
            scenario.wall_limit_s,
        ),
        SubstrateKind::Nvp(cfg) => replay_run_nvp(
            &plan.tape,
            &plan.master,
            &plan.walk_cache,
            supply,
            cfg,
            scenario.wall_limit_s,
        ),
        // Unreachable in practice — `build_plan` never emits a tape plan
        // for a Task cohort — but kept total so a future planner change
        // degrades to the scalar engine instead of panicking.
        SubstrateKind::Task(_) => return simulate_device(scenario, device),
    };
    match result {
        Ok((run, handed_core)) => {
            let error_percent = match &handed_core {
                // Diverged device: score the continuation's final core.
                Some(core) => plan.prepared.error_percent(core).map_err(|e| (device, e))?,
                // Tape-completing device: the cohort-level constant.
                None => plan.tape_error_percent,
            };
            let out = IntermittentOutcome {
                time_s: run.total_time_s,
                on_time_s: run.on_time_s,
                active_cycles: run.active_cycles,
                outages: run.outages,
                skimmed: run.skimmed,
                error_percent,
                substrate: run.substrate,
            };
            Ok(completed_outcome(device, cohort, &out))
        }
        Err(ExecError::WallClock { .. }) => {
            Ok(incomplete_outcome(device, cohort, DeviceFate::TimedOut))
        }
        Err(ExecError::Supply(SupplyError::Starved { .. })) => {
            Ok(incomplete_outcome(device, cohort, DeviceFate::Starved))
        }
        Err(e) => Err((device, WnError::Exec(e))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_scenario() -> FleetScenario {
        FleetScenario::parse(
            r#"
[fleet]
name = "lockstep-mixed"
seed = 11
shard_size = 16
wall_limit_s = 600.0
trace_duration_s = 20.0

[[cohort]]
count = 10
benchmark = "matadd"
technique = "anytime8"
substrate = "clank"
environment = "rf-bursty"

[[cohort]]
count = 10
benchmark = "home"
technique = "anytime8"
substrate = "nvp"
environment = "solar"
day_s = 10.0

[[cohort]]
count = 6
benchmark = "matadd"
technique = "precise"
substrate = "clank"
capacitance_uf = 2.2
environment = "piezo"

[[cohort]]
count = 6
benchmark = "matadd"
technique = "precise"
substrate = "task"
environment = "rf-bursty"
"#,
        )
        .unwrap()
    }

    #[test]
    fn plans_record_a_tape_for_every_checkpoint_cohort() {
        let s = mixed_scenario();
        let plans = build_plans(&s);
        assert_eq!(plans.len(), 4);
        for (i, p) in plans.iter().take(3).enumerate() {
            match p {
                CohortPlan::Tape(plan) => assert!(!plan.tape.is_empty(), "cohort {i}"),
                CohortPlan::Scalar => panic!("cohort {i} unexpectedly fell back to scalar"),
            }
        }
    }

    /// The explicit lockstep policy for the checkpoint-free substrate:
    /// Task cohorts plan onto the scalar engine (no tape is recorded for
    /// them), and the engine-equivalence test below proves the fallback
    /// produces bit-identical outcomes.
    #[test]
    fn task_cohorts_plan_onto_the_scalar_engine() {
        let s = mixed_scenario();
        let plans = build_plans(&s);
        assert!(matches!(plans[3], CohortPlan::Scalar));
    }

    #[test]
    fn telemetry_forces_the_scalar_plan() {
        let s = mixed_scenario();
        telemetry::set_enabled(true);
        let plans = build_plans(&s);
        telemetry::set_enabled(false);
        assert!(plans.iter().all(|p| matches!(p, CohortPlan::Scalar)));
    }

    /// The acceptance property at device granularity: every device in
    /// every cohort — Clank and NVP on the tape (completing, diverging
    /// via skim, starving, or timing out) and Task on the scalar
    /// fallback — produces the *bit-identical* outcome on both engines.
    #[test]
    fn batched_outcomes_equal_scalar_outcomes_for_every_device() {
        let s = mixed_scenario();
        let plans = build_plans(&s);
        let mut fates = std::collections::BTreeMap::new();
        for device in 0..s.total_devices() {
            let scalar = simulate_device(&s, device).unwrap();
            let batched = simulate_device_batched(&s, &plans, device).unwrap();
            assert_eq!(scalar, batched, "device {device} diverged between engines");
            *fates.entry(format!("{:?}", scalar.fate)).or_insert(0u32) += 1;
        }
        assert!(
            fates.get("Completed").copied().unwrap_or(0) > 0,
            "population must exercise the replay path: {fates:?}"
        );
    }
}
