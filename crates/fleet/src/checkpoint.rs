//! Shard-granular fleet checkpoints (`wn-fleet-ckpt-v1`).
//!
//! Written atomically (tmp + rename) after every completed shard, so a
//! killed sweep can resume at the last shard boundary and finish
//! **byte-identical** to an uninterrupted run: the aggregate state
//! crosses the file as exact IEEE-754 bit patterns (see
//! [`crate::codec`]), and the scenario fingerprint guards against
//! resuming somebody else's sweep.

use std::fs;
use std::path::Path;

use wn_telemetry::json::{extract_f64, extract_str, Obj};

use crate::codec::{StateReader, StateWriter};
use crate::durable::persist_atomic;
use crate::runner::{CohortAggregate, FleetError};

pub const CKPT_SCHEMA: &str = "wn-fleet-ckpt-v1";

/// Resumable sweep state: which shard comes next and every cohort's
/// aggregate so far.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// [`crate::scenario::FleetScenario::fingerprint`] of the scenario
    /// that produced this state.
    pub fingerprint: u64,
    /// Shards already folded in; the resume starts here.
    pub shards_done: usize,
    /// Total shards in the sweep (provenance; recomputed on resume).
    pub shard_count: usize,
    pub cohorts: Vec<CohortAggregate>,
}

impl Checkpoint {
    pub fn to_json(&self) -> String {
        let mut w = StateWriter::new();
        w.u64(self.cohorts.len() as u64);
        for c in &self.cohorts {
            c.save(&mut w);
        }
        Obj::new()
            .str("schema", CKPT_SCHEMA)
            .str("fingerprint", &format!("{:016x}", self.fingerprint))
            .u64("shards_done", self.shards_done as u64)
            .u64("shard_count", self.shard_count as u64)
            .str("state", w.as_str())
            .finish()
    }

    /// Parses a checkpoint document.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Checkpoint`] on any malformed, truncated,
    /// or wrong-schema input.
    pub fn from_json(doc: &str) -> Result<Checkpoint, FleetError> {
        let bad = |msg: &str| FleetError::Checkpoint(msg.to_string());
        match extract_str(doc, "schema") {
            Some(CKPT_SCHEMA) => {}
            Some(other) => return Err(bad(&format!("unexpected schema `{other}`"))),
            None => return Err(bad("missing schema field")),
        }
        let fingerprint = extract_str(doc, "fingerprint")
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| bad("missing/invalid fingerprint"))?;
        let shards_done = extract_f64(doc, "shards_done")
            .filter(|v| *v >= 0.0 && v.fract() == 0.0)
            .ok_or_else(|| bad("missing/invalid shards_done"))? as usize;
        let shard_count = extract_f64(doc, "shard_count")
            .filter(|v| *v >= 0.0 && v.fract() == 0.0)
            .ok_or_else(|| bad("missing/invalid shard_count"))? as usize;
        let state = extract_str(doc, "state").ok_or_else(|| bad("missing state field"))?;
        let mut r = StateReader::new(state);
        let n = r.u64().ok_or_else(|| bad("truncated state stream"))? as usize;
        let mut cohorts = Vec::with_capacity(n);
        for i in 0..n {
            cohorts.push(
                CohortAggregate::load(&mut r)
                    .ok_or_else(|| bad(&format!("truncated state for cohort {i}")))?,
            );
        }
        if !r.is_empty() {
            return Err(bad("trailing tokens in state stream"));
        }
        Ok(Checkpoint {
            fingerprint,
            shards_done,
            shard_count,
            cohorts,
        })
    }
}

/// Writes `ckpt` atomically and durably: the file at `path` is always a
/// complete checkpoint, never a torn write (a kill mid-store leaves the
/// previous one), and once this returns the new checkpoint — including
/// the rename publishing it — survives power failure. See
/// [`crate::durable`] for the pinned write/sync/rename/sync-dir
/// sequence.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn store(path: &Path, ckpt: &Checkpoint) -> Result<(), FleetError> {
    persist_atomic(path, ckpt.to_json().as_bytes())?;
    Ok(())
}

/// Loads a checkpoint.
///
/// # Errors
///
/// I/O errors reading the file, [`FleetError::Checkpoint`] on malformed
/// content.
pub fn load(path: &Path) -> Result<Checkpoint, FleetError> {
    Checkpoint::from_json(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::MetricAgg;

    fn sample() -> Checkpoint {
        let mut a = CohortAggregate::new();
        a.devices = 40;
        a.completed = 37;
        a.skimmed = 12;
        a.starved = 2;
        a.timed_out = 1;
        let mut time = MetricAgg::new();
        for i in 0..37 {
            let v = 0.01 + (i as f64 * 0.731).fract();
            time.record(v);
            a.time_hist.record(v);
        }
        a.time = time;
        Checkpoint {
            fingerprint: 0xdead_beef_0123_4567,
            shards_done: 3,
            shard_count: 9,
            cohorts: vec![a, CohortAggregate::new()],
        }
    }

    #[test]
    fn checkpoint_round_trips_exactly() {
        let ckpt = sample();
        let doc = ckpt.to_json();
        assert!(doc.contains(CKPT_SCHEMA));
        let back = Checkpoint::from_json(&doc).unwrap();
        assert_eq!(back, ckpt);
        // And byte-stable: re-serializing the parse gives the same doc.
        assert_eq!(back.to_json(), doc);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for doc in [
            "{}",
            r#"{"schema":"wn-fleet-ckpt-v2","fingerprint":"00","shards_done":0,"shard_count":0,"state":"0"}"#,
            r#"{"schema":"wn-fleet-ckpt-v1","fingerprint":"zz","shards_done":0,"shard_count":0,"state":"0"}"#,
            r#"{"schema":"wn-fleet-ckpt-v1","fingerprint":"00","shards_done":1,"shard_count":2,"state":"1 5"}"#,
        ] {
            assert!(Checkpoint::from_json(doc).is_err(), "accepted: {doc}");
        }
    }

    #[test]
    fn store_and_load_via_tempfile() {
        let dir = std::env::temp_dir().join(format!("wn-fleet-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let ckpt = sample();
        store(&path, &ckpt).unwrap();
        assert_eq!(load(&path).unwrap(), ckpt);
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file renamed away"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_file_loads_as_checkpoint_error() {
        let dir = std::env::temp_dir().join(format!("wn-fleet-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let ckpt = sample();
        store(&path, &ckpt).unwrap();
        // Simulate a torn write: chop the stored document in half.
        let doc = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &doc[..doc.len() / 2]).unwrap();
        match load(&path) {
            Err(FleetError::Checkpoint(_)) => {}
            other => panic!("truncated checkpoint must be a Checkpoint error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
