//! Crash-durable atomic file replacement.
//!
//! The tmp + rename dance makes a write *atomic* (readers see the old
//! document or the new one, never a torn mix), but atomicity alone is
//! not durability: the rename itself is a mutation of the **parent
//! directory**, and a power failure after `rename` returns can still
//! roll the directory back to the old entry — or, for a first write, to
//! no entry at all — unless the directory is fsynced too. That is
//! exactly the torn recovery state the intermittence model of the
//! What's Next paper punishes, so the sequence here is pinned by a
//! regression test ([`PersistStep`]):
//!
//! 1. write the tmp file,
//! 2. `fsync` the tmp file (data durable before it is published),
//! 3. `rename` tmp over the destination (atomic publish),
//! 4. `fsync` the parent directory (the publish itself durable).

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// The syscall-visible steps of [`persist_atomic`], in order. Tests
/// record these to pin the durability sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistStep {
    /// Contents written to the tmp file.
    WriteTmp,
    /// Tmp file fsynced (data durable before publication).
    SyncTmp,
    /// Tmp renamed over the destination (atomic publish).
    Rename,
    /// Parent directory fsynced (the rename itself durable).
    SyncDir,
}

/// Atomically and durably replaces the file at `path` with `contents`.
///
/// A crash at any point leaves either the previous document or the new
/// one, and once this returns the new document survives power failure —
/// including the rename, which lives in the parent directory's entries.
///
/// # Errors
///
/// Propagates I/O errors from any step.
pub fn persist_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    persist_atomic_traced(path, contents, &mut |_| {})
}

/// [`persist_atomic`] with each completed step reported to `trace`,
/// immediately after the corresponding syscall returns — the regression
/// hook asserting the write/sync/rename/sync-dir order.
pub fn persist_atomic_traced(
    path: &Path,
    contents: &[u8],
    trace: &mut dyn FnMut(PersistStep),
) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(contents)?;
        trace(PersistStep::WriteTmp);
        file.sync_all()?;
        trace(PersistStep::SyncTmp);
    }
    fs::rename(&tmp, path)?;
    trace(PersistStep::Rename);
    // Durability of the rename: fsync the directory whose entry table
    // the rename mutated. An empty parent means "the current directory".
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let dir = fs::File::open(parent)?;
    dir.sync_all()?;
    trace(PersistStep::SyncDir);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wn-durable-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Satellite regression: the durability sequence is exactly
    /// write → fsync(file) → rename → fsync(dir). Dropping the final
    /// directory sync is the bug this pins — the rename could be lost
    /// on power failure even though the file data was synced.
    #[test]
    fn persist_follows_the_full_durability_sequence() {
        let dir = temp_dir("seq");
        let path = dir.join("doc.json");
        let mut steps = Vec::new();
        persist_atomic_traced(&path, b"{\"v\":1}", &mut |s| steps.push(s)).unwrap();
        assert_eq!(
            steps,
            vec![
                PersistStep::WriteTmp,
                PersistStep::SyncTmp,
                PersistStep::Rename,
                PersistStep::SyncDir,
            ],
            "parent-directory fsync must follow the rename"
        );
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\":1}");
        assert!(!path.with_extension("tmp").exists(), "tmp renamed away");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replacement_is_atomic_and_overwrites() {
        let dir = temp_dir("replace");
        let path = dir.join("doc.json");
        persist_atomic(&path, b"old").unwrap();
        persist_atomic(&path, b"new").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_parent_directory_is_an_io_error() {
        let dir = temp_dir("missing").join("nope");
        let err = persist_atomic(&dir.join("doc.json"), b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
