//! Fleet sweep reports (`wn-fleet-report-v1`).
//!
//! A report carries only scenario-derived provenance (name, seed,
//! fingerprint, population shape) and aggregate results — never host
//! timestamps or worker counts — so the same scenario always renders
//! byte-identical JSON and CSV whatever machine, `--jobs` width, or
//! resume history produced it. Wall-clock provenance belongs in the run
//! manifest, which records it separately.

use wn_telemetry::json::{self, Obj};

use crate::runner::CohortAggregate;
use crate::scenario::{CohortSpec, FleetScenario};

pub const REPORT_SCHEMA: &str = "wn-fleet-report-v1";

/// Results of a completed fleet sweep: one aggregate per cohort plus
/// the fleet-wide merge.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Scenario display name.
    pub scenario: String,
    pub seed: u64,
    /// Scenario fingerprint (checkpoint/report provenance link).
    pub fingerprint: u64,
    pub shard_size: usize,
    pub shard_count: usize,
    /// Cohort descriptions, parallel to `cohorts`.
    pub specs: Vec<CohortSpec>,
    /// Per-cohort aggregates in scenario cohort order.
    pub cohorts: Vec<CohortAggregate>,
}

impl FleetReport {
    pub fn new(scenario: &FleetScenario, cohorts: Vec<CohortAggregate>) -> FleetReport {
        assert_eq!(scenario.cohorts.len(), cohorts.len());
        FleetReport {
            scenario: scenario.name.clone(),
            seed: scenario.seed,
            fingerprint: scenario.fingerprint(),
            shard_size: scenario.shard_size,
            shard_count: scenario.shard_count(),
            specs: scenario.cohorts.clone(),
            cohorts,
        }
    }

    /// The fleet-wide aggregate: cohort aggregates merged in cohort
    /// order (deterministic, like every other fold in the runner).
    pub fn fleet_aggregate(&self) -> CohortAggregate {
        let mut total = CohortAggregate::new();
        for c in &self.cohorts {
            total.merge(c);
        }
        total
    }

    pub fn to_json(&self) -> String {
        let cohorts = json::array(
            self.specs
                .iter()
                .zip(self.cohorts.iter())
                .map(|(spec, agg)| cohort_json(spec, agg)),
        );
        Obj::new()
            .str("schema", REPORT_SCHEMA)
            .str("scenario", &self.scenario)
            .u64("seed", self.seed)
            .str("fingerprint", &format!("{:016x}", self.fingerprint))
            .u64("shard_size", self.shard_size as u64)
            .u64("shard_count", self.shard_count as u64)
            .raw("fleet", aggregate_json(&self.fleet_aggregate()))
            .raw("cohorts", cohorts)
            .finish()
    }

    /// Long-format CSV: `cohort,key,value` rows, fleet-wide rows under
    /// cohort name `_fleet`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cohort,key,value\n");
        aggregate_csv("_fleet", &self.fleet_aggregate(), &mut out);
        for (spec, agg) in self.specs.iter().zip(self.cohorts.iter()) {
            aggregate_csv(&spec.name, agg, &mut out);
        }
        out
    }
}

fn cohort_json(spec: &CohortSpec, agg: &CohortAggregate) -> String {
    spec_fields(Obj::new(), spec)
        .raw("results", aggregate_json(agg))
        .finish()
}

/// The scenario-derived cohort identity fields, shared with the
/// predict report so the two documents describe cohorts identically.
pub(crate) fn spec_fields(o: Obj, spec: &CohortSpec) -> Obj {
    o.str("name", &spec.name)
        .str("benchmark", spec.benchmark.name())
        .str("technique", &spec.technique.to_string())
        .str("substrate", spec.substrate.name())
        .f64("capacitance_uf", spec.capacitance_uf)
        .str("environment", spec.env.name())
        .f64("env_mean_power_w", spec.env.expected_mean_power_w())
}

pub(crate) fn aggregate_json(agg: &CohortAggregate) -> String {
    Obj::new()
        .u64("devices", agg.devices)
        .u64("completed", agg.completed)
        .u64("skimmed", agg.skimmed)
        .u64("starved", agg.starved)
        .u64("timed_out", agg.timed_out)
        .f64("completion_rate", agg.completion_rate())
        .raw("time_s", agg.time.to_json())
        .raw("on_time_s", agg.on_time.to_json())
        .raw("error_percent", agg.qor.to_json())
        .raw("forward_progress", agg.progress.to_json())
        .raw("outages", agg.outages.to_json())
        .raw("checkpoints", agg.checkpoints.to_json())
        .raw("commits", agg.commits.to_json())
        .raw("time_hist", agg.time_hist.to_json())
        .finish()
}

pub(crate) fn aggregate_csv(name: &str, agg: &CohortAggregate, out: &mut String) {
    let mut push = |key: &str, value: String| {
        out.push_str(name);
        out.push(',');
        out.push_str(key);
        out.push(',');
        out.push_str(&value);
        out.push('\n');
    };
    push("devices", agg.devices.to_string());
    push("completed", agg.completed.to_string());
    push("skimmed", agg.skimmed.to_string());
    push("starved", agg.starved.to_string());
    push("timed_out", agg.timed_out.to_string());
    push("completion_rate", format!("{}", agg.completion_rate()));
    let mut rows = String::new();
    agg.time.csv_rows("time_s", &mut rows);
    agg.on_time.csv_rows("on_time_s", &mut rows);
    agg.qor.csv_rows("error_percent", &mut rows);
    agg.progress.csv_rows("forward_progress", &mut rows);
    agg.outages.csv_rows("outages", &mut rows);
    agg.checkpoints.csv_rows("checkpoints", &mut rows);
    agg.commits.csv_rows("commits", &mut rows);
    for row in rows.lines() {
        if let Some((key, value)) = row.split_once(',') {
            push(key, value.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_fleet, FleetOptions};

    fn report() -> FleetReport {
        let s = FleetScenario::parse(
            r#"
[fleet]
name = "report-test"
seed = 9
shard_size = 16
wall_limit_s = 600.0
trace_duration_s = 20.0

[[cohort]]
count = 10
benchmark = "matadd"
technique = "anytime8"
environment = "rf-bursty"
"#,
        )
        .unwrap();
        run_fleet(&s, &FleetOptions::default())
            .unwrap()
            .report()
            .unwrap()
    }

    #[test]
    fn json_has_schema_and_per_cohort_results() {
        let r = report();
        let doc = r.to_json();
        assert!(doc.contains(&format!("\"schema\":\"{REPORT_SCHEMA}\"")));
        assert!(doc.contains("\"scenario\":\"report-test\""));
        assert!(doc.contains("\"fleet\":{"));
        assert!(doc.contains("\"benchmark\":\"matadd\""));
        assert!(doc.contains("\"time_hist\""));
        // Non-finite never leaks into the document.
        assert!(!doc.contains("NaN") && !doc.contains("inf"), "{doc}");
    }

    #[test]
    fn csv_is_long_format_with_fleet_rows() {
        let r = report();
        let csv = r.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("cohort,key,value"));
        assert!(csv.contains("_fleet,devices,10"));
        assert!(csv.contains("matadd-swv8-clank-rf-bursty,devices,10"));
        assert!(csv.contains(",time_s.count,"));
        for line in csv.lines().skip(1) {
            assert_eq!(line.matches(',').count(), 2, "bad row: {line}");
        }
    }

    #[test]
    fn fleet_aggregate_is_the_cohort_merge() {
        let r = report();
        let total = r.fleet_aggregate();
        assert_eq!(total.devices, r.cohorts.iter().map(|c| c.devices).sum());
        assert_eq!(total.completed, r.cohorts.iter().map(|c| c.completed).sum());
    }
}
