//! The analytic predict path (`wn-analyze-report-v1`).
//!
//! [`predict_fleet`] answers the same question [`run_fleet`] answers by
//! simulation — per-cohort completion-time distributions, fates, and
//! substrate counter movements — but through wn-analyze's closed-form
//! model, at a cost of two fault-free runs per cohort instead of one
//! intermittent run per device. The report it renders is shaped like
//! the fleet's (`wn-fleet-report-v1`): same provenance header, same
//! cohort identity fields, same aggregate keys, so downstream tooling
//! reads either document with one parser. Cohorts the model cannot
//! handle appear with an `unsupported` reason — reported, never
//! silently skipped.
//!
//! [`validate`] cross-checks a predict report against a fleet report
//! for the same scenario under the documented tolerance bands (see
//! DESIGN.md §13 for why each band is where it is), and
//! [`check_scenario`] is the shared parse-and-prepare dry run both
//! `experiments fleet --check` and `experiments predict` start from.
//!
//! [`run_fleet`]: crate::runner::run_fleet

use wn_analyze::{CohortPrediction, CohortQuery, Prediction};
use wn_core::error::WnError;
use wn_core::intermittent::SubstrateKind;
use wn_core::prepared::PreparedRun;
use wn_telemetry::json::{self, Obj};

use crate::report::{self, FleetReport};
use crate::runner::{CohortAggregate, DeviceFate, DeviceOutcome};
use crate::scenario::FleetScenario;

pub const PREDICT_SCHEMA: &str = "wn-analyze-report-v1";

// ---------------------------------------------------------------------
// Validation tolerance bands.
//
// The sanity suite (crates/analyze/tests/predict_sanity.rs) measures
// 2–19 % mean-time disagreement across the substrate × environment
// matrix at 24-device ensembles; the bands below give roughly 2×
// headroom over the worst measured case so the gate catches model
// regressions, not ensemble noise.
// ---------------------------------------------------------------------

/// Predicted mean completion time must sit within this relative band
/// of the fleet's measured mean.
pub const MEAN_TIME_RTOL: f64 = 0.35;

/// Quantile agreement is stated in [`crate::agg::FixedSketch`] bucket
/// widths: predicted and measured quantiles must lie within this many
/// log-spaced buckets (each `10^(1/20) ≈ 1.12×`) of each other.
pub const QUANTILE_BANDS: f64 = 4.0;

/// Substrate counter means (outages, checkpoints, commits) must agree
/// within this relative band...
pub const COUNT_RTOL: f64 = 0.5;

/// ...or this absolute slack, whichever is larger (fault-free cohorts
/// have near-zero outage counts where a relative band is meaningless).
pub const COUNT_ATOL: f64 = 2.0;

/// Completion *rates* (fractions in `[0, 1]`) must agree within this
/// absolute band.
pub const COMPLETION_RATE_ATOL: f64 = 0.15;

/// What [`check_scenario`] learned without running anything: the
/// provenance a `--check` invocation prints.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckSummary {
    pub name: String,
    pub fingerprint: u64,
    pub total_devices: u64,
    pub cohorts: usize,
    pub shard_count: usize,
}

/// Parses nothing further — the scenario is already parsed — but walks
/// every cohort through kernel preparation (compile + input injection),
/// exactly the work a fleet run or a prediction would do first. A
/// scenario that passes here fails later only for environmental
/// reasons (disk, interrupts), not semantic ones.
///
/// # Errors
///
/// The first cohort whose kernel cannot be prepared.
pub fn check_scenario(scenario: &FleetScenario) -> Result<CheckSummary, WnError> {
    for (cohort, _) in scenario.cohorts.iter().enumerate() {
        prepare_cohort(scenario, cohort)?;
    }
    Ok(CheckSummary {
        name: scenario.name.clone(),
        fingerprint: scenario.fingerprint(),
        total_devices: scenario.total_devices(),
        cohorts: scenario.cohorts.len(),
        shard_count: scenario.shard_count(),
    })
}

/// One cohort's kernel, prepared the way the scalar fleet path prepares
/// it (task-decomposed iff the cohort runs the task substrate), so
/// predictions profile the exact artifact the fleet executes.
fn prepare_cohort(
    scenario: &FleetScenario,
    cohort: usize,
) -> Result<std::sync::Arc<PreparedRun>, WnError> {
    let spec = &scenario.cohorts[cohort];
    PreparedRun::cached_with_tasks(
        spec.benchmark,
        scenario.scale,
        scenario.cohort_input_seed(cohort),
        spec.technique,
        matches!(spec.substrate.kind(), SubstrateKind::Task(_)),
    )
}

/// One cohort's forecast: an aggregate shaped like the fleet's, or an
/// honest refusal.
#[derive(Debug, Clone, PartialEq)]
pub enum CohortForecast {
    /// wn-analyze declined this cohort; the reason is reported.
    Unsupported { reason: String },
    Predicted {
        /// The prediction folded into the same aggregate type the
        /// fleet runner folds outcomes into — quantile sketch,
        /// histogram and all — so the two reports render identically.
        aggregate: Box<CohortAggregate>,
        /// The analytic scalars behind the aggregate.
        model: Box<Prediction>,
    },
}

/// The analytic counterpart of [`FleetReport`]: same provenance, one
/// [`CohortForecast`] per cohort.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictReport {
    pub scenario: String,
    pub seed: u64,
    pub fingerprint: u64,
    pub specs: Vec<crate::scenario::CohortSpec>,
    pub cohorts: Vec<CohortForecast>,
}

/// Predicts every cohort of a scenario. Runs [`check_scenario`] first,
/// so a scenario rejected by `fleet --check` is rejected here with the
/// same error.
///
/// # Errors
///
/// Kernel preparation or profiling failures; an *unsupported* cohort
/// is not an error.
pub fn predict_fleet(scenario: &FleetScenario) -> Result<PredictReport, WnError> {
    check_scenario(scenario)?;
    let mut cohorts = Vec::with_capacity(scenario.cohorts.len());
    for (i, spec) in scenario.cohorts.iter().enumerate() {
        let prepared = prepare_cohort(scenario, i)?;
        let q = CohortQuery {
            prepared: &prepared,
            substrate: spec.substrate.kind(),
            supply: spec.supply(),
            env: spec.env,
            devices: spec.count,
            wall_limit_s: scenario.wall_limit_s,
        };
        cohorts.push(match wn_analyze::predict(&q)? {
            CohortPrediction::Unsupported { reason } => CohortForecast::Unsupported { reason },
            CohortPrediction::Predicted(model) => CohortForecast::Predicted {
                aggregate: Box::new(aggregate_of(i, &model)),
                model,
            },
        });
    }
    Ok(PredictReport {
        scenario: scenario.name.clone(),
        seed: scenario.seed,
        fingerprint: scenario.fingerprint(),
        specs: scenario.cohorts.clone(),
        cohorts,
    })
}

/// Folds a prediction into the fleet's aggregate type by synthesizing
/// one [`DeviceOutcome`] per predicted device — completion times from
/// the quantile grid, counters from the model's expectations — through
/// the *same* `record` path the runner uses, so sketch buckets and
/// histogram boundaries match the fleet's by construction.
fn aggregate_of(cohort: usize, p: &Prediction) -> CohortAggregate {
    let mut agg = CohortAggregate::new();
    let mut device = 0u64;
    for &time_s in &p.times_s {
        agg.record(&DeviceOutcome {
            device,
            cohort,
            fate: DeviceFate::Completed,
            skimmed: p.skimmed > 0,
            time_s,
            on_time_s: p.on_time_s,
            error_percent: p.error_percent,
            outages: p.outages.round() as u64,
            checkpoints: p.checkpoints.round() as u64,
            commits: p.commits.round() as u64,
            forward_progress: p.forward_progress,
        });
        device += 1;
    }
    for (fate, n) in [
        (DeviceFate::Starved, p.starved),
        (DeviceFate::TimedOut, p.timed_out),
    ] {
        for _ in 0..n {
            agg.record(&DeviceOutcome {
                device,
                cohort,
                fate,
                skimmed: false,
                time_s: 0.0,
                on_time_s: 0.0,
                error_percent: 0.0,
                outages: 0,
                checkpoints: 0,
                commits: 0,
                forward_progress: 0.0,
            });
            device += 1;
        }
    }
    agg
}

impl PredictReport {
    /// Predicted cohorts merged in cohort order (unsupported cohorts
    /// contribute nothing — their devices are not forecast).
    pub fn fleet_aggregate(&self) -> CohortAggregate {
        let mut total = CohortAggregate::new();
        for c in &self.cohorts {
            if let CohortForecast::Predicted { aggregate, .. } = c {
                total.merge(aggregate);
            }
        }
        total
    }

    pub fn unsupported(&self) -> usize {
        self.cohorts
            .iter()
            .filter(|c| matches!(c, CohortForecast::Unsupported { .. }))
            .count()
    }

    pub fn to_json(&self) -> String {
        let cohorts = json::array(
            self.specs
                .iter()
                .zip(self.cohorts.iter())
                .map(|(spec, c)| cohort_json(spec, c)),
        );
        Obj::new()
            .str("schema", PREDICT_SCHEMA)
            .str("scenario", &self.scenario)
            .u64("seed", self.seed)
            .str("fingerprint", &format!("{:016x}", self.fingerprint))
            .u64("unsupported", self.unsupported() as u64)
            .raw("fleet", report::aggregate_json(&self.fleet_aggregate()))
            .raw("cohorts", cohorts)
            .finish()
    }

    /// Long-format CSV, same `cohort,key,value` grammar as the fleet
    /// report. Unsupported cohorts carry a single `unsupported,1`
    /// marker row (the reason string lives in the JSON document).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cohort,key,value\n");
        report::aggregate_csv("_fleet", &self.fleet_aggregate(), &mut out);
        for (spec, c) in self.specs.iter().zip(self.cohorts.iter()) {
            match c {
                CohortForecast::Unsupported { .. } => {
                    out.push_str(&format!("{},unsupported,1\n", spec.name));
                }
                CohortForecast::Predicted { aggregate, .. } => {
                    report::aggregate_csv(&spec.name, aggregate, &mut out);
                }
            }
        }
        out
    }
}

fn cohort_json(spec: &crate::scenario::CohortSpec, c: &CohortForecast) -> String {
    let o = report::spec_fields(Obj::new(), spec);
    match c {
        CohortForecast::Unsupported { reason } => o.str("unsupported", reason).finish(),
        CohortForecast::Predicted { aggregate, model } => o
            .raw("results", report::aggregate_json(aggregate))
            .raw("model", model_json(model))
            .finish(),
    }
}

/// The analytic scalars behind a predicted aggregate — everything the
/// aggregate's synthesized devices were built from.
fn model_json(p: &Prediction) -> String {
    Obj::new()
        .f64("mean_time_s", p.mean_time_s)
        .f64("sigma_time_s", p.sigma_time_s)
        .f64("on_time_s", p.on_time_s)
        .f64("completion_probability", p.completion_probability)
        .f64("outages", p.outages)
        .f64("checkpoints", p.checkpoints)
        .f64("commits", p.commits)
        .f64("reexecuted_cycles", p.reexecuted_cycles)
        .f64("executed_cycles", p.executed_cycles)
        .f64("dead_cycle_fraction", p.dead_cycle_fraction)
        .f64("forward_progress", p.forward_progress)
        .f64("error_percent", p.error_percent)
        .bool("via_skim", p.via_skim)
        .finish()
}

/// One validation run: every comparison made and every band violated.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Validation {
    /// Comparisons performed (a gate that silently compared nothing
    /// would otherwise read as a pass).
    pub checks: usize,
    /// Human-readable band violations; empty means agreement.
    pub failures: Vec<String>,
}

impl Validation {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Cross-checks a predict report against a fleet report for the same
/// scenario, cohort by cohort, under the documented tolerance bands.
/// Unsupported cohorts are acknowledged (counted as a check) but carry
/// no numeric comparisons.
pub fn validate(predicted: &PredictReport, measured: &FleetReport) -> Validation {
    let mut v = Validation::default();
    if predicted.fingerprint != measured.fingerprint {
        v.failures.push(format!(
            "scenario fingerprints differ: predicted {:016x}, measured {:016x}",
            predicted.fingerprint, measured.fingerprint
        ));
        return v;
    }
    v.checks += 1;
    for ((spec, forecast), agg) in predicted
        .specs
        .iter()
        .zip(predicted.cohorts.iter())
        .zip(measured.cohorts.iter())
    {
        match forecast {
            CohortForecast::Unsupported { .. } => v.checks += 1,
            CohortForecast::Predicted {
                aggregate: pred, ..
            } => validate_cohort(&spec.name, pred, agg, &mut v),
        }
    }
    v
}

fn validate_cohort(name: &str, pred: &CohortAggregate, meas: &CohortAggregate, v: &mut Validation) {
    let mut check = |ok: bool, msg: String| {
        v.checks += 1;
        if !ok {
            v.failures.push(format!("{name}: {msg}"));
        }
    };

    check(
        pred.devices == meas.devices,
        format!(
            "device counts differ (predicted {}, measured {})",
            pred.devices, meas.devices
        ),
    );
    let (pr, mr) = (pred.completion_rate(), meas.completion_rate());
    check(
        (pr - mr).abs() <= COMPLETION_RATE_ATOL,
        format!("completion rate {pr:.3} vs {mr:.3} (band ±{COMPLETION_RATE_ATOL})"),
    );

    if pred.completed == 0 || meas.completed == 0 {
        // Fate-only agreement: nothing completed on one side, so there
        // are no time/counter distributions to compare — the rate check
        // above already caught any real disagreement.
        return;
    }

    if let (Some(p), Some(m)) = (pred.time.stats.mean(), meas.time.stats.mean()) {
        check(
            (p - m).abs() <= MEAN_TIME_RTOL * m.abs().max(1e-12),
            format!(
                "mean time {p:.4}s vs {m:.4}s (band ±{:.0}%)",
                MEAN_TIME_RTOL * 100.0
            ),
        );
    }
    for q in [0.25, 0.5, 0.75] {
        if let (Some(p), Some(m)) = (pred.time.sketch.quantile(q), meas.time.sketch.quantile(q)) {
            if p > 0.0 && m > 0.0 {
                let bands = (p / m).log10().abs() * crate::agg::FixedSketch::PER_DECADE as f64;
                check(
                    bands <= QUANTILE_BANDS,
                    format!(
                        "p{:.0} {p:.4}s vs {m:.4}s ({bands:.1} sketch bands apart, band {QUANTILE_BANDS})",
                        q * 100.0
                    ),
                );
            }
        }
    }
    for (key, p, m) in [
        (
            "outages",
            pred.outages.stats.mean(),
            meas.outages.stats.mean(),
        ),
        (
            "checkpoints",
            pred.checkpoints.stats.mean(),
            meas.checkpoints.stats.mean(),
        ),
        (
            "commits",
            pred.commits.stats.mean(),
            meas.commits.stats.mean(),
        ),
    ] {
        if let (Some(p), Some(m)) = (p, m) {
            let slack = (COUNT_RTOL * m.abs()).max(COUNT_ATOL);
            check(
                (p - m).abs() <= slack,
                format!("mean {key} {p:.1} vs {m:.1} (band ±{slack:.1})"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE_LIKE: &str = r#"
[fleet]
name = "predict-test"
seed = 11
shard_size = 64
wall_limit_s = 600.0
trace_duration_s = 20.0

[[cohort]]
count = 12
benchmark = "matadd"
technique = "precise"
environment = "rf-bursty"

[[cohort]]
count = 8
benchmark = "matadd"
technique = "anytime8"
substrate = "nvp"
environment = "solar"
day_s = 10.0
"#;

    #[test]
    fn predict_report_is_shaped_like_the_fleet_report() {
        let s = FleetScenario::parse(SMOKE_LIKE).unwrap();
        let r = predict_fleet(&s).unwrap();
        let doc = r.to_json();
        assert!(doc.contains(&format!("\"schema\":\"{PREDICT_SCHEMA}\"")));
        assert!(doc.contains("\"scenario\":\"predict-test\""));
        // The aggregate grammar matches the fleet report's exactly.
        for key in [
            "\"fleet\":{",
            "\"results\":{",
            "\"devices\":",
            "\"completion_rate\":",
            "\"time_s\":",
            "\"error_percent\":",
            "\"outages\":",
            "\"checkpoints\":",
            "\"commits\":",
            "\"time_hist\":",
            "\"model\":{",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
        assert!(!doc.contains("NaN") && !doc.contains("inf"), "{doc}");

        let csv = r.to_csv();
        assert_eq!(csv.lines().next(), Some("cohort,key,value"));
        for line in csv.lines().skip(1) {
            assert_eq!(line.matches(',').count(), 2, "bad row: {line}");
        }
        assert!(csv.contains("_fleet,devices,20"));
    }

    #[test]
    fn check_scenario_reports_provenance_without_running() {
        let s = FleetScenario::parse(SMOKE_LIKE).unwrap();
        let c = check_scenario(&s).unwrap();
        assert_eq!(c.name, "predict-test");
        assert_eq!(c.total_devices, 20);
        assert_eq!(c.cohorts, 2);
        assert_eq!(c.fingerprint, s.fingerprint());
    }

    /// Satellite 6: a cohort wn-analyze declines must surface in the
    /// report as `unsupported` with the reason — present in the JSON,
    /// marked in the CSV, never dropped from the cohort list.
    #[test]
    fn unsupported_cohorts_are_reported_not_skipped() {
        let s = FleetScenario::parse(SMOKE_LIKE).unwrap();
        // Telemetry makes every cohort unsupported (the analytic model
        // predicts aggregates, not event streams).
        wn_core::telemetry::set_enabled(true);
        let r = predict_fleet(&s);
        wn_core::telemetry::set_enabled(false);
        let r = r.unwrap();
        assert_eq!(r.cohorts.len(), 2);
        assert_eq!(r.unsupported(), 2);
        let doc = r.to_json();
        assert!(doc.contains("\"unsupported\":2"));
        assert!(doc.contains("telemetry"), "{doc}");
        // Cohort identity fields stay present for unsupported cohorts.
        assert!(doc.contains("\"benchmark\":\"matadd\""));
        let csv = r.to_csv();
        assert!(csv.contains(",unsupported,1"));
    }

    #[test]
    fn validation_agrees_with_itself_and_catches_drift() {
        let s = FleetScenario::parse(SMOKE_LIKE).unwrap();
        let p = predict_fleet(&s).unwrap();
        // A predict report validated against a fleet report built from
        // its own aggregates must pass (identity agreement).
        let fleet = FleetReport::new(
            &s,
            p.cohorts
                .iter()
                .map(|c| match c {
                    CohortForecast::Predicted { aggregate, .. } => (**aggregate).clone(),
                    CohortForecast::Unsupported { .. } => CohortAggregate::new(),
                })
                .collect(),
        );
        let v = validate(&p, &fleet);
        assert!(v.passed(), "self-validation failed: {:?}", v.failures);
        assert!(v.checks > 2);

        // Doubling every measured completion time must trip the gate.
        let mut drifted = fleet.clone();
        for c in &mut drifted.cohorts {
            let mut agg = CohortAggregate::new();
            agg.devices = c.devices;
            agg.completed = c.completed;
            for _ in 0..c.completed {
                agg.time.record(2.0 * c.time.stats.mean().unwrap_or(1.0));
                agg.outages.record(c.outages.stats.mean().unwrap_or(0.0));
                agg.checkpoints
                    .record(c.checkpoints.stats.mean().unwrap_or(0.0));
                agg.commits.record(c.commits.stats.mean().unwrap_or(0.0));
            }
            *c = agg;
        }
        let v = validate(&p, &drifted);
        assert!(!v.passed(), "2x time drift must fail validation");
    }

    #[test]
    fn fingerprint_mismatch_fails_validation_immediately() {
        let s = FleetScenario::parse(SMOKE_LIKE).unwrap();
        let p = predict_fleet(&s).unwrap();
        let mut other = s.clone();
        other.seed = 999;
        let fleet = FleetReport::new(&other, vec![CohortAggregate::new(); 2]);
        let v = validate(&p, &fleet);
        assert!(!v.passed());
        assert!(v.failures[0].contains("fingerprint"));
    }
}
