//! Mergeable streaming aggregates for fleet sweeps.
//!
//! A 100k-device run must never hold 100k `RunReport`s: every per-device
//! outcome is folded into constant-size accumulators the moment it comes
//! back from the job pool, and shard accumulators merge associatively so
//! a resumed sweep (or a future distributed one) reduces to the same
//! state. Three building blocks:
//!
//! * [`StreamStats`] — Welford/Chan running mean + variance with
//!   min/max, mergeable without the raw samples;
//! * [`FixedSketch`] — a fixed-bucket log-spaced quantile sketch
//!   (constant memory, exact-count merges, ~12 % relative value error
//!   at 20 buckets/decade) for completion-time / QoR / forward-progress
//!   quantiles;
//! * [`MetricAgg`] — the pair of them exposed as one named metric.
//!
//! All merges are deterministic: the fleet runner folds devices in
//! index order and shards in shard order, so any `--jobs` width (and a
//! checkpoint-resumed run) produces bit-identical aggregate state.

use wn_telemetry::json::Obj;

use crate::codec::{StateReader, StateWriter};

/// Running mean/variance/min/max over a stream, mergeable pairwise
/// (Chan et al.'s parallel variance update).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamStats {
    pub fn new() -> StreamStats {
        StreamStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample. Non-finite samples are ignored (they would
    /// poison every downstream mean).
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Fold another accumulator in (order matters only in float
    /// rounding; the fleet runner always merges in shard order).
    pub fn merge(&mut self, other: &StreamStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| (self.m2 / self.count as f64).max(0.0))
    }

    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    pub(crate) fn save(&self, w: &mut StateWriter) {
        w.u64(self.count);
        w.f64(self.mean);
        w.f64(self.m2);
        w.f64(self.min);
        w.f64(self.max);
    }

    pub(crate) fn load(r: &mut StateReader) -> Option<StreamStats> {
        Some(StreamStats {
            count: r.u64()?,
            mean: r.f64()?,
            m2: r.f64()?,
            min: r.f64()?,
            max: r.f64()?,
        })
    }
}

impl Default for StreamStats {
    fn default() -> Self {
        Self::new()
    }
}

/// Fixed-bucket log-spaced quantile sketch.
///
/// Non-negative values land in one of [`FixedSketch::BUCKETS`] buckets:
/// an underflow bucket below [`FixedSketch::LO`], then
/// [`FixedSketch::PER_DECADE`] log-spaced buckets per decade across
/// `[LO, HI)`, then an overflow bucket. Quantile queries walk the
/// cumulative counts and answer with the bucket's geometric midpoint,
/// clamped into the exact observed `[min, max]` — a constant-memory,
/// exactly-mergeable sketch whose relative value error is bounded by
/// the bucket width (`10^(1/20) ≈ 1.12`).
#[derive(Debug, Clone, PartialEq)]
pub struct FixedSketch {
    counts: Vec<u64>,
    stats: StreamStats,
}

impl FixedSketch {
    /// Smallest resolvable value (seconds / percent / ratio scales all
    /// fit comfortably above it).
    pub const LO: f64 = 1e-9;
    /// Largest resolvable value.
    pub const HI: f64 = 1e9;
    /// Log buckets per decade.
    pub const PER_DECADE: usize = 20;
    /// 18 decades between `LO` and `HI`, plus underflow and overflow.
    pub const BUCKETS: usize = 18 * Self::PER_DECADE + 2;

    pub fn new() -> FixedSketch {
        FixedSketch {
            counts: vec![0; Self::BUCKETS],
            stats: StreamStats::new(),
        }
    }

    fn bucket(x: f64) -> usize {
        if x < Self::LO {
            return 0;
        }
        if x >= Self::HI {
            return Self::BUCKETS - 1;
        }
        let pos = (x / Self::LO).log10() * Self::PER_DECADE as f64;
        // `x >= LO` makes pos non-negative; clamp against float edge
        // cases at the top boundary.
        1 + (pos as usize).min(Self::BUCKETS - 3)
    }

    /// Record one value. Negative and non-finite values are ignored
    /// (every fleet metric is non-negative by construction).
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() || x < 0.0 {
            return;
        }
        self.counts[Self::bucket(x)] += 1;
        self.stats.record(x);
    }

    pub fn merge(&mut self, other: &FixedSketch) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.stats.merge(&other.stats);
    }

    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// The value at quantile `q ∈ [0, 1]`, or `None` on an empty
    /// sketch. `q = 0` is the exact min, `q = 1` the exact max.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let (min, max) = (self.stats.min()?, self.stats.max()?);
        // The extremes are tracked exactly; don't answer them with a
        // bucket midpoint.
        if q == 0.0 {
            return Some(min);
        }
        if q == 1.0 {
            return Some(max);
        }
        // Nearest-rank on the cumulative bucket counts.
        let rank = ((q * (n - 1) as f64).round() as u64).min(n - 1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen > rank {
                let mid = if i == 0 {
                    min
                } else if i == Self::BUCKETS - 1 {
                    max
                } else {
                    // Geometric midpoint of the bucket's edges.
                    let lo = Self::LO * 10f64.powf((i - 1) as f64 / Self::PER_DECADE as f64);
                    lo * 10f64.powf(0.5 / Self::PER_DECADE as f64)
                };
                return Some(mid.clamp(min, max));
            }
        }
        Some(max)
    }

    /// The value range covered by bucket `i ∈ [0, BUCKETS)`, as a
    /// half-open interval `[lo, hi)`. The underflow bucket covers
    /// `[0, LO)`, the overflow bucket `[HI, ∞)`.
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        assert!(i < Self::BUCKETS, "bucket {i} out of range");
        if i == 0 {
            return (0.0, Self::LO);
        }
        if i == Self::BUCKETS - 1 {
            return (Self::HI, f64::INFINITY);
        }
        let lo = Self::LO * 10f64.powf((i - 1) as f64 / Self::PER_DECADE as f64);
        let hi = Self::LO * 10f64.powf(i as f64 / Self::PER_DECADE as f64);
        (lo, hi)
    }

    /// Read-only view of the per-bucket counts (length
    /// [`FixedSketch::BUCKETS`], aligned with [`FixedSketch::bucket_bounds`]).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Cumulative counts: `cumulative()[i]` is the number of recorded
    /// values in buckets `0..=i`; the last entry equals
    /// [`FixedSketch::count`].
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Empirical CDF at `x`: the fraction of recorded values in buckets
    /// entirely at or below `x` (bucket-resolution, so exact at bucket
    /// boundaries and conservative inside a bucket). `None` on an
    /// empty sketch.
    pub fn cdf_at(&self, x: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 || !x.is_finite() {
            return None;
        }
        if x < 0.0 {
            return Some(0.0);
        }
        let mut covered = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let (_, hi) = Self::bucket_bounds(i);
            if hi <= x {
                covered += c;
            } else {
                break;
            }
        }
        Some(covered as f64 / n as f64)
    }

    pub(crate) fn save(&self, w: &mut StateWriter) {
        self.stats.save(w);
        // Sparse: most buckets are empty for clustered metrics.
        let nonzero: Vec<(usize, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect();
        w.u64(nonzero.len() as u64);
        for (i, c) in nonzero {
            w.u64(i as u64);
            w.u64(c);
        }
    }

    pub(crate) fn load(r: &mut StateReader) -> Option<FixedSketch> {
        let stats = StreamStats::load(r)?;
        let mut counts = vec![0u64; Self::BUCKETS];
        let pairs = r.u64()?;
        for _ in 0..pairs {
            let i = r.u64()? as usize;
            let c = r.u64()?;
            *counts.get_mut(i)? = c;
        }
        Some(FixedSketch { counts, stats })
    }
}

impl Default for FixedSketch {
    fn default() -> Self {
        Self::new()
    }
}

/// One named fleet metric: streaming moments plus quantile sketch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricAgg {
    pub stats: StreamStats,
    pub sketch: FixedSketch,
}

impl MetricAgg {
    pub fn new() -> MetricAgg {
        MetricAgg::default()
    }

    pub fn record(&mut self, x: f64) {
        // One validity gate for both halves: fleet metrics are
        // non-negative by construction, and the sketch cannot bucket a
        // negative or non-finite value anyway. Gating here (rather than
        // letting each half apply its own filter) keeps
        // `stats.count() == sketch.count()` as an invariant, so the
        // moments and the quantiles always describe the same sample.
        if !x.is_finite() || x < 0.0 {
            return;
        }
        self.stats.record(x);
        self.sketch.record(x);
    }

    pub fn merge(&mut self, other: &MetricAgg) {
        self.stats.merge(&other.stats);
        self.sketch.merge(&other.sketch);
    }

    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Flat JSON object: count, mean, std, min, max, p50/p90/p99.
    pub fn to_json(&self) -> String {
        Obj::new()
            .u64("count", self.stats.count())
            .f64("mean", self.stats.mean().unwrap_or(f64::NAN))
            .f64("std", self.stats.std_dev().unwrap_or(f64::NAN))
            .f64("min", self.stats.min().unwrap_or(f64::NAN))
            .f64("max", self.stats.max().unwrap_or(f64::NAN))
            .f64("p50", self.sketch.quantile(0.50).unwrap_or(f64::NAN))
            .f64("p90", self.sketch.quantile(0.90).unwrap_or(f64::NAN))
            .f64("p99", self.sketch.quantile(0.99).unwrap_or(f64::NAN))
            .finish()
    }

    /// `key,value` CSV rows under a metric prefix (empty metrics emit
    /// only their count row, keeping the column set stable).
    pub fn csv_rows(&self, prefix: &str, out: &mut String) {
        let mut push = |suffix: &str, v: String| {
            out.push_str(prefix);
            out.push('.');
            out.push_str(suffix);
            out.push(',');
            out.push_str(&v);
            out.push('\n');
        };
        push("count", self.stats.count().to_string());
        if let (Some(mean), Some(min), Some(max)) =
            (self.stats.mean(), self.stats.min(), self.stats.max())
        {
            push("mean", format!("{mean}"));
            push("min", format!("{min}"));
            push("max", format!("{max}"));
            for (name, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                if let Some(v) = self.sketch.quantile(q) {
                    push(name, format!("{v}"));
                }
            }
        }
    }

    pub(crate) fn save(&self, w: &mut StateWriter) {
        self.stats.save(w);
        self.sketch.save(w);
    }

    pub(crate) fn load(r: &mut StateReader) -> Option<MetricAgg> {
        Some(MetricAgg {
            stats: StreamStats::load(r)?,
            sketch: FixedSketch::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_moments() {
        let xs = [3.0, 1.5, 4.25, 1.125, 5.5, 9.0, 2.625];
        let mut s = StreamStats::new();
        for &x in &xs {
            s.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        assert_eq!(s.count(), xs.len() as u64);
        assert!((s.mean().unwrap() - mean).abs() < 1e-12);
        assert!((s.variance().unwrap() - var).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.125));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn merged_stats_match_single_stream() {
        let xs: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.7).sin().abs() * 10.0)
            .collect();
        let mut whole = StreamStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = StreamStats::new();
        let mut b = StreamStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-12);
        assert!((a.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn nonfinite_samples_are_ignored() {
        let mut s = StreamStats::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        let mut q = FixedSketch::new();
        q.record(f64::NAN);
        q.record(-1.0);
        assert_eq!(q.count(), 0);
        assert_eq!(q.quantile(0.5), None);
    }

    #[test]
    fn sketch_quantiles_bound_relative_error() {
        let mut s = FixedSketch::new();
        let xs: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-3).collect();
        for &x in &xs {
            s.record(x);
        }
        for (q, exact) in [(0.5, 0.5), (0.9, 0.9), (0.99, 0.99)] {
            let got = s.quantile(q).unwrap();
            assert!(
                (got / exact).log10().abs() <= 1.0 / FixedSketch::PER_DECADE as f64,
                "q{q}: got {got} vs {exact}"
            );
        }
        // Extremes are exact.
        assert_eq!(s.quantile(0.0), Some(1e-3));
        assert_eq!(s.quantile(1.0), Some(1.0));
    }

    #[test]
    fn sketch_merge_equals_single_pass_exactly() {
        // Bucket counts are integers, so the merged sketch is *exactly*
        // the single-pass sketch (not just approximately).
        let xs: Vec<f64> = (0..500).map(|i| ((i * 37) % 997) as f64 * 1e-2).collect();
        let mut whole = FixedSketch::new();
        let mut parts: Vec<FixedSketch> = (0..5).map(|_| FixedSketch::new()).collect();
        for (i, &x) in xs.iter().enumerate() {
            whole.record(x);
            parts[i / 100].record(x);
        }
        let mut merged = FixedSketch::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged.counts, whole.counts);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), whole.quantile(q), "q = {q}");
        }
    }

    #[test]
    fn underflow_and_overflow_answer_with_exact_extremes() {
        let mut s = FixedSketch::new();
        s.record(1e-12);
        s.record(1e12);
        assert_eq!(s.quantile(0.0), Some(1e-12));
        assert_eq!(s.quantile(1.0), Some(1e12));
    }

    #[test]
    fn bucket_bounds_tile_the_range_and_match_bucketing() {
        // Bounds are contiguous half-open intervals.
        for i in 0..FixedSketch::BUCKETS - 1 {
            let (_, hi) = FixedSketch::bucket_bounds(i);
            let (lo_next, _) = FixedSketch::bucket_bounds(i + 1);
            assert!(
                (hi - lo_next).abs() <= 1e-12 * hi.abs().max(1.0),
                "bucket {i} upper bound {hi} != bucket {} lower bound {lo_next}",
                i + 1
            );
        }
        // A value recorded into the sketch lands in the bucket whose
        // bounds contain it.
        let mut s = FixedSketch::new();
        for &x in &[1e-10, 2.5e-3, 1.0, 7.7, 3.4e8, 5e9] {
            s.record(x);
        }
        for (i, &c) in s.bucket_counts().iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (lo, hi) = FixedSketch::bucket_bounds(i);
            assert!(
                [1e-10, 2.5e-3, 1.0, 7.7, 3.4e8, 5e9]
                    .iter()
                    .any(|&x| (lo..hi).contains(&x) || (i == 0 && x < FixedSketch::LO)),
                "bucket {i} [{lo}, {hi}) holds a count but no recorded value"
            );
        }
    }

    #[test]
    fn cumulative_counts_and_cdf_are_consistent() {
        let mut s = FixedSketch::new();
        let xs = [0.001, 0.01, 0.1, 1.0, 10.0, 100.0];
        for &x in &xs {
            s.record(x);
        }
        let cum = s.cumulative();
        assert_eq!(cum.len(), FixedSketch::BUCKETS);
        assert_eq!(*cum.last().unwrap(), xs.len() as u64);
        assert!(cum.windows(2).all(|w| w[0] <= w[1]), "monotone");
        // CDF at a decade boundary counts everything strictly below it.
        assert_eq!(s.cdf_at(1.0), Some(3.0 / 6.0));
        assert_eq!(s.cdf_at(1e6), Some(1.0));
        assert_eq!(s.cdf_at(1e-6), Some(0.0));
        assert_eq!(FixedSketch::new().cdf_at(1.0), None);
        // The CDF never decreases.
        let mut prev = 0.0;
        for exp in -5..6 {
            let c = s.cdf_at(10f64.powi(exp)).unwrap();
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn metric_state_round_trips_bit_exactly() {
        let mut m = MetricAgg::new();
        for i in 0..200 {
            m.record((i as f64 * 0.137).fract() * 3.5 + 1e-4);
        }
        let mut w = StateWriter::new();
        m.save(&mut w);
        let mut r = StateReader::new(w.as_str());
        let back = MetricAgg::load(&mut r).unwrap();
        assert_eq!(back, m, "state codec must be lossless");
        assert!(r.is_empty());
    }

    #[test]
    fn empty_metric_serializes_without_poison() {
        let m = MetricAgg::new();
        let doc = m.to_json();
        assert!(doc.contains("\"count\":0"));
        assert!(doc.contains("\"mean\":null"));
        for poison in ["NaN", "inf"] {
            assert!(!doc.contains(poison), "{doc}");
        }
        let mut csv = String::new();
        m.csv_rows("x", &mut csv);
        assert_eq!(csv, "x.count,0\n");
    }

    #[test]
    fn metric_rejects_invalid_samples_in_both_halves() {
        let mut m = MetricAgg::new();
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.25, -1e300] {
            m.record(x);
        }
        assert_eq!(m.stats.count(), 0, "stats must not count invalid samples");
        assert_eq!(m.sketch.count(), 0, "sketch must not count invalid samples");
        m.record(0.0);
        m.record(1.5);
        m.record(f64::NAN);
        m.record(-0.5);
        assert_eq!(m.stats.count(), 2);
        assert_eq!(
            m.stats.count(),
            m.sketch.count(),
            "moments and quantiles must describe the same sample"
        );
    }
}
