//! Shard-merge correctness: folding a device stream shard by shard and
//! merging the shard aggregates gives the same answer as one
//! single-shard fold — counters and sketch buckets exactly, floating
//! moments to parallel-summation tolerance. Plus the stronger
//! end-to-end fact the runner is built on: because devices fold
//! sequentially in index order across shard boundaries, the *shard
//! size itself* cannot change the aggregate at all.

use proptest::prelude::*;

use wn_fleet::runner::{CohortAggregate, DeviceFate, DeviceOutcome};
use wn_fleet::{run_fleet, FleetOptions, FleetScenario};

fn outcome(device: u64, fate: DeviceFate, x: f64) -> DeviceOutcome {
    DeviceOutcome {
        device,
        cohort: 0,
        fate,
        skimmed: matches!(fate, DeviceFate::Completed) && device.is_multiple_of(3),
        time_s: x,
        on_time_s: x * 0.25,
        error_percent: (x * 7.3).fract() * 12.0,
        outages: (x * 100.0) as u64 % 40,
        checkpoints: (x * 130.0) as u64 % 90,
        commits: (x * 50.0) as u64 % 25,
        // Every 5th device carries an out-of-range progress value (the
        // runner clamps at the source, but the aggregate must stay
        // internally consistent even on hostile inputs).
        forward_progress: if device.is_multiple_of(5) {
            0.5 - x
        } else {
            1.0 / (1.0 + x)
        },
    }
}

fn any_outcomes() -> impl Strategy<Value = Vec<DeviceOutcome>> {
    proptest::collection::vec((0u8..3, 1e-4f64..1e3), 1..200).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (fate, x))| {
                let fate = match fate {
                    0 => DeviceFate::Completed,
                    1 => DeviceFate::Starved,
                    _ => DeviceFate::TimedOut,
                };
                outcome(i as u64, fate, x)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merged shard aggregates equal the single-shard aggregate.
    #[test]
    fn merged_shards_equal_single_shard(
        outcomes in any_outcomes(),
        shard in 1usize..50,
    ) {
        let mut whole = CohortAggregate::new();
        for d in &outcomes {
            whole.record(d);
        }
        let mut merged = CohortAggregate::new();
        for chunk in outcomes.chunks(shard) {
            let mut part = CohortAggregate::new();
            for d in chunk {
                part.record(d);
            }
            merged.merge(&part);
        }
        // Counters and bucket counts are integers: exact.
        prop_assert_eq!(merged.devices, whole.devices);
        prop_assert_eq!(merged.completed, whole.completed);
        prop_assert_eq!(merged.skimmed, whole.skimmed);
        prop_assert_eq!(merged.starved, whole.starved);
        prop_assert_eq!(merged.timed_out, whole.timed_out);
        // Sketch buckets are integer counts, so every quantile answer
        // is exactly equal (q = 0/1 use the exactly-tracked extremes).
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            prop_assert_eq!(
                merged.time.sketch.quantile(q),
                whole.time.sketch.quantile(q),
                "q = {}",
                q
            );
        }
        prop_assert_eq!(merged.time_hist.counts(), whole.time_hist.counts());
        // Extremes are exact; moments agree to parallel-sum tolerance.
        prop_assert_eq!(merged.time.stats.min(), whole.time.stats.min());
        prop_assert_eq!(merged.time.stats.max(), whole.time.stats.max());
        for (m, w) in [
            (&merged.time, &whole.time),
            (&merged.qor, &whole.qor),
            (&merged.progress, &whole.progress),
            (&merged.outages, &whole.outages),
        ] {
            prop_assert_eq!(m.count(), w.count());
            // Moments and quantiles must always describe the same
            // sample — even when the stream contains invalid values
            // (negative progress), which both halves reject together.
            prop_assert_eq!(m.stats.count(), m.sketch.count());
            prop_assert_eq!(w.stats.count(), w.sketch.count());
            if let (Some(a), Some(b)) = (m.stats.mean(), w.stats.mean()) {
                prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0));
            }
            if let (Some(a), Some(b)) = (m.stats.variance(), w.stats.variance()) {
                prop_assert!((a - b).abs() <= 1e-6 * b.abs().max(1.0));
            }
        }
    }
}

/// End to end: the shard size is a memory knob, not a result knob. The
/// runner folds devices in index order whatever the shard boundaries,
/// so cohort aggregates are *bit-identical* across shard sizes.
#[test]
fn shard_size_never_changes_results() {
    let scenario_text = |shard: usize| {
        format!(
            r#"
[fleet]
name = "shardless"
seed = 21
shard_size = {shard}
wall_limit_s = 600.0
trace_duration_s = 20.0

[[cohort]]
count = 13
benchmark = "matadd"
technique = "anytime8"
environment = "rf-bursty"

[[cohort]]
count = 8
benchmark = "home"
technique = "precise"
substrate = "nvp"
environment = "piezo"
impulse_uw = 2000.0
gap_ms = 40.0
"#
        )
    };
    let mut reports = Vec::new();
    for shard in [4, 13, 64] {
        let s = FleetScenario::parse(&scenario_text(shard)).unwrap();
        let r = run_fleet(&s, &FleetOptions::default())
            .unwrap()
            .report()
            .unwrap();
        reports.push(r);
    }
    assert_eq!(reports[0].cohorts, reports[1].cohorts);
    assert_eq!(reports[1].cohorts, reports[2].cohorts);
    assert_eq!(reports[0].fleet_aggregate(), reports[2].fleet_aggregate());
}
