//! Cross-engine equivalence: the lockstep (batched) engine must render
//! fleet reports **byte-identical** to the scalar engine — on the CI
//! smoke scenario at several worker widths, and property-tested across
//! seeds, substrates, and chunk widths on generated mini-fleets.

use proptest::prelude::*;

use wn_fleet::{run_fleet, FleetEngine, FleetOptions, FleetScenario};

fn smoke_scenario() -> FleetScenario {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/fleet_smoke.toml"
    );
    FleetScenario::parse(&std::fs::read_to_string(path).unwrap()).unwrap()
}

fn render(scenario: &FleetScenario, engine: FleetEngine, jobs: usize) -> (String, String) {
    let report = run_fleet(
        scenario,
        &FleetOptions {
            jobs: Some(jobs),
            engine,
            ..Default::default()
        },
    )
    .unwrap()
    .report()
    .unwrap();
    (report.to_json(), report.to_csv())
}

/// The acceptance check from the issue: `fleet_smoke` renders the same
/// JSON and CSV bytes on both engines, at `--jobs 1` and `--jobs 4`.
#[test]
fn smoke_reports_are_byte_identical_across_engines_and_jobs() {
    let s = smoke_scenario();
    let baseline = render(&s, FleetEngine::Scalar, 1);
    for jobs in [1, 4] {
        let scalar = render(&s, FleetEngine::Scalar, jobs);
        let batched = render(&s, FleetEngine::default(), jobs);
        assert_eq!(baseline, scalar, "scalar must be jobs-invariant");
        assert_eq!(scalar.0, batched.0, "JSON reports diverged at jobs={jobs}");
        assert_eq!(scalar.1, batched.1, "CSV reports diverged at jobs={jobs}");
    }
}

fn mini_scenario(seed: u64, substrate: &str, benchmark: &str, count: u32) -> FleetScenario {
    FleetScenario::parse(&format!(
        r#"
[fleet]
name = "mini"
seed = {seed}
shard_size = 8
wall_limit_s = 600.0
trace_duration_s = 20.0

[[cohort]]
count = {count}
benchmark = "{benchmark}"
technique = "anytime8"
substrate = "{substrate}"
environment = "rf-bursty"
"#
    ))
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Batched ≡ scalar on generated fleets: any seed, both
    /// substrates, chunk widths 1 / 4 / 33 (sub-shard, mid, and
    /// beyond-shard chunking).
    #[test]
    fn generated_fleets_agree_across_engines(
        seed in 0u64..1000,
        clank in 0u8..2,
        matadd in 0u8..2,
        count in 3u32..20,
    ) {
        let s = mini_scenario(
            seed,
            if clank == 1 { "clank" } else { "nvp" },
            if matadd == 1 { "matadd" } else { "home" },
            count,
        );
        let scalar = render(&s, FleetEngine::Scalar, 1);
        for chunk in [1usize, 4, 33] {
            let batched = render(&s, FleetEngine::Batched { chunk }, 1);
            prop_assert_eq!(&scalar, &batched, "chunk {}", chunk);
        }
    }
}
