//! End-to-end tests of the `wnasm` CLI: build → disasm → rebuild
//! roundtrips through real files, plus the error surfaces a user hits.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn wnasm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wnasm"))
        .args(args)
        .output()
        .expect("spawn wnasm")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wnasm-cli-{tag}-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

const PROGRAM: &str = "\
; a small kernel with data, labels and WN instructions
.data
X: .space 16
.text
start:
MOV r0, #3
MOV r1, #0
loop:
MUL_ASP8 r2, r0, r0, #8
ADD_ASV8 r1, r1, r2
SKM done
SUB r0, r0, #1
CMP r0, #0
BNE loop
done:
STR r1, [r0]
HALT
";

#[test]
fn build_disasm_rebuild_roundtrip() {
    let dir = tmpdir("roundtrip");
    let src = dir.join("p.s");
    let bin = dir.join("p.wnb");
    fs::write(&src, PROGRAM).unwrap();

    let out = wnasm(&["build", src.to_str().unwrap(), "-o", bin.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "build failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(bin.exists());
    let image = fs::read(&bin).unwrap();
    assert_eq!(image.len() % 8, 0, "packed 8-byte words");

    let out = wnasm(&["disasm", bin.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "disasm failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("MUL_ASP8"), "{text}");
    assert!(text.contains("ADD_ASV8"), "{text}");

    // The disassembly reassembles to the same binary image.
    let src2 = dir.join("p2.s");
    let bin2 = dir.join("p2.wnb");
    fs::write(&src2, &text).unwrap();
    let out = wnasm(&[
        "build",
        src2.to_str().unwrap(),
        "-o",
        bin2.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "rebuild failed: {}\n---\n{text}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(fs::read(&bin2).unwrap(), image, "rebuilt image differs");
}

#[test]
fn check_prints_section_stats() {
    let dir = tmpdir("check");
    let src = dir.join("p.s");
    fs::write(&src, PROGRAM).unwrap();
    let out = wnasm(&["check", src.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("instructions"), "{text}");
}

#[test]
fn syntax_error_names_the_line_and_fails() {
    let dir = tmpdir("err");
    let src = dir.join("bad.s");
    fs::write(&src, "MOV r0, #1\nFROB r1, r2\nHALT\n").unwrap();
    let out = wnasm(&["check", src.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains('2'), "error should name line 2: {err}");
}

#[test]
fn missing_file_fails_cleanly() {
    let out = wnasm(&["build", "/nonexistent/nope.s", "-o", "/tmp/x.wnb"]);
    assert!(!out.status.success());
    assert!(!String::from_utf8_lossy(&out.stderr).is_empty());
}

#[test]
fn unknown_subcommand_prints_usage() {
    let out = wnasm(&["frobnicate", "x.s"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "{err}");
}
