//! Program-level assembler/disassembler fuzzing: any program built from
//! valid instructions must disassemble to text that reassembles to the
//! identical instruction stream, with branch targets preserved.
//!
//! This complements the per-instruction `encode`/`decode` roundtrip in
//! `wn_isa::encode`: here the textual surface (mnemonics, operand
//! syntax, label synthesis) is the thing under test.

use proptest::prelude::*;

use wn_isa::asm::assemble;
use wn_isa::{Cond, Instr, LaneWidth, Program, Reg};

fn any_reg() -> impl Strategy<Value = Reg> {
    (0usize..16).prop_map(|i| Reg::from_index(i).unwrap())
}

fn any_cond() -> impl Strategy<Value = Cond> {
    (0u8..14).prop_map(|i| Cond::from_index(i).unwrap())
}

fn any_lanes() -> impl Strategy<Value = LaneWidth> {
    prop_oneof![
        Just(LaneWidth::W4),
        Just(LaneWidth::W8),
        Just(LaneWidth::W16)
    ]
}

/// Immediates within the assembler's printable/parsable range.
fn any_imm() -> impl Strategy<Value = i32> {
    -0x8000i32..0x8000
}

/// Aligned word offsets for memory operands.
fn any_off() -> impl Strategy<Value = i32> {
    (-64i32..64).prop_map(|w| w * 4)
}

/// One non-control-flow instruction (branch targets are patched in
/// afterwards so they stay within the program).
fn r3() -> impl Strategy<Value = (Reg, Reg, Reg)> {
    (any_reg(), any_reg(), any_reg())
}

fn any_straightline() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (any_reg(), any_imm()).prop_map(|(rd, imm)| Instr::MovImm { rd, imm }),
        (any_reg(), any_reg()).prop_map(|(rd, rm)| Instr::Mov { rd, rm }),
        (any_reg(), any_reg()).prop_map(|(rd, rm)| Instr::Mvn { rd, rm }),
        r3().prop_map(|(rd, rn, rm)| Instr::Add { rd, rn, rm }),
        (any_reg(), any_reg(), any_imm()).prop_map(|(rd, rn, imm)| Instr::AddImm { rd, rn, imm }),
        r3().prop_map(|(rd, rn, rm)| Instr::Sub { rd, rn, rm }),
        (any_reg(), any_reg(), any_imm()).prop_map(|(rd, rn, imm)| Instr::SubImm { rd, rn, imm }),
        (any_reg(), any_reg()).prop_map(|(rd, rn)| Instr::Rsb { rd, rn }),
        r3().prop_map(|(rd, rn, rm)| Instr::Mul { rd, rn, rm }),
        (r3(), 1u8..=16)
            .prop_flat_map(|((rd, rn, rm), bits)| { (Just((rd, rn, rm, bits)), 0u8..=(32 - bits)) })
            .prop_map(|((rd, rn, rm, bits), shift)| Instr::MulAsp {
                rd,
                rn,
                rm,
                bits,
                shift
            }),
        (r3(), any_lanes()).prop_map(|((rd, rn, rm), lanes)| Instr::AddAsv { rd, rn, rm, lanes }),
        (r3(), any_lanes()).prop_map(|((rd, rn, rm), lanes)| Instr::SubAsv { rd, rn, rm, lanes }),
        r3().prop_map(|(rd, rn, rm)| Instr::And { rd, rn, rm }),
        r3().prop_map(|(rd, rn, rm)| Instr::Orr { rd, rn, rm }),
        r3().prop_map(|(rd, rn, rm)| Instr::Eor { rd, rn, rm }),
        r3().prop_map(|(rd, rn, rm)| Instr::Bic { rd, rn, rm }),
        (any_reg(), any_reg(), any_imm()).prop_map(|(rd, rn, imm)| Instr::AndImm { rd, rn, imm }),
        (any_reg(), any_reg(), 0u8..32).prop_map(|(rd, rn, sh)| Instr::LslImm { rd, rn, sh }),
        (any_reg(), any_reg(), 0u8..32).prop_map(|(rd, rn, sh)| Instr::LsrImm { rd, rn, sh }),
        (any_reg(), any_reg(), 0u8..32).prop_map(|(rd, rn, sh)| Instr::AsrImm { rd, rn, sh }),
        r3().prop_map(|(rd, rn, rm)| Instr::LslReg { rd, rn, rm }),
        r3().prop_map(|(rd, rn, rm)| Instr::LsrReg { rd, rn, rm }),
        r3().prop_map(|(rd, rn, rm)| Instr::AsrReg { rd, rn, rm }),
        (any_reg(), any_reg()).prop_map(|(rn, rm)| Instr::Cmp { rn, rm }),
        (any_reg(), any_imm()).prop_map(|(rn, imm)| Instr::CmpImm { rn, imm }),
        (any_reg(), any_reg()).prop_map(|(rn, rm)| Instr::Tst { rn, rm }),
        (any_reg(), any_reg(), any_off()).prop_map(|(rt, rn, off)| Instr::Ldr { rt, rn, off }),
        r3().prop_map(|(rt, rn, rm)| Instr::LdrReg { rt, rn, rm }),
        (any_reg(), any_reg(), any_off()).prop_map(|(rt, rn, off)| Instr::Ldrh { rt, rn, off }),
        r3().prop_map(|(rt, rn, rm)| Instr::LdrhReg { rt, rn, rm }),
        r3().prop_map(|(rt, rn, rm)| Instr::LdrshReg { rt, rn, rm }),
        (any_reg(), any_reg(), any_off()).prop_map(|(rt, rn, off)| Instr::Ldrb { rt, rn, off }),
        r3().prop_map(|(rt, rn, rm)| Instr::LdrbReg { rt, rn, rm }),
        (any_reg(), any_reg(), any_off()).prop_map(|(rt, rn, off)| Instr::Str { rt, rn, off }),
        r3().prop_map(|(rt, rn, rm)| Instr::StrReg { rt, rn, rm }),
        (any_reg(), any_reg(), any_off()).prop_map(|(rt, rn, off)| Instr::Strh { rt, rn, off }),
        r3().prop_map(|(rt, rn, rm)| Instr::StrhReg { rt, rn, rm }),
        (any_reg(), any_reg(), any_off()).prop_map(|(rt, rn, off)| Instr::Strb { rt, rn, off }),
        r3().prop_map(|(rt, rn, rm)| Instr::StrbReg { rt, rn, rm }),
        Just(Instr::Nop),
    ]
}

/// A control-flow instruction whose target is a fraction of the final
/// program length (resolved once the length is known).
#[derive(Debug, Clone, Copy)]
enum Flow {
    B(f64),
    BCond(Cond, f64),
    Bl(f64),
    Skm(f64),
}

fn any_flow() -> impl Strategy<Value = Flow> {
    prop_oneof![
        (0.0f64..1.0).prop_map(Flow::B),
        (any_cond(), 0.0f64..1.0).prop_map(|(c, f)| Flow::BCond(c, f)),
        (0.0f64..1.0).prop_map(Flow::Bl),
        (0.0f64..1.0).prop_map(Flow::Skm),
    ]
}

/// Interleaves straight-line instructions with resolved control flow and
/// terminates with HALT.
fn build_program(straight: Vec<Instr>, flows: Vec<(usize, Flow)>) -> Program {
    let mut instrs = straight;
    let len_with_flow = instrs.len() + flows.len() + 1;
    for (slot, flow) in flows {
        let target = |f: f64| ((f * len_with_flow as f64) as u32).min(len_with_flow as u32 - 1);
        let instr = match flow {
            Flow::B(f) => Instr::B { target: target(f) },
            Flow::BCond(cond, f) => Instr::BCond {
                cond,
                target: target(f),
            },
            Flow::Bl(f) => Instr::Bl { target: target(f) },
            Flow::Skm(f) => Instr::Skm { target: target(f) },
        };
        instrs.insert(slot % (instrs.len() + 1), instr);
    }
    instrs.push(Instr::Halt);
    let mut p = Program::new();
    p.instrs = instrs;
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// disassemble ∘ assemble is the identity on the instruction stream.
    #[test]
    fn disassemble_assemble_roundtrip(
        straight in proptest::collection::vec(any_straightline(), 1..40),
        flows in proptest::collection::vec((any::<usize>(), any_flow()), 0..8),
    ) {
        let program = build_program(straight, flows);
        program.validate().expect("generated program must be valid");
        let text = program.disassemble();
        let reassembled = assemble(&text)
            .unwrap_or_else(|e| panic!("reassembly failed: {e}\n---\n{text}"));
        prop_assert_eq!(&reassembled.instrs, &program.instrs, "\n---\n{}", text);
        prop_assert_eq!(reassembled.entry, program.entry);
    }

    /// Disassembly text is stable: a second roundtrip prints the same text.
    #[test]
    fn disassembly_is_a_fixed_point(
        straight in proptest::collection::vec(any_straightline(), 1..24),
        flows in proptest::collection::vec((any::<usize>(), any_flow()), 0..6),
    ) {
        let program = build_program(straight, flows);
        let text = program.disassemble();
        let again = assemble(&text).unwrap().disassemble();
        prop_assert_eq!(text, again);
    }
}
