//! Architectural registers of WN-RISC.

use std::fmt;
use std::str::FromStr;

/// One of the sixteen 32-bit architectural registers.
///
/// `R0`–`R12` are general purpose. Following ARM convention, `R13` is the
/// stack pointer ([`Reg::SP`]), `R14` the link register ([`Reg::LR`]) and
/// `R15` the program counter ([`Reg::PC`]).
///
/// ```
/// use wn_isa::Reg;
/// assert_eq!(Reg::SP.index(), 13);
/// assert_eq!("r7".parse::<Reg>()?, Reg::R7);
/// # Ok::<(), wn_isa::reg::ParseRegError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    R0 = 0,
    R1 = 1,
    R2 = 2,
    R3 = 3,
    R4 = 4,
    R5 = 5,
    R6 = 6,
    R7 = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    /// Stack pointer (`R13`).
    SP = 13,
    /// Link register (`R14`).
    LR = 14,
    /// Program counter (`R15`).
    PC = 15,
}

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::SP,
        Reg::LR,
        Reg::PC,
    ];

    /// Returns the register's index in the register file (0–15).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Builds a register from an index.
    ///
    /// Returns `None` if `index > 15`.
    ///
    /// ```
    /// use wn_isa::Reg;
    /// assert_eq!(Reg::from_index(15), Some(Reg::PC));
    /// assert_eq!(Reg::from_index(16), None);
    /// ```
    pub const fn from_index(index: usize) -> Option<Reg> {
        if index < 16 {
            Some(Reg::ALL[index])
        } else {
            None
        }
    }

    /// True for the general-purpose registers `R0`–`R12`.
    pub const fn is_general_purpose(self) -> bool {
        (self as u8) <= 12
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::SP => write!(f, "sp"),
            Reg::LR => write!(f, "lr"),
            Reg::PC => write!(f, "pc"),
            other => write!(f, "r{}", other.index()),
        }
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    text: String,
}

impl ParseRegError {
    /// The text that failed to parse.
    pub fn text(&self) -> &str {
        &self.text
    }
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.text)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "sp" | "r13" => return Ok(Reg::SP),
            "lr" | "r14" => return Ok(Reg::LR),
            "pc" | "r15" => return Ok(Reg::PC),
            _ => {}
        }
        let rest = lower.strip_prefix('r').ok_or_else(|| ParseRegError {
            text: s.to_string(),
        })?;
        let index: usize = rest.parse().map_err(|_| ParseRegError {
            text: s.to_string(),
        })?;
        Reg::from_index(index).ok_or_else(|| ParseRegError {
            text: s.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, reg) in Reg::ALL.iter().enumerate() {
            assert_eq!(reg.index(), i);
            assert_eq!(Reg::from_index(i), Some(*reg));
        }
    }

    #[test]
    fn from_index_out_of_range() {
        assert_eq!(Reg::from_index(16), None);
        assert_eq!(Reg::from_index(usize::MAX), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::R12.to_string(), "r12");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::LR.to_string(), "lr");
        assert_eq!(Reg::PC.to_string(), "pc");
    }

    #[test]
    fn parse_aliases() {
        assert_eq!("R13".parse::<Reg>().unwrap(), Reg::SP);
        assert_eq!("sp".parse::<Reg>().unwrap(), Reg::SP);
        assert_eq!("LR".parse::<Reg>().unwrap(), Reg::LR);
        assert_eq!("pc".parse::<Reg>().unwrap(), Reg::PC);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("r16".parse::<Reg>().is_err());
        assert!("x0".parse::<Reg>().is_err());
        assert!("".parse::<Reg>().is_err());
        assert!("r-1".parse::<Reg>().is_err());
    }

    #[test]
    fn general_purpose_split() {
        assert!(Reg::R0.is_general_purpose());
        assert!(Reg::R12.is_general_purpose());
        assert!(!Reg::SP.is_general_purpose());
        assert!(!Reg::PC.is_general_purpose());
    }

    #[test]
    fn display_parse_roundtrip() {
        for reg in Reg::ALL {
            assert_eq!(reg.to_string().parse::<Reg>().unwrap(), reg);
        }
    }
}
