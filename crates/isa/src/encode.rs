//! Packed 64-bit binary encoding of WN-RISC instructions.
//!
//! This is a *storage/transport* encoding (for writing compiled programs to
//! non-volatile memory images, hashing, or diffing), not a claim about code
//! density — code-size accounting for the paper's §III-A numbers uses the
//! Thumb-equivalent [`crate::Instr::size_bytes`] instead.
//!
//! Layout (least-significant first):
//!
//! ```text
//! bits  0..8   opcode
//! bits  8..12  rd / rt
//! bits 12..16  rn
//! bits 16..20  rm
//! bits 20..26  aux   (subword bits, lane width, condition, shift amount)
//! bits 26..32  aux2  (subword position)
//! bits 32..64  imm / offset / branch target
//! ```

use std::fmt;

use crate::cond::Cond;
use crate::instr::{Instr, LaneWidth};
use crate::reg::Reg;

/// Error produced when decoding a 64-bit word fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode field does not name an instruction.
    UnknownOpcode(u8),
    /// A register field held an invalid index (only possible for corrupted
    /// inputs since fields are 4 bits wide — kept for defense in depth).
    BadRegister(u8),
    /// The condition field held an invalid code.
    BadCondition(u8),
    /// The lane-width field held an unsupported width.
    BadLaneWidth(u8),
    /// The subword size/position pair is out of range.
    BadSubword { bits: u8, pos: u8 },
    /// A shift amount field exceeds 31.
    BadShift(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::BadRegister(r) => write!(f, "invalid register index {r}"),
            DecodeError::BadCondition(c) => write!(f, "invalid condition code {c}"),
            DecodeError::BadLaneWidth(w) => write!(f, "invalid lane width {w}"),
            DecodeError::BadSubword { bits, pos } => {
                write!(f, "invalid subword spec: bits={bits} pos={pos}")
            }
            DecodeError::BadShift(sh) => write!(f, "shift amount {sh} exceeds 31"),
        }
    }
}

impl std::error::Error for DecodeError {}

mod op {
    pub const MOV_IMM: u8 = 0x01;
    pub const MOV: u8 = 0x02;
    pub const MVN: u8 = 0x03;
    pub const ADD: u8 = 0x04;
    pub const ADD_IMM: u8 = 0x05;
    pub const SUB: u8 = 0x06;
    pub const SUB_IMM: u8 = 0x07;
    pub const RSB: u8 = 0x08;
    pub const MUL: u8 = 0x09;
    pub const MUL_ASP: u8 = 0x0a;
    pub const ADD_ASV: u8 = 0x0b;
    pub const SUB_ASV: u8 = 0x0c;
    pub const AND: u8 = 0x0d;
    pub const ORR: u8 = 0x0e;
    pub const EOR: u8 = 0x0f;
    pub const BIC: u8 = 0x10;
    pub const AND_IMM: u8 = 0x11;
    pub const LSL_IMM: u8 = 0x12;
    pub const LSR_IMM: u8 = 0x13;
    pub const ASR_IMM: u8 = 0x14;
    pub const LSL_REG: u8 = 0x15;
    pub const LSR_REG: u8 = 0x16;
    pub const ASR_REG: u8 = 0x17;
    pub const CMP: u8 = 0x18;
    pub const CMP_IMM: u8 = 0x19;
    pub const TST: u8 = 0x1a;
    pub const LDR: u8 = 0x1b;
    pub const LDR_REG: u8 = 0x1c;
    pub const LDRH: u8 = 0x1d;
    pub const LDRH_REG: u8 = 0x1e;
    pub const LDRSH_REG: u8 = 0x1f;
    pub const LDRB: u8 = 0x20;
    pub const LDRB_REG: u8 = 0x21;
    pub const STR: u8 = 0x22;
    pub const STR_REG: u8 = 0x23;
    pub const STRH: u8 = 0x24;
    pub const STRH_REG: u8 = 0x25;
    pub const STRB: u8 = 0x26;
    pub const STRB_REG: u8 = 0x27;
    pub const B: u8 = 0x28;
    pub const B_COND: u8 = 0x29;
    pub const BL: u8 = 0x2a;
    pub const BX: u8 = 0x2b;
    pub const SKM: u8 = 0x2c;
    pub const NOP: u8 = 0x2d;
    pub const HALT: u8 = 0x2e;
}

fn pack(opcode: u8, rd: u8, rn: u8, rm: u8, aux: u8, aux2: u8, imm: u32) -> u64 {
    (opcode as u64)
        | ((rd as u64 & 0xf) << 8)
        | ((rn as u64 & 0xf) << 12)
        | ((rm as u64 & 0xf) << 16)
        | ((aux as u64 & 0x3f) << 20)
        | ((aux2 as u64 & 0x3f) << 26)
        | ((imm as u64) << 32)
}

/// Encodes an instruction into its packed 64-bit representation.
pub fn encode(instr: &Instr) -> u64 {
    use Instr::*;
    let r = |reg: Reg| reg.index() as u8;
    match *instr {
        MovImm { rd, imm } => pack(op::MOV_IMM, r(rd), 0, 0, 0, 0, imm as u32),
        Mov { rd, rm } => pack(op::MOV, r(rd), 0, r(rm), 0, 0, 0),
        Mvn { rd, rm } => pack(op::MVN, r(rd), 0, r(rm), 0, 0, 0),
        Add { rd, rn, rm } => pack(op::ADD, r(rd), r(rn), r(rm), 0, 0, 0),
        AddImm { rd, rn, imm } => pack(op::ADD_IMM, r(rd), r(rn), 0, 0, 0, imm as u32),
        Sub { rd, rn, rm } => pack(op::SUB, r(rd), r(rn), r(rm), 0, 0, 0),
        SubImm { rd, rn, imm } => pack(op::SUB_IMM, r(rd), r(rn), 0, 0, 0, imm as u32),
        Rsb { rd, rn } => pack(op::RSB, r(rd), r(rn), 0, 0, 0, 0),
        Mul { rd, rn, rm } => pack(op::MUL, r(rd), r(rn), r(rm), 0, 0, 0),
        MulAsp {
            rd,
            rn,
            rm,
            bits,
            shift,
        } => pack(op::MUL_ASP, r(rd), r(rn), r(rm), bits, shift, 0),
        AddAsv { rd, rn, rm, lanes } => {
            pack(op::ADD_ASV, r(rd), r(rn), r(rm), lanes.bits() as u8, 0, 0)
        }
        SubAsv { rd, rn, rm, lanes } => {
            pack(op::SUB_ASV, r(rd), r(rn), r(rm), lanes.bits() as u8, 0, 0)
        }
        And { rd, rn, rm } => pack(op::AND, r(rd), r(rn), r(rm), 0, 0, 0),
        Orr { rd, rn, rm } => pack(op::ORR, r(rd), r(rn), r(rm), 0, 0, 0),
        Eor { rd, rn, rm } => pack(op::EOR, r(rd), r(rn), r(rm), 0, 0, 0),
        Bic { rd, rn, rm } => pack(op::BIC, r(rd), r(rn), r(rm), 0, 0, 0),
        AndImm { rd, rn, imm } => pack(op::AND_IMM, r(rd), r(rn), 0, 0, 0, imm as u32),
        LslImm { rd, rn, sh } => pack(op::LSL_IMM, r(rd), r(rn), 0, sh, 0, 0),
        LsrImm { rd, rn, sh } => pack(op::LSR_IMM, r(rd), r(rn), 0, sh, 0, 0),
        AsrImm { rd, rn, sh } => pack(op::ASR_IMM, r(rd), r(rn), 0, sh, 0, 0),
        LslReg { rd, rn, rm } => pack(op::LSL_REG, r(rd), r(rn), r(rm), 0, 0, 0),
        LsrReg { rd, rn, rm } => pack(op::LSR_REG, r(rd), r(rn), r(rm), 0, 0, 0),
        AsrReg { rd, rn, rm } => pack(op::ASR_REG, r(rd), r(rn), r(rm), 0, 0, 0),
        Cmp { rn, rm } => pack(op::CMP, 0, r(rn), r(rm), 0, 0, 0),
        CmpImm { rn, imm } => pack(op::CMP_IMM, 0, r(rn), 0, 0, 0, imm as u32),
        Tst { rn, rm } => pack(op::TST, 0, r(rn), r(rm), 0, 0, 0),
        Ldr { rt, rn, off } => pack(op::LDR, r(rt), r(rn), 0, 0, 0, off as u32),
        LdrReg { rt, rn, rm } => pack(op::LDR_REG, r(rt), r(rn), r(rm), 0, 0, 0),
        Ldrh { rt, rn, off } => pack(op::LDRH, r(rt), r(rn), 0, 0, 0, off as u32),
        LdrhReg { rt, rn, rm } => pack(op::LDRH_REG, r(rt), r(rn), r(rm), 0, 0, 0),
        LdrshReg { rt, rn, rm } => pack(op::LDRSH_REG, r(rt), r(rn), r(rm), 0, 0, 0),
        Ldrb { rt, rn, off } => pack(op::LDRB, r(rt), r(rn), 0, 0, 0, off as u32),
        LdrbReg { rt, rn, rm } => pack(op::LDRB_REG, r(rt), r(rn), r(rm), 0, 0, 0),
        Str { rt, rn, off } => pack(op::STR, r(rt), r(rn), 0, 0, 0, off as u32),
        StrReg { rt, rn, rm } => pack(op::STR_REG, r(rt), r(rn), r(rm), 0, 0, 0),
        Strh { rt, rn, off } => pack(op::STRH, r(rt), r(rn), 0, 0, 0, off as u32),
        StrhReg { rt, rn, rm } => pack(op::STRH_REG, r(rt), r(rn), r(rm), 0, 0, 0),
        Strb { rt, rn, off } => pack(op::STRB, r(rt), r(rn), 0, 0, 0, off as u32),
        StrbReg { rt, rn, rm } => pack(op::STRB_REG, r(rt), r(rn), r(rm), 0, 0, 0),
        B { target } => pack(op::B, 0, 0, 0, 0, 0, target),
        BCond { cond, target } => pack(op::B_COND, 0, 0, 0, cond as u8, 0, target),
        Bl { target } => pack(op::BL, 0, 0, 0, 0, 0, target),
        Bx { rm } => pack(op::BX, 0, 0, r(rm), 0, 0, 0),
        Skm { target } => pack(op::SKM, 0, 0, 0, 0, 0, target),
        Nop => pack(op::NOP, 0, 0, 0, 0, 0, 0),
        Halt => pack(op::HALT, 0, 0, 0, 0, 0, 0),
    }
}

/// Decodes a packed 64-bit word back into an instruction.
///
/// # Errors
///
/// Returns a [`DecodeError`] if any field is malformed. `encode` →
/// `decode` is a lossless round trip for every valid [`Instr`].
pub fn decode(word: u64) -> Result<Instr, DecodeError> {
    let opcode = (word & 0xff) as u8;
    let rd_bits = ((word >> 8) & 0xf) as u8;
    let rn_bits = ((word >> 12) & 0xf) as u8;
    let rm_bits = ((word >> 16) & 0xf) as u8;
    let aux = ((word >> 20) & 0x3f) as u8;
    let aux2 = ((word >> 26) & 0x3f) as u8;
    let imm32 = (word >> 32) as u32;

    let reg = |bits: u8| Reg::from_index(bits as usize).ok_or(DecodeError::BadRegister(bits));
    let rd = reg(rd_bits);
    let rn = reg(rn_bits);
    let rm = reg(rm_bits);
    let imm = imm32 as i32;

    use Instr::*;
    Ok(match opcode {
        op::MOV_IMM => MovImm { rd: rd?, imm },
        op::MOV => Mov { rd: rd?, rm: rm? },
        op::MVN => Mvn { rd: rd?, rm: rm? },
        op::ADD => Add {
            rd: rd?,
            rn: rn?,
            rm: rm?,
        },
        op::ADD_IMM => AddImm {
            rd: rd?,
            rn: rn?,
            imm,
        },
        op::SUB => Sub {
            rd: rd?,
            rn: rn?,
            rm: rm?,
        },
        op::SUB_IMM => SubImm {
            rd: rd?,
            rn: rn?,
            imm,
        },
        op::RSB => Rsb { rd: rd?, rn: rn? },
        op::MUL => Mul {
            rd: rd?,
            rn: rn?,
            rm: rm?,
        },
        op::MUL_ASP => {
            let bits = aux;
            let shift = aux2;
            if bits == 0 || bits > crate::MAX_ASP_BITS || shift as u32 + bits as u32 > 32 {
                return Err(DecodeError::BadSubword { bits, pos: shift });
            }
            MulAsp {
                rd: rd?,
                rn: rn?,
                rm: rm?,
                bits,
                shift,
            }
        }
        op::ADD_ASV => AddAsv {
            rd: rd?,
            rn: rn?,
            rm: rm?,
            lanes: LaneWidth::from_bits(aux).ok_or(DecodeError::BadLaneWidth(aux))?,
        },
        op::SUB_ASV => SubAsv {
            rd: rd?,
            rn: rn?,
            rm: rm?,
            lanes: LaneWidth::from_bits(aux).ok_or(DecodeError::BadLaneWidth(aux))?,
        },
        op::AND => And {
            rd: rd?,
            rn: rn?,
            rm: rm?,
        },
        op::ORR => Orr {
            rd: rd?,
            rn: rn?,
            rm: rm?,
        },
        op::EOR => Eor {
            rd: rd?,
            rn: rn?,
            rm: rm?,
        },
        op::BIC => Bic {
            rd: rd?,
            rn: rn?,
            rm: rm?,
        },
        op::AND_IMM => AndImm {
            rd: rd?,
            rn: rn?,
            imm,
        },
        op::LSL_IMM | op::LSR_IMM | op::ASR_IMM => {
            if aux > 31 {
                return Err(DecodeError::BadShift(aux));
            }
            match opcode {
                op::LSL_IMM => LslImm {
                    rd: rd?,
                    rn: rn?,
                    sh: aux,
                },
                op::LSR_IMM => LsrImm {
                    rd: rd?,
                    rn: rn?,
                    sh: aux,
                },
                _ => AsrImm {
                    rd: rd?,
                    rn: rn?,
                    sh: aux,
                },
            }
        }
        op::LSL_REG => LslReg {
            rd: rd?,
            rn: rn?,
            rm: rm?,
        },
        op::LSR_REG => LsrReg {
            rd: rd?,
            rn: rn?,
            rm: rm?,
        },
        op::ASR_REG => AsrReg {
            rd: rd?,
            rn: rn?,
            rm: rm?,
        },
        op::CMP => Cmp { rn: rn?, rm: rm? },
        op::CMP_IMM => CmpImm { rn: rn?, imm },
        op::TST => Tst { rn: rn?, rm: rm? },
        op::LDR => Ldr {
            rt: rd?,
            rn: rn?,
            off: imm,
        },
        op::LDR_REG => LdrReg {
            rt: rd?,
            rn: rn?,
            rm: rm?,
        },
        op::LDRH => Ldrh {
            rt: rd?,
            rn: rn?,
            off: imm,
        },
        op::LDRH_REG => LdrhReg {
            rt: rd?,
            rn: rn?,
            rm: rm?,
        },
        op::LDRSH_REG => LdrshReg {
            rt: rd?,
            rn: rn?,
            rm: rm?,
        },
        op::LDRB => Ldrb {
            rt: rd?,
            rn: rn?,
            off: imm,
        },
        op::LDRB_REG => LdrbReg {
            rt: rd?,
            rn: rn?,
            rm: rm?,
        },
        op::STR => Str {
            rt: rd?,
            rn: rn?,
            off: imm,
        },
        op::STR_REG => StrReg {
            rt: rd?,
            rn: rn?,
            rm: rm?,
        },
        op::STRH => Strh {
            rt: rd?,
            rn: rn?,
            off: imm,
        },
        op::STRH_REG => StrhReg {
            rt: rd?,
            rn: rn?,
            rm: rm?,
        },
        op::STRB => Strb {
            rt: rd?,
            rn: rn?,
            off: imm,
        },
        op::STRB_REG => StrbReg {
            rt: rd?,
            rn: rn?,
            rm: rm?,
        },
        op::B => B { target: imm32 },
        op::B_COND => BCond {
            cond: Cond::from_index(aux).ok_or(DecodeError::BadCondition(aux))?,
            target: imm32,
        },
        op::BL => Bl { target: imm32 },
        op::BX => Bx { rm: rm? },
        op::SKM => Skm { target: imm32 },
        op::NOP => Nop,
        op::HALT => Halt,
        other => return Err(DecodeError::UnknownOpcode(other)),
    })
}

/// Encodes a whole instruction stream.
pub fn encode_program(instrs: &[Instr]) -> Vec<u64> {
    instrs.iter().map(encode).collect()
}

/// Decodes a whole instruction stream.
///
/// # Errors
///
/// Returns the first [`DecodeError`] with its position.
pub fn decode_program(words: &[u64]) -> Result<Vec<Instr>, (usize, DecodeError)> {
    words
        .iter()
        .enumerate()
        .map(|(i, &w)| decode(w).map_err(|e| (i, e)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn decode_rejects_unknown_opcode() {
        assert_eq!(decode(0xff), Err(DecodeError::UnknownOpcode(0xff)));
        assert_eq!(decode(0x00), Err(DecodeError::UnknownOpcode(0x00)));
    }

    #[test]
    fn decode_rejects_bad_lane_width() {
        let w = pack(op::ADD_ASV, 0, 1, 2, 5, 0, 0);
        assert_eq!(decode(w), Err(DecodeError::BadLaneWidth(5)));
    }

    #[test]
    fn decode_rejects_bad_subword() {
        let w = pack(op::MUL_ASP, 0, 1, 2, 8, 25, 0); // shift 25 + 8 bits > 32
        assert_eq!(decode(w), Err(DecodeError::BadSubword { bits: 8, pos: 25 }));
        let w = pack(op::MUL_ASP, 0, 1, 2, 0, 0, 0);
        assert_eq!(decode(w), Err(DecodeError::BadSubword { bits: 0, pos: 0 }));
    }

    #[test]
    fn decode_rejects_bad_shift() {
        let w = pack(op::LSL_IMM, 0, 1, 0, 32, 0, 0);
        assert_eq!(decode(w), Err(DecodeError::BadShift(32)));
        let w = pack(op::ASR_IMM, 0, 1, 0, 63, 0, 0);
        assert_eq!(decode(w), Err(DecodeError::BadShift(63)));
    }

    #[test]
    fn decode_rejects_bad_condition() {
        let w = pack(op::B_COND, 0, 0, 0, 14, 0, 0);
        assert_eq!(decode(w), Err(DecodeError::BadCondition(14)));
    }

    #[test]
    fn negative_immediates_roundtrip() {
        let i = Instr::MovImm {
            rd: Reg::R3,
            imm: -123456,
        };
        assert_eq!(decode(encode(&i)).unwrap(), i);
        let i = Instr::Ldr {
            rt: Reg::R1,
            rn: Reg::R2,
            off: -8,
        };
        assert_eq!(decode(encode(&i)).unwrap(), i);
    }

    #[test]
    fn program_roundtrip() {
        let instrs = vec![
            Instr::MovImm {
                rd: Reg::R0,
                imm: 7,
            },
            Instr::Skm { target: 3 },
            Instr::AddAsv {
                rd: Reg::R1,
                rn: Reg::R1,
                rm: Reg::R2,
                lanes: LaneWidth::W8,
            },
            Instr::Halt,
        ];
        let words = encode_program(&instrs);
        assert_eq!(decode_program(&words).unwrap(), instrs);
    }

    #[test]
    fn decode_program_reports_position() {
        let mut words = encode_program(&[Instr::Nop, Instr::Halt]);
        words.insert(1, 0xfe);
        let err = decode_program(&words).unwrap_err();
        assert_eq!(err.0, 1);
    }

    // ---- proptest strategies -------------------------------------------

    fn any_reg() -> impl Strategy<Value = Reg> {
        (0usize..16).prop_map(|i| Reg::from_index(i).unwrap())
    }

    fn any_cond() -> impl Strategy<Value = Cond> {
        (0u8..14).prop_map(|i| Cond::from_index(i).unwrap())
    }

    fn any_lanes() -> impl Strategy<Value = LaneWidth> {
        prop_oneof![
            Just(LaneWidth::W4),
            Just(LaneWidth::W8),
            Just(LaneWidth::W16)
        ]
    }

    fn any_subword() -> impl Strategy<Value = (u8, u8)> {
        (1u8..=16).prop_flat_map(|bits| {
            let max_shift = 32 - bits;
            (Just(bits), 0..=max_shift)
        })
    }

    prop_compose! {
        fn rrr()(rd in any_reg(), rn in any_reg(), rm in any_reg()) -> (Reg, Reg, Reg) {
            (rd, rn, rm)
        }
    }

    fn any_instr() -> impl Strategy<Value = Instr> {
        prop_oneof![
            (any_reg(), any::<i32>()).prop_map(|(rd, imm)| Instr::MovImm { rd, imm }),
            (any_reg(), any_reg()).prop_map(|(rd, rm)| Instr::Mov { rd, rm }),
            rrr().prop_map(|(rd, rn, rm)| Instr::Add { rd, rn, rm }),
            (any_reg(), any_reg(), any::<i32>()).prop_map(|(rd, rn, imm)| Instr::AddImm {
                rd,
                rn,
                imm
            }),
            rrr().prop_map(|(rd, rn, rm)| Instr::Sub { rd, rn, rm }),
            rrr().prop_map(|(rd, rn, rm)| Instr::Mul { rd, rn, rm }),
            (rrr(), any_subword()).prop_map(|((rd, rn, rm), (bits, shift))| Instr::MulAsp {
                rd,
                rn,
                rm,
                bits,
                shift
            }),
            (rrr(), any_lanes()).prop_map(|((rd, rn, rm), lanes)| Instr::AddAsv {
                rd,
                rn,
                rm,
                lanes
            }),
            (rrr(), any_lanes()).prop_map(|((rd, rn, rm), lanes)| Instr::SubAsv {
                rd,
                rn,
                rm,
                lanes
            }),
            rrr().prop_map(|(rd, rn, rm)| Instr::Eor { rd, rn, rm }),
            (any_reg(), any_reg(), 0u8..32).prop_map(|(rd, rn, sh)| Instr::LslImm { rd, rn, sh }),
            (any_reg(), any_reg(), 0u8..32).prop_map(|(rd, rn, sh)| Instr::AsrImm { rd, rn, sh }),
            (any_reg(), any::<i32>()).prop_map(|(rn, imm)| Instr::CmpImm { rn, imm }),
            (any_reg(), any_reg(), any::<i32>()).prop_map(|(rt, rn, off)| Instr::Ldr {
                rt,
                rn,
                off
            }),
            rrr().prop_map(|(rt, rn, rm)| Instr::LdrbReg { rt, rn, rm }),
            (any_reg(), any_reg(), any::<i32>()).prop_map(|(rt, rn, off)| Instr::Strh {
                rt,
                rn,
                off
            }),
            any::<u32>().prop_map(|target| Instr::B { target }),
            (any_cond(), any::<u32>()).prop_map(|(cond, target)| Instr::BCond { cond, target }),
            any::<u32>().prop_map(|target| Instr::Skm { target }),
            Just(Instr::Nop),
            Just(Instr::Halt),
        ]
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(instr in any_instr()) {
            let decoded = decode(encode(&instr)).expect("valid instruction must decode");
            prop_assert_eq!(decoded, instr);
        }

        #[test]
        fn encoding_is_injective(a in any_instr(), b in any_instr()) {
            if a != b {
                prop_assert_ne!(encode(&a), encode(&b));
            }
        }
    }
}
