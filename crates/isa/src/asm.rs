//! A two-pass text assembler for WN-RISC.
//!
//! The syntax mirrors the listings in the paper (ARM-flavoured):
//!
//! ```text
//! ; comment        (also `@ comment` and `// comment`)
//! .data
//! X:    .space 256          ; 256 zero bytes
//! F:    .half  3, 5, 3      ; 16-bit values
//! K:    .word  -7, 1024     ; 32-bit values
//! .text
//! main:
//! LOOP_MSb:
//!     LDR      r3, [r0, #0]
//!     LDRB     r5, [r2, #1]
//!     MUL_ASP8 r4, r4, r5, #1
//!     ADD      r3, r3, r4
//!     STR      r3, [r0, #0]
//!     BNE      LOOP_MSb
//!     SKM      END
//! END:
//!     HALT
//! ```
//!
//! `MOV rd, =label` loads the byte address of a data label. Branch targets
//! are code labels. Instruction mnemonics are case-insensitive; labels are
//! case-sensitive.

use std::fmt;

use crate::cond::Cond;
use crate::instr::{Instr, LaneWidth};
use crate::program::{BuildError, DataItem, Program, ProgramBuilder};
use crate::reg::Reg;

/// Error produced while assembling, annotated with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line of the offending text (0 when not line-specific).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl AsmError {
    fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly error: {}", self.message)
        } else {
            write!(f, "assembly error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}

impl From<BuildError> for AsmError {
    fn from(e: BuildError) -> AsmError {
        AsmError::new(0, e.to_string())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// Assembles WN-RISC source text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] describing the first syntax error, unknown
/// mnemonic, malformed operand, duplicate label or unresolved reference.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut builder = ProgramBuilder::new();

    // Pass 1: lay out the data segment so `=label` immediates resolve even
    // when .data comes after .text.
    let mut section = Section::Text;
    let mut pending_label: Option<(usize, String)> = None;
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(dir) = line.strip_prefix('.') {
            let word = dir.split_whitespace().next().unwrap_or("");
            match word {
                "data" => section = Section::Data,
                "text" => section = Section::Text,
                _ if section == Section::Data => {
                    let label = pending_label.take().map(|(_, l)| l);
                    parse_data_directive(&mut builder, line_no, line, label)?;
                }
                _ => {}
            }
            continue;
        }
        if section != Section::Data {
            continue;
        }
        if let Some((label, rest)) = split_label(line) {
            if builder.data_symbol(label).is_some() {
                return Err(AsmError::new(
                    line_no,
                    format!("duplicate data label `{label}`"),
                ));
            }
            let rest = rest.trim();
            if rest.is_empty() {
                if let Some((first_line, first)) = &pending_label {
                    return Err(AsmError::new(
                        *first_line,
                        format!("data label `{first}` has no directive (before `{label}`)"),
                    ));
                }
                pending_label = Some((line_no, label.to_string()));
            } else if rest.starts_with('.') {
                parse_data_directive(&mut builder, line_no, rest, Some(label.to_string()))?;
            } else {
                return Err(AsmError::new(
                    line_no,
                    "only data directives are allowed in .data sections",
                ));
            }
        } else if line.starts_with('.') {
            let label = pending_label.take().map(|(_, l)| l);
            parse_data_directive(&mut builder, line_no, line, label)?;
        } else {
            return Err(AsmError::new(
                line_no,
                "expected a label or directive in .data",
            ));
        }
    }
    if let Some((line_no, label)) = pending_label {
        return Err(AsmError::new(
            line_no,
            format!("data label `{label}` has no directive"),
        ));
    }

    // Pass 2: assemble the text sections.
    let mut section = Section::Text;
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(dir) = line.strip_prefix('.') {
            let word = dir.split_whitespace().next().unwrap_or("");
            match word {
                "data" => section = Section::Data,
                "text" => section = Section::Text,
                _ => {}
            }
            continue;
        }
        if section != Section::Text {
            continue;
        }
        while let Some((label, rest)) = split_label(line) {
            if builder.is_bound(label) {
                return Err(AsmError::new(
                    line_no,
                    format!("duplicate code label `{label}`"),
                ));
            }
            builder.bind_label(label);
            line = rest.trim();
            if line.is_empty() {
                break;
            }
        }
        if line.is_empty() {
            continue;
        }
        let instr = parse_instruction(&mut builder, line_no, line)?;
        builder.push(instr);
    }

    Ok(builder.finish()?)
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for (i, c) in line.char_indices() {
        if c == ';' || c == '@' {
            end = i;
            break;
        }
        if c == '/' && line[i..].starts_with("//") {
            end = i;
            break;
        }
    }
    &line[..end]
}

/// Splits a leading `label:` prefix off a line, if present.
fn split_label(line: &str) -> Option<(&str, &str)> {
    let colon = line.find(':')?;
    let (label, rest) = line.split_at(colon);
    let label = label.trim();
    if label.is_empty()
        || !label
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
    {
        return None;
    }
    Some((label, &rest[1..]))
}

fn parse_data_directive(
    builder: &mut ProgramBuilder,
    line_no: usize,
    text: &str,
    label: Option<String>,
) -> Result<(), AsmError> {
    let text = text.trim();
    let (word, args) = match text.split_once(char::is_whitespace) {
        Some((w, a)) => (w, a.trim()),
        None => (text, ""),
    };
    let item = match word {
        ".word" => DataItem::Words(parse_int_list(line_no, args)?),
        ".half" => {
            let vals = parse_int_list(line_no, args)?;
            let mut halves = Vec::with_capacity(vals.len());
            for v in vals {
                if !(i16::MIN as i32..=u16::MAX as i32).contains(&v) {
                    return Err(AsmError::new(
                        line_no,
                        format!("halfword out of range: {v}"),
                    ));
                }
                halves.push(v as i16);
            }
            DataItem::Halves(halves)
        }
        ".byte" => {
            let vals = parse_int_list(line_no, args)?;
            let mut bytes = Vec::with_capacity(vals.len());
            for v in vals {
                if !(i8::MIN as i32..=u8::MAX as i32).contains(&v) {
                    return Err(AsmError::new(line_no, format!("byte out of range: {v}")));
                }
                bytes.push(v as u8);
            }
            DataItem::Bytes(bytes)
        }
        ".space" => {
            let n = parse_int(line_no, args)?;
            if n < 0 {
                return Err(AsmError::new(line_no, ".space size must be non-negative"));
            }
            DataItem::Space(n as u32)
        }
        other => {
            return Err(AsmError::new(
                line_no,
                format!("unknown data directive `{other}`"),
            ))
        }
    };
    let name = label.unwrap_or_else(|| format!("__anon_{line_no}"));
    builder.data(&name, item);
    Ok(())
}

fn parse_int_list(line_no: usize, args: &str) -> Result<Vec<i32>, AsmError> {
    if args.trim().is_empty() {
        return Err(AsmError::new(line_no, "directive needs at least one value"));
    }
    args.split(',')
        .map(|a| parse_int(line_no, a.trim()))
        .collect()
}

fn parse_int(line_no: usize, text: &str) -> Result<i32, AsmError> {
    let text = text.trim();
    let (neg, body) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let value: Option<i64> =
        if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
            u32::from_str_radix(hex, 16).ok().map(i64::from)
        } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
            u32::from_str_radix(bin, 2).ok().map(i64::from)
        } else {
            body.parse::<i64>().ok()
        };
    let value = value.ok_or_else(|| AsmError::new(line_no, format!("invalid integer `{text}`")))?;
    let value = if neg { -value } else { value };
    if !(i32::MIN as i64..=u32::MAX as i64).contains(&value) {
        return Err(AsmError::new(
            line_no,
            format!("integer out of range: `{text}`"),
        ));
    }
    Ok(value as i32)
}

struct Operands<'a> {
    line_no: usize,
    parts: Vec<&'a str>,
    at: usize,
}

impl<'a> Operands<'a> {
    fn new(line_no: usize, text: &'a str) -> Operands<'a> {
        // Split on commas outside brackets; memory operands like
        // `[r0, #4]` stay together.
        let mut parts = Vec::new();
        let mut depth = 0usize;
        let mut start = 0usize;
        for (i, c) in text.char_indices() {
            match c {
                '[' => depth += 1,
                ']' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    parts.push(text[start..i].trim());
                    start = i + 1;
                }
                _ => {}
            }
        }
        let last = text[start..].trim();
        if !last.is_empty() {
            parts.push(last);
        }
        Operands {
            line_no,
            parts,
            at: 0,
        }
    }

    fn len(&self) -> usize {
        self.parts.len()
    }

    fn next(&mut self) -> Result<&'a str, AsmError> {
        let p = self
            .parts
            .get(self.at)
            .ok_or_else(|| AsmError::new(self.line_no, "missing operand"))?;
        self.at += 1;
        Ok(p)
    }

    fn reg(&mut self) -> Result<Reg, AsmError> {
        let line = self.line_no;
        let t = self.next()?;
        t.parse()
            .map_err(|_| AsmError::new(line, format!("expected register, found `{t}`")))
    }

    fn imm(&mut self) -> Result<i32, AsmError> {
        let line = self.line_no;
        let t = self.next()?;
        let body = t.strip_prefix('#').unwrap_or(t);
        parse_int(line, body)
    }

    fn done(&self) -> Result<(), AsmError> {
        if self.at == self.parts.len() {
            Ok(())
        } else {
            Err(AsmError::new(
                self.line_no,
                format!("unexpected extra operand `{}`", self.parts[self.at]),
            ))
        }
    }
}

/// `[rn, #off]` or `[rn, rm]` or `[rn]`.
enum MemOperand {
    Imm(Reg, i32),
    Reg(Reg, Reg),
}

fn parse_mem(line_no: usize, text: &str) -> Result<MemOperand, AsmError> {
    let inner = text
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| {
            AsmError::new(line_no, format!("expected memory operand, found `{text}`"))
        })?;
    let mut parts = inner.splitn(2, ',');
    let base: Reg = parts
        .next()
        .unwrap_or("")
        .trim()
        .parse()
        .map_err(|_| AsmError::new(line_no, format!("bad base register in `{text}`")))?;
    match parts.next().map(str::trim) {
        None | Some("") => Ok(MemOperand::Imm(base, 0)),
        Some(off) => {
            if let Some(imm) = off.strip_prefix('#') {
                Ok(MemOperand::Imm(base, parse_int(line_no, imm)?))
            } else if let Ok(reg) = off.parse::<Reg>() {
                Ok(MemOperand::Reg(base, reg))
            } else {
                Ok(MemOperand::Imm(base, parse_int(line_no, off)?))
            }
        }
    }
}

fn parse_instruction(
    builder: &mut ProgramBuilder,
    line_no: usize,
    line: &str,
) -> Result<Instr, AsmError> {
    let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (line, ""),
    };
    let upper = mnemonic.to_ascii_uppercase();
    let mut ops = Operands::new(line_no, rest);

    let err_operands =
        |line_no: usize, m: &str| AsmError::new(line_no, format!("wrong operands for `{m}`"));

    let instr = match upper.as_str() {
        "MOV" => {
            let rd = ops.reg()?;
            let t = ops.next()?;
            if let Some(label) = t.strip_prefix('=') {
                let addr = builder.data_symbol(label).ok_or_else(|| {
                    AsmError::new(line_no, format!("unknown data label `{label}`"))
                })?;
                Instr::MovImm {
                    rd,
                    imm: addr as i32,
                }
            } else if let Ok(rm) = t.parse::<Reg>() {
                Instr::Mov { rd, rm }
            } else {
                let body = t.strip_prefix('#').unwrap_or(t);
                Instr::MovImm {
                    rd,
                    imm: parse_int(line_no, body)?,
                }
            }
        }
        "MVN" => Instr::Mvn {
            rd: ops.reg()?,
            rm: ops.reg()?,
        },
        "ADD" | "SUB" | "AND" => {
            let rd = ops.reg()?;
            let rn = ops.reg()?;
            let t = ops.next()?;
            if let Ok(rm) = t.parse::<Reg>() {
                match upper.as_str() {
                    "ADD" => Instr::Add { rd, rn, rm },
                    "SUB" => Instr::Sub { rd, rn, rm },
                    _ => Instr::And { rd, rn, rm },
                }
            } else {
                let body = t.strip_prefix('#').unwrap_or(t);
                let imm = parse_int(line_no, body)?;
                match upper.as_str() {
                    "ADD" => Instr::AddImm { rd, rn, imm },
                    "SUB" => Instr::SubImm { rd, rn, imm },
                    _ => Instr::AndImm { rd, rn, imm },
                }
            }
        }
        "RSB" | "NEG" => Instr::Rsb {
            rd: ops.reg()?,
            rn: ops.reg()?,
        },
        "MUL" => Instr::Mul {
            rd: ops.reg()?,
            rn: ops.reg()?,
            rm: ops.reg()?,
        },
        "ORR" => Instr::Orr {
            rd: ops.reg()?,
            rn: ops.reg()?,
            rm: ops.reg()?,
        },
        "EOR" => Instr::Eor {
            rd: ops.reg()?,
            rn: ops.reg()?,
            rm: ops.reg()?,
        },
        "BIC" => Instr::Bic {
            rd: ops.reg()?,
            rn: ops.reg()?,
            rm: ops.reg()?,
        },
        "LSL" | "LSR" | "ASR" => {
            let rd = ops.reg()?;
            let rn = ops.reg()?;
            let t = ops.next()?;
            if let Ok(rm) = t.parse::<Reg>() {
                match upper.as_str() {
                    "LSL" => Instr::LslReg { rd, rn, rm },
                    "LSR" => Instr::LsrReg { rd, rn, rm },
                    _ => Instr::AsrReg { rd, rn, rm },
                }
            } else {
                let body = t.strip_prefix('#').unwrap_or(t);
                let sh = parse_int(line_no, body)?;
                if !(0..=31).contains(&sh) {
                    return Err(AsmError::new(line_no, format!("shift out of range: {sh}")));
                }
                let sh = sh as u8;
                match upper.as_str() {
                    "LSL" => Instr::LslImm { rd, rn, sh },
                    "LSR" => Instr::LsrImm { rd, rn, sh },
                    _ => Instr::AsrImm { rd, rn, sh },
                }
            }
        }
        "CMP" => {
            let rn = ops.reg()?;
            let t = ops.next()?;
            if let Ok(rm) = t.parse::<Reg>() {
                Instr::Cmp { rn, rm }
            } else {
                let body = t.strip_prefix('#').unwrap_or(t);
                Instr::CmpImm {
                    rn,
                    imm: parse_int(line_no, body)?,
                }
            }
        }
        "TST" => Instr::Tst {
            rn: ops.reg()?,
            rm: ops.reg()?,
        },
        "LDR" | "LDRH" | "LDRSH" | "LDRB" | "STR" | "STRH" | "STRB" => {
            let rt = ops.reg()?;
            let mem = parse_mem(line_no, ops.next()?)?;
            match (upper.as_str(), mem) {
                ("LDR", MemOperand::Imm(rn, off)) => Instr::Ldr { rt, rn, off },
                ("LDR", MemOperand::Reg(rn, rm)) => Instr::LdrReg { rt, rn, rm },
                ("LDRH", MemOperand::Imm(rn, off)) => Instr::Ldrh { rt, rn, off },
                ("LDRH", MemOperand::Reg(rn, rm)) => Instr::LdrhReg { rt, rn, rm },
                ("LDRSH", MemOperand::Reg(rn, rm)) => Instr::LdrshReg { rt, rn, rm },
                ("LDRSH", MemOperand::Imm(..)) => {
                    return Err(AsmError::new(line_no, "LDRSH requires a register offset"))
                }
                ("LDRB", MemOperand::Imm(rn, off)) => Instr::Ldrb { rt, rn, off },
                ("LDRB", MemOperand::Reg(rn, rm)) => Instr::LdrbReg { rt, rn, rm },
                ("STR", MemOperand::Imm(rn, off)) => Instr::Str { rt, rn, off },
                ("STR", MemOperand::Reg(rn, rm)) => Instr::StrReg { rt, rn, rm },
                ("STRH", MemOperand::Imm(rn, off)) => Instr::Strh { rt, rn, off },
                ("STRH", MemOperand::Reg(rn, rm)) => Instr::StrhReg { rt, rn, rm },
                ("STRB", MemOperand::Imm(rn, off)) => Instr::Strb { rt, rn, off },
                ("STRB", MemOperand::Reg(rn, rm)) => Instr::StrbReg { rt, rn, rm },
                _ => unreachable!(),
            }
        }
        "B" => {
            let label = ops.next()?;
            let instr = builder.branch_to_label(label);
            ops.done()?;
            return Ok(instr);
        }
        "BL" => {
            let label = ops.next()?;
            let instr = builder.with_label_target(Instr::Bl { target: 0 }, label);
            ops.done()?;
            return Ok(instr);
        }
        "BX" => Instr::Bx { rm: ops.reg()? },
        "SKM" => {
            let label = ops.next()?;
            let instr = builder.with_label_target(Instr::Skm { target: 0 }, label);
            ops.done()?;
            return Ok(instr);
        }
        "NOP" => Instr::Nop,
        "HALT" => Instr::Halt,
        _ => {
            // Conditional branches: B<cond>.
            if let Some(cond_txt) = upper.strip_prefix('B') {
                if let Ok(cond) = cond_txt.parse::<Cond>() {
                    let label = ops.next()?;
                    let instr = builder.with_label_target(Instr::BCond { cond, target: 0 }, label);
                    ops.done()?;
                    return Ok(instr);
                }
            }
            // MUL_ASP<bits> rd, rn, rm, #shift  (also the paper's 3-operand
            // form rd, rm, #shift, meaning rd = rd * subword). The shift is
            // the subword's significance in bits — the paper's position
            // notation times the subword size.
            if let Some(bits_txt) = upper.strip_prefix("MUL_ASP") {
                let bits: u8 = bits_txt.parse().map_err(|_| {
                    AsmError::new(line_no, format!("bad subword size `{bits_txt}`"))
                })?;
                if bits == 0 || bits > crate::MAX_ASP_BITS {
                    return Err(AsmError::new(
                        line_no,
                        format!("subword size out of range: {bits}"),
                    ));
                }
                let (rd, rn, rm, shift) = if ops.len() == 4 {
                    let rd = ops.reg()?;
                    let rn = ops.reg()?;
                    let rm = ops.reg()?;
                    (rd, rn, rm, ops.imm()?)
                } else {
                    let rd = ops.reg()?;
                    let rm = ops.reg()?;
                    (rd, rd, rm, ops.imm()?)
                };
                if shift < 0 || shift as u32 + bits as u32 > 32 {
                    return Err(AsmError::new(
                        line_no,
                        format!("subword shift out of range: {shift}"),
                    ));
                }
                ops.done()?;
                return Ok(Instr::MulAsp {
                    rd,
                    rn,
                    rm,
                    bits,
                    shift: shift as u8,
                });
            }
            // ADD_ASV<bits> / SUB_ASV<bits>, 2- or 3-operand.
            for (prefix, is_add) in [("ADD_ASV", true), ("SUB_ASV", false)] {
                if let Some(bits_txt) = upper.strip_prefix(prefix) {
                    let bits: u8 = bits_txt.parse().map_err(|_| {
                        AsmError::new(line_no, format!("bad lane width `{bits_txt}`"))
                    })?;
                    let lanes = LaneWidth::from_bits(bits).ok_or_else(|| {
                        AsmError::new(
                            line_no,
                            format!("unsupported lane width {bits} (use 4, 8 or 16)"),
                        )
                    })?;
                    let (rd, rn, rm) = if ops.len() == 3 {
                        (ops.reg()?, ops.reg()?, ops.reg()?)
                    } else {
                        let rd = ops.reg()?;
                        let rm = ops.reg()?;
                        (rd, rd, rm)
                    };
                    ops.done()?;
                    return Ok(if is_add {
                        Instr::AddAsv { rd, rn, rm, lanes }
                    } else {
                        Instr::SubAsv { rd, rn, rm, lanes }
                    });
                }
            }
            return Err(AsmError::new(
                line_no,
                format!("unknown mnemonic `{mnemonic}`"),
            ));
        }
    };
    ops.done().map_err(|_| err_operands(line_no, mnemonic))?;
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_paper_listing_2_style_code() {
        let src = r#"
        ; Listing 2 from the paper (adapted)
        .data
        X: .space 64
        F: .space 64
        A: .space 64
        .text
        main:
            MOV r0, =X
            MOV r1, =F
            MOV r2, =A
        LOOP_MSb:
            LDR  r3, [r0, #0]      @ X[i]
            LDR  r4, [r1, #0]      @ F[i]
            LDRB r5, [r2, #1]      @ A[i][MSb]
            MUL_ASP8 r4, r5, #8    @ X += F * A (paper notation: #1)
            ADD  r3, r3, r4
            STR  r3, [r0, #0]
            B    LOOP_MSb
            SKM  END
        END:
            HALT
        "#;
        let p = assemble(src).unwrap();
        assert_eq!(p.data_symbol("X"), Some(0));
        assert_eq!(p.data_symbol("F"), Some(64));
        assert_eq!(p.data_symbol("A"), Some(128));
        let loop_idx = p.code_symbol("LOOP_MSb").unwrap();
        assert_eq!(
            p.instrs[3],
            Instr::Ldr {
                rt: Reg::R3,
                rn: Reg::R0,
                off: 0
            }
        );
        assert_eq!(
            p.instrs[6],
            Instr::MulAsp {
                rd: Reg::R4,
                rn: Reg::R4,
                rm: Reg::R5,
                bits: 8,
                shift: 8
            }
        );
        assert_eq!(p.instrs[9], Instr::B { target: loop_idx });
        let end = p.code_symbol("END").unwrap();
        assert_eq!(p.instrs[10], Instr::Skm { target: end });
    }

    #[test]
    fn assembles_asv() {
        let p =
            assemble("ADD_ASV8 r3, r4\nSUB_ASV4 r1, r2, r3\nADD_ASV16 r0, r1, r2\nHALT").unwrap();
        assert_eq!(
            p.instrs[0],
            Instr::AddAsv {
                rd: Reg::R3,
                rn: Reg::R3,
                rm: Reg::R4,
                lanes: LaneWidth::W8
            }
        );
        assert_eq!(
            p.instrs[1],
            Instr::SubAsv {
                rd: Reg::R1,
                rn: Reg::R2,
                rm: Reg::R3,
                lanes: LaneWidth::W4
            }
        );
        assert_eq!(
            p.instrs[2],
            Instr::AddAsv {
                rd: Reg::R0,
                rn: Reg::R1,
                rm: Reg::R2,
                lanes: LaneWidth::W16
            }
        );
    }

    #[test]
    fn data_initializers() {
        let p =
            assemble(".data\nK: .word 1, -2, 0x10\nH: .half 256, -1\nB: .byte 1, 255\n.text\nHALT")
                .unwrap();
        assert_eq!(p.data_symbol("K"), Some(0));
        assert_eq!(&p.initial_data[0..4], &1i32.to_le_bytes());
        assert_eq!(&p.initial_data[4..8], &(-2i32).to_le_bytes());
        assert_eq!(&p.initial_data[8..12], &16i32.to_le_bytes());
        assert_eq!(p.data_symbol("H"), Some(12));
        assert_eq!(&p.initial_data[12..14], &256u16.to_le_bytes());
        assert_eq!(p.data_symbol("B"), Some(16));
        assert_eq!(p.initial_data[16], 1);
        assert_eq!(p.initial_data[17], 255);
    }

    #[test]
    fn conditional_branches() {
        let p = assemble("top:\nCMP r0, #10\nBLT top\nBNE top\nBHS top\nHALT").unwrap();
        assert_eq!(
            p.instrs[1],
            Instr::BCond {
                cond: Cond::Lt,
                target: 0
            }
        );
        assert_eq!(
            p.instrs[2],
            Instr::BCond {
                cond: Cond::Ne,
                target: 0
            }
        );
        assert_eq!(
            p.instrs[3],
            Instr::BCond {
                cond: Cond::Hs,
                target: 0
            }
        );
    }

    #[test]
    fn memory_operand_forms() {
        let p =
            assemble("LDR r0, [r1]\nLDR r0, [r1, #8]\nLDR r0, [r1, r2]\nSTRH r3, [r4, #2]\nHALT")
                .unwrap();
        assert_eq!(
            p.instrs[0],
            Instr::Ldr {
                rt: Reg::R0,
                rn: Reg::R1,
                off: 0
            }
        );
        assert_eq!(
            p.instrs[1],
            Instr::Ldr {
                rt: Reg::R0,
                rn: Reg::R1,
                off: 8
            }
        );
        assert_eq!(
            p.instrs[2],
            Instr::LdrReg {
                rt: Reg::R0,
                rn: Reg::R1,
                rm: Reg::R2
            }
        );
        assert_eq!(
            p.instrs[3],
            Instr::Strh {
                rt: Reg::R3,
                rn: Reg::R4,
                off: 2
            }
        );
    }

    #[test]
    fn rejects_unknown_mnemonic() {
        let err = assemble("FROB r0, r1").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("FROB"));
    }

    #[test]
    fn rejects_duplicate_labels() {
        assert!(assemble("x:\nNOP\nx:\nHALT")
            .unwrap_err()
            .message
            .contains("duplicate"));
        assert!(assemble(".data\nd: .word 1\nd: .word 2\n.text\nHALT")
            .unwrap_err()
            .message
            .contains("duplicate"));
    }

    #[test]
    fn rejects_stacked_bare_data_labels() {
        let err = assemble(".data\nA:\nB:\n.word 7\n.text\nHALT").unwrap_err();
        assert!(err.message.contains("`A` has no directive"), "{err}");
    }

    #[test]
    fn rejects_unresolved_branch() {
        let err = assemble("B nowhere\nHALT").unwrap_err();
        assert!(err.message.contains("nowhere"));
    }

    #[test]
    fn rejects_bad_subword_params() {
        assert!(assemble("MUL_ASP32 r0, r1, #0").is_err());
        assert!(
            assemble("MUL_ASP8 r0, r1, #25").is_err(),
            "shift 25 + 8 bits exceeds 32 bits"
        );
        assert!(assemble("ADD_ASV5 r0, r1").is_err());
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = assemble("; leading\n\n  // also\nNOP @ trailing\nHALT ; done").unwrap();
        assert_eq!(p.instrs.len(), 2);
    }

    #[test]
    fn mov_equals_label_forward_data() {
        // .data after .text still resolves because of the data pre-pass.
        let p = assemble(".text\nMOV r0, =TBL\nHALT\n.data\nTBL: .word 7").unwrap();
        assert_eq!(
            p.instrs[0],
            Instr::MovImm {
                rd: Reg::R0,
                imm: 0
            }
        );
    }

    #[test]
    fn negative_and_hex_immediates() {
        let p = assemble("MOV r0, #-5\nMOV r1, #0xff\nADD r2, r2, #0b101\nHALT").unwrap();
        assert_eq!(
            p.instrs[0],
            Instr::MovImm {
                rd: Reg::R0,
                imm: -5
            }
        );
        assert_eq!(
            p.instrs[1],
            Instr::MovImm {
                rd: Reg::R1,
                imm: 255
            }
        );
        assert_eq!(
            p.instrs[2],
            Instr::AddImm {
                rd: Reg::R2,
                rn: Reg::R2,
                imm: 5
            }
        );
    }

    #[test]
    fn disassemble_reassemble_is_stable() {
        let src = r#"
        main:
            MOV r0, #0
            MOV r1, #16
        loop:
            ADD r0, r0, #1
            CMP r0, r1
            BLT loop
            SKM end
        end:
            HALT
        "#;
        let p1 = assemble(src).unwrap();
        let p2 = assemble(&p1.disassemble()).unwrap();
        assert_eq!(p1.instrs, p2.instrs);
    }
}
