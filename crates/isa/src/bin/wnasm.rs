//! `wnasm` — assemble, disassemble and inspect WN-RISC programs.
//!
//! ```sh
//! # Assemble to a packed binary image (8-byte little-endian words):
//! cargo run -p wn-isa --bin wnasm -- build program.s -o program.wnb
//!
//! # Disassemble a binary image back to text:
//! cargo run -p wn-isa --bin wnasm -- disasm program.wnb
//!
//! # Check a source file and print section statistics:
//! cargo run -p wn-isa --bin wnasm -- check program.s
//! ```

use std::env;
use std::fs;
use std::process::ExitCode;

use wn_isa::asm::assemble;
use wn_isa::encode::{decode_program, encode_program};

const USAGE: &str = "usage: wnasm <build|disasm|check> <file> [-o out]";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("wnasm: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "-o" {
            out = Some(it.next().ok_or("-o needs a path")?.clone());
        } else {
            positional.push(a.clone());
        }
    }
    let [cmd, file] = positional.as_slice() else {
        return Err(USAGE.to_string());
    };

    match cmd.as_str() {
        "build" => {
            let src = fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let program = assemble(&src).map_err(|e| e.to_string())?;
            let words = encode_program(&program.instrs);
            let mut bytes = Vec::with_capacity(words.len() * 8);
            for w in &words {
                bytes.extend_from_slice(&w.to_le_bytes());
            }
            let out = out.unwrap_or_else(|| format!("{file}.wnb"));
            fs::write(&out, &bytes).map_err(|e| format!("{out}: {e}"))?;
            println!(
                "{}: {} instructions, {} code bytes (Thumb-equivalent), {} data bytes -> {}",
                file,
                program.instrs.len(),
                program.code_size_bytes(),
                program.initial_data.len(),
                out
            );
            Ok(())
        }
        "disasm" => {
            let bytes = fs::read(file).map_err(|e| format!("{file}: {e}"))?;
            if bytes.len() % 8 != 0 {
                return Err(format!("{file}: not a whole number of 8-byte words"));
            }
            let words: Vec<u64> = bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
                .collect();
            let instrs = decode_program(&words).map_err(|(i, e)| format!("word {i}: {e}"))?;
            let program = wn_isa::Program {
                instrs,
                ..wn_isa::Program::default()
            };
            print!("{}", program.disassemble());
            Ok(())
        }
        "check" => {
            let src = fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let program = assemble(&src).map_err(|e| e.to_string())?;
            program.validate().map_err(|e| e.to_string())?;
            println!("{file}: OK");
            println!("  instructions : {}", program.instrs.len());
            println!("  code size    : {} bytes", program.code_size_bytes());
            println!("  data size    : {} bytes", program.initial_data.len());
            println!("  code symbols : {}", program.code_symbols.len());
            println!("  data symbols : {}", program.data_symbols.len());
            let wn = program
                .instrs
                .iter()
                .filter(|i| i.is_wn_extension())
                .count();
            println!("  WN extension instructions: {wn}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}
