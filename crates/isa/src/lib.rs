//! # wn-isa — the WN-RISC instruction set
//!
//! Instruction-set definition for the *What's Next* (WN) intermittent
//! computing architecture (Ganesan, San Miguel, Enright Jerger — HPCA 2019).
//!
//! WN-RISC is a clean 32-bit RISC instruction set modeled on the ARMv6-M
//! profile of the ARM Cortex-M0+ that the paper targets: sixteen 32-bit
//! registers, condition flags, a two-stage pipeline (modeled by the cycle
//! costs in `wn-sim`), no caches and an *iterative* multiplier. On top of
//! the conventional subset, WN-RISC adds the paper's three architectural
//! extensions:
//!
//! * [`Instr::MulAsp`] — **anytime subword pipelining** (`MUL_ASP<BITS>`):
//!   multiply a full-precision operand by a `BITS`-wide subword of the
//!   second operand, in `BITS` cycles instead of the full 16.
//! * [`Instr::AddAsv`] / [`Instr::SubAsv`] — **anytime subword
//!   vectorization** (`ADD_ASV<BITS>`): lane-wise addition/subtraction in
//!   which carries do not propagate across `BITS`-wide lanes, so one 32-bit
//!   operation processes the same-significance subword of several data
//!   elements at once.
//! * [`Instr::Skm`] — **skim points** (`SKM`): record a restore target in a
//!   dedicated non-volatile register, decoupling the checkpoint location
//!   from the recovery location after a power outage.
//!
//! The crate provides the instruction enum ([`Instr`]), registers
//! ([`Reg`]), condition codes ([`Cond`]), an assembled program container
//! ([`Program`]), a two-pass text assembler ([`asm::assemble`]), a
//! disassembler (the [`std::fmt::Display`] impl on [`Instr`]) and a packed
//! 64-bit binary encoding ([`encode`]).
//!
//! ```
//! use wn_isa::asm::assemble;
//!
//! let program = assemble(
//!     r#"
//!     .text
//!     main:
//!         MOV   r0, #5
//!         MOV   r1, #7
//!         MUL   r0, r0, r1
//!         HALT
//!     "#,
//! )?;
//! assert_eq!(program.instrs.len(), 4);
//! # Ok::<(), wn_isa::asm::AsmError>(())
//! ```

pub mod asm;
pub mod cond;
pub mod encode;
pub mod instr;
pub mod program;
pub mod reg;

pub use cond::Cond;
pub use instr::{Instr, LaneWidth};
pub use program::{DataItem, Program, ProgramBuilder};
pub use reg::Reg;

/// Number of architectural registers (R0–R15).
pub const NUM_REGS: usize = 16;

/// Maximum subword width accepted by `MUL_ASP` (the full multiplier width).
pub const MAX_ASP_BITS: u8 = 16;
