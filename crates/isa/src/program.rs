//! Assembled program container and a label-patching builder.

use std::collections::HashMap;
use std::fmt;

use crate::instr::Instr;

/// An item placed in the data segment by [`ProgramBuilder::data`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataItem {
    /// Little-endian 32-bit words.
    Words(Vec<i32>),
    /// Little-endian 16-bit halfwords.
    Halves(Vec<i16>),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// `len` zero bytes.
    Space(u32),
}

impl DataItem {
    /// Size of the item in bytes.
    pub fn size_bytes(&self) -> u32 {
        match self {
            DataItem::Words(w) => 4 * w.len() as u32,
            DataItem::Halves(h) => 2 * h.len() as u32,
            DataItem::Bytes(b) => b.len() as u32,
            DataItem::Space(n) => *n,
        }
    }

    /// Natural alignment of the item in bytes.
    pub fn align_bytes(&self) -> u32 {
        match self {
            DataItem::Words(_) => 4,
            DataItem::Halves(_) => 2,
            DataItem::Bytes(_) | DataItem::Space(_) => 1,
        }
    }
}

/// A fully assembled WN-RISC program: instructions plus an initial data
/// image and a symbol table.
///
/// Instruction addresses are indices into [`Program::instrs`]; data symbols
/// are byte addresses into the simulator's data memory, whose first
/// `initial_data.len()` bytes are initialized from [`Program::initial_data`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The instruction stream. Index 0 is the entry point unless
    /// [`Program::entry`] says otherwise.
    pub instrs: Vec<Instr>,
    /// Entry instruction index.
    pub entry: u32,
    /// Initial contents of data memory, starting at byte address 0.
    pub initial_data: Vec<u8>,
    /// Code labels: name → instruction index.
    pub code_symbols: HashMap<String, u32>,
    /// Data labels: name → byte address.
    pub data_symbols: HashMap<String, u32>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Total code size in bytes (Thumb-equivalent accounting; see
    /// [`Instr::size_bytes`]).
    pub fn code_size_bytes(&self) -> u32 {
        self.instrs.iter().map(Instr::size_bytes).sum()
    }

    /// Looks up a code label.
    pub fn code_symbol(&self, name: &str) -> Option<u32> {
        self.code_symbols.get(name).copied()
    }

    /// Looks up a data label (byte address).
    pub fn data_symbol(&self, name: &str) -> Option<u32> {
        self.data_symbols.get(name).copied()
    }

    /// Validates internal consistency: every static branch target and every
    /// code symbol must point inside the instruction stream.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] naming the first violation found.
    pub fn validate(&self) -> Result<(), ProgramError> {
        let len = self.instrs.len() as u32;
        if self.entry >= len && len > 0 {
            return Err(ProgramError::EntryOutOfRange {
                entry: self.entry,
                len,
            });
        }
        for (i, instr) in self.instrs.iter().enumerate() {
            if let Some(target) = instr.branch_target() {
                if target >= len {
                    return Err(ProgramError::TargetOutOfRange {
                        at: i as u32,
                        target,
                        len,
                    });
                }
            }
        }
        for (name, &idx) in &self.code_symbols {
            if idx > len {
                return Err(ProgramError::SymbolOutOfRange {
                    name: name.clone(),
                    index: idx,
                    len,
                });
            }
        }
        Ok(())
    }

    /// Renders the program as disassembly text, one instruction per line,
    /// annotated with labels. Branch targets are printed as label names
    /// (synthesizing `L<index>` labels where needed), so the output can be
    /// fed back through the assembler.
    pub fn disassemble(&self) -> String {
        let mut by_index: HashMap<u32, Vec<String>> = HashMap::new();
        for (name, &idx) in &self.code_symbols {
            by_index.entry(idx).or_default().push(name.clone());
        }
        // Every branch target needs some label to print.
        for instr in &self.instrs {
            if let Some(t) = instr.branch_target() {
                by_index.entry(t).or_insert_with(|| vec![format!("L{t}")]);
            }
        }
        let label_for = |idx: u32| -> String {
            let mut names = by_index.get(&idx).cloned().unwrap_or_default();
            names.sort_unstable();
            names
                .into_iter()
                .next()
                .unwrap_or_else(|| format!("L{idx}"))
        };
        let mut out = String::new();
        for (i, instr) in self.instrs.iter().enumerate() {
            if let Some(labels) = by_index.get(&(i as u32)) {
                let mut labels = labels.clone();
                labels.sort_unstable();
                for l in labels {
                    out.push_str(&l);
                    out.push_str(":\n");
                }
            }
            let text = match instr.branch_target() {
                Some(t) => {
                    let name = label_for(t);
                    match instr {
                        Instr::B { .. } => format!("B {name}"),
                        Instr::BCond { cond, .. } => {
                            let mut c = cond.to_string();
                            c.make_ascii_uppercase();
                            format!("B{c} {name}")
                        }
                        Instr::Bl { .. } => format!("BL {name}"),
                        Instr::Skm { .. } => format!("SKM {name}"),
                        _ => instr.to_string(),
                    }
                }
                None => instr.to_string(),
            };
            out.push_str(&format!("    {text}\n"));
        }
        out
    }
}

/// Errors detected by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The entry point is outside the instruction stream.
    EntryOutOfRange { entry: u32, len: u32 },
    /// A branch or skim target is outside the instruction stream.
    TargetOutOfRange { at: u32, target: u32, len: u32 },
    /// A code symbol points outside the instruction stream.
    SymbolOutOfRange { name: String, index: u32, len: u32 },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::EntryOutOfRange { entry, len } => {
                write!(
                    f,
                    "entry point {entry} outside program of {len} instructions"
                )
            }
            ProgramError::TargetOutOfRange { at, target, len } => write!(
                f,
                "instruction {at} branches to {target}, outside program of {len} instructions"
            ),
            ProgramError::SymbolOutOfRange { name, index, len } => write!(
                f,
                "code symbol `{name}` points at {index}, outside program of {len} instructions"
            ),
        }
    }
}

impl std::error::Error for ProgramError {}

/// Incremental builder for [`Program`], with forward-label support.
///
/// Used by both the assembler and the `wn-compiler` code generator. Labels
/// may be referenced before they are bound; [`ProgramBuilder::finish`]
/// patches all recorded fixups.
///
/// ```
/// use wn_isa::{Instr, ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// b.push(Instr::MovImm { rd: Reg::R0, imm: 1 });
/// let end = b.branch_to_label("end");
/// b.push(end);
/// b.push(Instr::MovImm { rd: Reg::R0, imm: 2 }); // skipped
/// b.bind_label("end");
/// b.push(Instr::Halt);
/// let program = b.finish()?;
/// assert_eq!(program.code_symbol("end"), Some(3));
/// # Ok::<(), wn_isa::program::BuildError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    data: Vec<u8>,
    code_symbols: HashMap<String, u32>,
    data_symbols: HashMap<String, u32>,
    fixups: Vec<(usize, String)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Current instruction index (where the next `push` will land).
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Appends an instruction, returning its index.
    pub fn push(&mut self, instr: Instr) -> u32 {
        let at = self.here();
        self.instrs.push(instr);
        at
    }

    /// Binds `name` to the current instruction index.
    ///
    /// Rebinding a label overwrites the previous binding; the assembler
    /// rejects duplicates before calling this.
    pub fn bind_label(&mut self, name: &str) {
        let here = self.here();
        self.code_symbols.insert(name.to_string(), here);
    }

    /// Returns whether a code label has been bound.
    pub fn is_bound(&self, name: &str) -> bool {
        self.code_symbols.contains_key(name)
    }

    /// Creates an instruction that branches to a (possibly not yet bound)
    /// label. The caller must `push` the returned instruction; the target
    /// is patched at [`ProgramBuilder::finish`].
    #[must_use = "the returned instruction must be pushed for the fixup to resolve"]
    pub fn branch_to_label(&mut self, name: &str) -> Instr {
        self.fixups.push((self.instrs.len(), name.to_string()));
        Instr::B { target: u32::MAX }
    }

    /// Like [`ProgramBuilder::branch_to_label`] but registers the fixup for
    /// an arbitrary branch-like instruction supplied by the caller (its
    /// placeholder target is replaced at finish time).
    #[must_use = "the returned instruction must be pushed for the fixup to resolve"]
    pub fn with_label_target(&mut self, mut instr: Instr, name: &str) -> Instr {
        debug_assert!(
            instr.branch_target().is_some(),
            "with_label_target requires a branch-like instruction"
        );
        instr.set_branch_target(u32::MAX);
        self.fixups.push((self.instrs.len(), name.to_string()));
        instr
    }

    /// Appends a data item to the data segment, padding for alignment, and
    /// binds `name` to its starting byte address. Returns that address.
    pub fn data(&mut self, name: &str, item: DataItem) -> u32 {
        let align = item.align_bytes();
        while !(self.data.len() as u32).is_multiple_of(align) {
            self.data.push(0);
        }
        let addr = self.data.len() as u32;
        match &item {
            DataItem::Words(w) => {
                for v in w {
                    self.data.extend_from_slice(&v.to_le_bytes());
                }
            }
            DataItem::Halves(h) => {
                for v in h {
                    self.data.extend_from_slice(&v.to_le_bytes());
                }
            }
            DataItem::Bytes(b) => self.data.extend_from_slice(b),
            DataItem::Space(n) => self.data.extend(std::iter::repeat_n(0, *n as usize)),
        }
        self.data_symbols.insert(name.to_string(), addr);
        addr
    }

    /// Looks up a data label defined so far.
    pub fn data_symbol(&self, name: &str) -> Option<u32> {
        self.data_symbols.get(name).copied()
    }

    /// Resolves all fixups and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnboundLabel`] if any referenced label was
    /// never bound, or a wrapped [`ProgramError`] if validation fails.
    pub fn finish(mut self) -> Result<Program, BuildError> {
        for (at, name) in &self.fixups {
            let target = *self
                .code_symbols
                .get(name)
                .ok_or_else(|| BuildError::UnboundLabel {
                    name: name.clone(),
                    at: *at as u32,
                })?;
            self.instrs[*at].set_branch_target(target);
        }
        let program = Program {
            instrs: self.instrs,
            entry: 0,
            initial_data: self.data,
            code_symbols: self.code_symbols,
            data_symbols: self.data_symbols,
        };
        program.validate().map_err(BuildError::Invalid)?;
        Ok(program)
    }
}

/// Errors produced by [`ProgramBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A branch referenced a label that was never bound.
    UnboundLabel { name: String, at: u32 },
    /// The finished program failed validation.
    Invalid(ProgramError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel { name, at } => {
                write!(f, "instruction {at} references unbound label `{name}`")
            }
            BuildError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn builder_resolves_forward_labels() {
        let mut b = ProgramBuilder::new();
        let br = b.branch_to_label("skip");
        b.push(br);
        b.push(Instr::Nop);
        b.bind_label("skip");
        b.push(Instr::Halt);
        let p = b.finish().unwrap();
        assert_eq!(p.instrs[0], Instr::B { target: 2 });
    }

    #[test]
    fn builder_resolves_backward_labels() {
        let mut b = ProgramBuilder::new();
        b.bind_label("top");
        b.push(Instr::Nop);
        let br = b.branch_to_label("top");
        b.push(br);
        let p = b.finish().unwrap();
        assert_eq!(p.instrs[1], Instr::B { target: 0 });
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let br = b.branch_to_label("nowhere");
        b.push(br);
        match b.finish() {
            Err(BuildError::UnboundLabel { name, at }) => {
                assert_eq!(name, "nowhere");
                assert_eq!(at, 0);
            }
            other => panic!("expected UnboundLabel, got {other:?}"),
        }
    }

    #[test]
    fn with_label_target_patches_skm() {
        let mut b = ProgramBuilder::new();
        let skm = b.with_label_target(Instr::Skm { target: 0 }, "end");
        b.push(skm);
        b.bind_label("end");
        b.push(Instr::Halt);
        let p = b.finish().unwrap();
        assert_eq!(p.instrs[0], Instr::Skm { target: 1 });
    }

    #[test]
    fn data_alignment_and_symbols() {
        let mut b = ProgramBuilder::new();
        b.data("bytes", DataItem::Bytes(vec![1, 2, 3]));
        let addr = b.data("words", DataItem::Words(vec![0x0403_0201]));
        assert_eq!(addr, 4, "word data must be 4-byte aligned");
        b.push(Instr::Halt);
        let p = b.finish().unwrap();
        assert_eq!(p.data_symbol("bytes"), Some(0));
        assert_eq!(p.data_symbol("words"), Some(4));
        assert_eq!(&p.initial_data[4..8], &[1, 2, 3, 4]);
    }

    #[test]
    fn data_item_sizes() {
        assert_eq!(DataItem::Words(vec![1, 2]).size_bytes(), 8);
        assert_eq!(DataItem::Halves(vec![1, 2, 3]).size_bytes(), 6);
        assert_eq!(DataItem::Bytes(vec![0; 5]).size_bytes(), 5);
        assert_eq!(DataItem::Space(17).size_bytes(), 17);
    }

    #[test]
    fn validate_rejects_out_of_range_target() {
        let p = Program {
            instrs: vec![Instr::B { target: 10 }],
            ..Program::default()
        };
        assert!(matches!(
            p.validate(),
            Err(ProgramError::TargetOutOfRange { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_entry() {
        let p = Program {
            instrs: vec![Instr::Halt],
            entry: 5,
            ..Program::default()
        };
        assert!(matches!(
            p.validate(),
            Err(ProgramError::EntryOutOfRange { .. })
        ));
    }

    #[test]
    fn code_size_sums_instruction_sizes() {
        let p = Program {
            instrs: vec![
                Instr::Nop,               // 2
                Instr::Skm { target: 2 }, // 4
                Instr::MovImm {
                    rd: Reg::R0,
                    imm: 100_000,
                }, // 4
            ],
            ..Program::default()
        };
        assert_eq!(p.code_size_bytes(), 10);
    }

    #[test]
    fn disassembly_contains_labels() {
        let mut b = ProgramBuilder::new();
        b.bind_label("main");
        b.push(Instr::Nop);
        b.bind_label("end");
        b.push(Instr::Halt);
        let text = b.finish().unwrap().disassemble();
        assert!(text.contains("main:"));
        assert!(text.contains("end:"));
        assert!(text.contains("NOP"));
    }
}
