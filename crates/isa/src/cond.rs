//! Condition codes for conditional branches.

use std::fmt;
use std::str::FromStr;

/// Processor condition flags, set by flag-setting data-processing
/// instructions (ARM-style NZCV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Flags {
    /// Negative: result bit 31 set.
    pub n: bool,
    /// Zero: result was zero.
    pub z: bool,
    /// Carry: unsigned overflow out of bit 31 (or shifter carry-out).
    pub c: bool,
    /// Overflow: signed overflow.
    pub v: bool,
}

impl Flags {
    /// Derives N and Z from a result, leaving C and V untouched.
    #[inline]
    pub fn set_nz(&mut self, result: u32) {
        self.n = (result as i32) < 0;
        self.z = result == 0;
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (bit, name) in [(self.n, 'N'), (self.z, 'Z'), (self.c, 'C'), (self.v, 'V')] {
            if bit {
                write!(f, "{name}")?;
            } else {
                write!(f, "{}", name.to_ascii_lowercase())?;
            }
        }
        Ok(())
    }
}

/// Branch condition, matching the ARMv6-M condition codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Equal (`Z == 1`).
    Eq = 0,
    /// Not equal (`Z == 0`).
    Ne = 1,
    /// Unsigned higher or same (`C == 1`).
    Hs = 2,
    /// Unsigned lower (`C == 0`).
    Lo = 3,
    /// Negative (`N == 1`).
    Mi = 4,
    /// Positive or zero (`N == 0`).
    Pl = 5,
    /// Signed overflow (`V == 1`).
    Vs = 6,
    /// No signed overflow (`V == 0`).
    Vc = 7,
    /// Unsigned higher (`C == 1 && Z == 0`).
    Hi = 8,
    /// Unsigned lower or same (`C == 0 || Z == 1`).
    Ls = 9,
    /// Signed greater than or equal (`N == V`).
    Ge = 10,
    /// Signed less than (`N != V`).
    Lt = 11,
    /// Signed greater than (`Z == 0 && N == V`).
    Gt = 12,
    /// Signed less than or equal (`Z == 1 || N != V`).
    Le = 13,
}

impl Cond {
    /// Every condition code, in encoding order.
    pub const ALL: [Cond; 14] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Hs,
        Cond::Lo,
        Cond::Mi,
        Cond::Pl,
        Cond::Vs,
        Cond::Vc,
        Cond::Hi,
        Cond::Ls,
        Cond::Ge,
        Cond::Lt,
        Cond::Gt,
        Cond::Le,
    ];

    /// Evaluates the condition against a set of flags.
    ///
    /// ```
    /// use wn_isa::cond::{Cond, Flags};
    /// let mut flags = Flags::default();
    /// flags.z = true;
    /// assert!(Cond::Eq.holds(flags));
    /// assert!(!Cond::Ne.holds(flags));
    /// ```
    #[inline]
    pub fn holds(self, f: Flags) -> bool {
        match self {
            Cond::Eq => f.z,
            Cond::Ne => !f.z,
            Cond::Hs => f.c,
            Cond::Lo => !f.c,
            Cond::Mi => f.n,
            Cond::Pl => !f.n,
            Cond::Vs => f.v,
            Cond::Vc => !f.v,
            Cond::Hi => f.c && !f.z,
            Cond::Ls => !f.c || f.z,
            Cond::Ge => f.n == f.v,
            Cond::Lt => f.n != f.v,
            Cond::Gt => !f.z && f.n == f.v,
            Cond::Le => f.z || f.n != f.v,
        }
    }

    /// The logically opposite condition.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Hs => Cond::Lo,
            Cond::Lo => Cond::Hs,
            Cond::Mi => Cond::Pl,
            Cond::Pl => Cond::Mi,
            Cond::Vs => Cond::Vc,
            Cond::Vc => Cond::Vs,
            Cond::Hi => Cond::Ls,
            Cond::Ls => Cond::Hi,
            Cond::Ge => Cond::Lt,
            Cond::Lt => Cond::Ge,
            Cond::Gt => Cond::Le,
            Cond::Le => Cond::Gt,
        }
    }

    /// Builds a condition from its encoding value.
    pub const fn from_index(index: u8) -> Option<Cond> {
        if (index as usize) < Cond::ALL.len() {
            Some(Cond::ALL[index as usize])
        } else {
            None
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Hs => "hs",
            Cond::Lo => "lo",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
            Cond::Vs => "vs",
            Cond::Vc => "vc",
            Cond::Hi => "hi",
            Cond::Ls => "ls",
            Cond::Ge => "ge",
            Cond::Lt => "lt",
            Cond::Gt => "gt",
            Cond::Le => "le",
        };
        write!(f, "{name}")
    }
}

/// Error returned when parsing a condition suffix fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCondError {
    text: String,
}

impl fmt::Display for ParseCondError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid condition code `{}`", self.text)
    }
}

impl std::error::Error for ParseCondError {}

impl FromStr for Cond {
    type Err = ParseCondError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "eq" => Ok(Cond::Eq),
            "ne" => Ok(Cond::Ne),
            "hs" | "cs" => Ok(Cond::Hs),
            "lo" | "cc" => Ok(Cond::Lo),
            "mi" => Ok(Cond::Mi),
            "pl" => Ok(Cond::Pl),
            "vs" => Ok(Cond::Vs),
            "vc" => Ok(Cond::Vc),
            "hi" => Ok(Cond::Hi),
            "ls" => Ok(Cond::Ls),
            "ge" => Ok(Cond::Ge),
            "lt" => Ok(Cond::Lt),
            "gt" => Ok(Cond::Gt),
            "le" => Ok(Cond::Le),
            _ => Err(ParseCondError {
                text: s.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(n: bool, z: bool, c: bool, v: bool) -> Flags {
        Flags { n, z, c, v }
    }

    #[test]
    fn eq_ne() {
        assert!(Cond::Eq.holds(flags(false, true, false, false)));
        assert!(Cond::Ne.holds(flags(false, false, false, false)));
    }

    #[test]
    fn unsigned_comparisons() {
        // 5 cmp 3: no borrow -> C=1, Z=0.
        let f = flags(false, false, true, false);
        assert!(Cond::Hs.holds(f));
        assert!(Cond::Hi.holds(f));
        assert!(!Cond::Lo.holds(f));
        assert!(!Cond::Ls.holds(f));
    }

    #[test]
    fn signed_comparisons() {
        // -1 cmp 1: N=1, V=0 -> Lt.
        let f = flags(true, false, false, false);
        assert!(Cond::Lt.holds(f));
        assert!(Cond::Le.holds(f));
        assert!(!Cond::Ge.holds(f));
        assert!(!Cond::Gt.holds(f));
    }

    #[test]
    fn negation_is_involutive_and_opposite() {
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), c);
            // A condition and its negation never hold simultaneously.
            for bits in 0..16u8 {
                let f = flags(bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0);
                assert_ne!(c.holds(f), c.negate().holds(f), "cond {c} flags {f}");
            }
        }
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(c.to_string().parse::<Cond>().unwrap(), c);
        }
        assert_eq!("CS".parse::<Cond>().unwrap(), Cond::Hs);
        assert_eq!("cc".parse::<Cond>().unwrap(), Cond::Lo);
        assert!("xx".parse::<Cond>().is_err());
    }

    #[test]
    fn from_index_covers_all() {
        for (i, c) in Cond::ALL.iter().enumerate() {
            assert_eq!(Cond::from_index(i as u8), Some(*c));
        }
        assert_eq!(Cond::from_index(14), None);
    }

    #[test]
    fn flags_display_nonempty() {
        assert_eq!(Flags::default().to_string(), "nzcv");
        assert_eq!(flags(true, true, true, true).to_string(), "NZCV");
    }

    #[test]
    fn set_nz() {
        let mut f = Flags::default();
        f.set_nz(0);
        assert!(f.z && !f.n);
        f.set_nz(0x8000_0000);
        assert!(!f.z && f.n);
    }
}
