//! The WN-RISC instruction enum and its disassembly.

use std::fmt;

use crate::cond::Cond;
use crate::reg::Reg;

/// Lane width for anytime subword vectorization (`*_ASV<BITS>`).
///
/// A 32-bit ALU operation is partitioned into independent lanes of this
/// width by muxes inserted into the carry chain (paper §III-B, Fig. 8):
/// carries never cross a lane boundary.
///
/// * `W4` — eight 4-bit lanes (`ADD_ASV4`),
/// * `W8` — four 8-bit lanes (`ADD_ASV8`),
/// * `W16` — two 16-bit lanes (`ADD_ASV16`, used for *provisioned* 8-bit
///   subword addition where each subword is allocated double width).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum LaneWidth {
    /// Eight 4-bit lanes.
    W4 = 4,
    /// Four 8-bit lanes.
    W8 = 8,
    /// Two 16-bit lanes.
    W16 = 16,
}

impl LaneWidth {
    /// All lane widths.
    pub const ALL: [LaneWidth; 3] = [LaneWidth::W4, LaneWidth::W8, LaneWidth::W16];

    /// Lane width in bits.
    #[inline]
    pub const fn bits(self) -> u32 {
        self as u32
    }

    /// Number of lanes in a 32-bit word.
    #[inline]
    pub const fn lanes(self) -> u32 {
        32 / self.bits()
    }

    /// Builds a lane width from a bit count (4, 8 or 16).
    pub const fn from_bits(bits: u8) -> Option<LaneWidth> {
        match bits {
            4 => Some(LaneWidth::W4),
            8 => Some(LaneWidth::W8),
            16 => Some(LaneWidth::W16),
            _ => None,
        }
    }
}

impl fmt::Display for LaneWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bits())
    }
}

/// A WN-RISC instruction.
///
/// Branch targets are *instruction indices* into [`crate::Program::instrs`]
/// (the simulator's program counter advances in whole instructions; code
/// size in bytes is reported separately via [`Instr::size_bytes`]).
///
/// Cycle costs are owned by the simulator's cycle model (`wn-sim`), not by
/// this enum, so alternative cost models can be explored without touching
/// the ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    // ---- moves -----------------------------------------------------------
    /// `MOV rd, #imm` — load an immediate.
    MovImm { rd: Reg, imm: i32 },
    /// `MOV rd, rm` — register move.
    Mov { rd: Reg, rm: Reg },
    /// `MVN rd, rm` — bitwise NOT.
    Mvn { rd: Reg, rm: Reg },

    // ---- arithmetic ------------------------------------------------------
    /// `ADD rd, rn, rm`.
    Add { rd: Reg, rn: Reg, rm: Reg },
    /// `ADD rd, rn, #imm`.
    AddImm { rd: Reg, rn: Reg, imm: i32 },
    /// `SUB rd, rn, rm`.
    Sub { rd: Reg, rn: Reg, rm: Reg },
    /// `SUB rd, rn, #imm`.
    SubImm { rd: Reg, rn: Reg, imm: i32 },
    /// `RSB rd, rn` — reverse subtract from zero (negate).
    Rsb { rd: Reg, rn: Reg },

    // ---- multiply --------------------------------------------------------
    /// `MUL rd, rn, rm` — full iterative multiply (`rd = rn * rm`).
    ///
    /// On the modeled Cortex-M0+ the multiplier is iterative: one multiplier
    /// bit per cycle, 16 cycles for the 16×16 full-precision case the paper
    /// evaluates.
    Mul { rd: Reg, rn: Reg, rm: Reg },
    /// `MUL_ASP<BITS> rd, rn, rm, #shift` — anytime subword-pipelined
    /// multiply.
    ///
    /// Computes `rd = rn * ((rm & mask(bits)) << shift)` where the low
    /// `bits` bits of `rm` hold the subword (already extracted by the
    /// preceding subword load) and `shift` is its significance in bits.
    /// Takes `bits` cycles on the iterative multiplier instead of the
    /// full 16.
    ///
    /// The paper's listings write the third operand as a subword
    /// *position* (`MUL_ASP8 …, #1` = the second 8-bit subword); here the
    /// operand is the raw shift (`#8`), which also expresses the
    /// top-aligned levels used for subword sizes that do not divide the
    /// data width (Fig. 15's 3-bit subwords).
    MulAsp {
        rd: Reg,
        rn: Reg,
        rm: Reg,
        bits: u8,
        shift: u8,
    },

    // ---- anytime subword vectorization ------------------------------------
    /// `ADD_ASV<BITS> rd, rn, rm` — lane-wise addition; carries do not cross
    /// lane boundaries (paper Fig. 8).
    AddAsv {
        rd: Reg,
        rn: Reg,
        rm: Reg,
        lanes: LaneWidth,
    },
    /// `SUB_ASV<BITS> rd, rn, rm` — lane-wise subtraction; borrows do not
    /// cross lane boundaries.
    SubAsv {
        rd: Reg,
        rn: Reg,
        rm: Reg,
        lanes: LaneWidth,
    },

    // ---- logical / shifts --------------------------------------------------
    /// `AND rd, rn, rm`.
    And { rd: Reg, rn: Reg, rm: Reg },
    /// `ORR rd, rn, rm`.
    Orr { rd: Reg, rn: Reg, rm: Reg },
    /// `EOR rd, rn, rm`.
    Eor { rd: Reg, rn: Reg, rm: Reg },
    /// `BIC rd, rn, rm` — bit clear (`rd = rn & !rm`).
    Bic { rd: Reg, rn: Reg, rm: Reg },
    /// `AND rd, rn, #imm`.
    AndImm { rd: Reg, rn: Reg, imm: i32 },
    /// `LSL rd, rn, #sh` — logical shift left by immediate.
    LslImm { rd: Reg, rn: Reg, sh: u8 },
    /// `LSR rd, rn, #sh` — logical shift right by immediate.
    LsrImm { rd: Reg, rn: Reg, sh: u8 },
    /// `ASR rd, rn, #sh` — arithmetic shift right by immediate.
    AsrImm { rd: Reg, rn: Reg, sh: u8 },
    /// `LSL rd, rn, rm` — logical shift left by register.
    LslReg { rd: Reg, rn: Reg, rm: Reg },
    /// `LSR rd, rn, rm` — logical shift right by register.
    LsrReg { rd: Reg, rn: Reg, rm: Reg },
    /// `ASR rd, rn, rm` — arithmetic shift right by register.
    AsrReg { rd: Reg, rn: Reg, rm: Reg },

    // ---- compare ----------------------------------------------------------
    /// `CMP rn, rm` — compare, sets flags from `rn - rm`.
    Cmp { rn: Reg, rm: Reg },
    /// `CMP rn, #imm`.
    CmpImm { rn: Reg, imm: i32 },
    /// `TST rn, rm` — sets N/Z from `rn & rm`.
    Tst { rn: Reg, rm: Reg },

    // ---- memory ------------------------------------------------------------
    /// `LDR rt, [rn, #off]` — load 32-bit word.
    Ldr { rt: Reg, rn: Reg, off: i32 },
    /// `LDR rt, [rn, rm]` — load 32-bit word, register offset.
    LdrReg { rt: Reg, rn: Reg, rm: Reg },
    /// `LDRH rt, [rn, #off]` — load 16-bit halfword, zero-extended.
    Ldrh { rt: Reg, rn: Reg, off: i32 },
    /// `LDRH rt, [rn, rm]`.
    LdrhReg { rt: Reg, rn: Reg, rm: Reg },
    /// `LDRSH rt, [rn, rm]` — load 16-bit halfword, sign-extended.
    LdrshReg { rt: Reg, rn: Reg, rm: Reg },
    /// `LDRB rt, [rn, #off]` — load byte, zero-extended.
    Ldrb { rt: Reg, rn: Reg, off: i32 },
    /// `LDRB rt, [rn, rm]`.
    LdrbReg { rt: Reg, rn: Reg, rm: Reg },
    /// `STR rt, [rn, #off]` — store 32-bit word.
    Str { rt: Reg, rn: Reg, off: i32 },
    /// `STR rt, [rn, rm]`.
    StrReg { rt: Reg, rn: Reg, rm: Reg },
    /// `STRH rt, [rn, #off]` — store low 16 bits.
    Strh { rt: Reg, rn: Reg, off: i32 },
    /// `STRH rt, [rn, rm]`.
    StrhReg { rt: Reg, rn: Reg, rm: Reg },
    /// `STRB rt, [rn, #off]` — store low byte.
    Strb { rt: Reg, rn: Reg, off: i32 },
    /// `STRB rt, [rn, rm]`.
    StrbReg { rt: Reg, rn: Reg, rm: Reg },

    // ---- control flow -------------------------------------------------------
    /// `B target` — unconditional branch (target = instruction index).
    B { target: u32 },
    /// `B<cond> target` — conditional branch.
    BCond { cond: Cond, target: u32 },
    /// `BL target` — branch and link (`lr = return index`).
    Bl { target: u32 },
    /// `BX rm` — branch to register (returns).
    Bx { rm: Reg },

    // ---- What's Next extensions ----------------------------------------------
    /// `SKM target` — **skim point** (paper §III-C).
    ///
    /// Writes `target` into the dedicated non-volatile SKM register,
    /// indicating that an acceptable approximate result is available from
    /// this point on. After a power outage, the restore logic jumps to the
    /// skim target instead of the checkpointed PC, committing the current
    /// approximate output as-is and moving on.
    Skm { target: u32 },

    // ---- misc ------------------------------------------------------------------
    /// `NOP`.
    Nop,
    /// `HALT` — end of program (models the device signalling completion).
    Halt,
}

impl Instr {
    /// Code size in bytes, for the paper's code-size accounting (§III-A
    /// reports ≈1 KB growth from precise to anytime 4-bit for the largest
    /// benchmark).
    ///
    /// Conventional instructions are 2 bytes (Thumb-equivalent); WN
    /// extension instructions and wide immediates are 4 bytes.
    pub fn size_bytes(&self) -> u32 {
        match self {
            Instr::MulAsp { .. }
            | Instr::AddAsv { .. }
            | Instr::SubAsv { .. }
            | Instr::Skm { .. }
            | Instr::Bl { .. } => 4,
            Instr::MovImm { imm, .. }
            | Instr::AddImm { imm, .. }
            | Instr::SubImm { imm, .. }
            | Instr::AndImm { imm, .. }
            | Instr::CmpImm { imm, .. } => {
                if (0..=255).contains(imm) {
                    2
                } else {
                    4
                }
            }
            // Thumb immediate-offset loads/stores encode a small scaled
            // unsigned offset (imm5); anything beyond needs a wide
            // encoding or an extra instruction.
            Instr::Ldr { off, .. }
            | Instr::Ldrh { off, .. }
            | Instr::Ldrb { off, .. }
            | Instr::Str { off, .. }
            | Instr::Strh { off, .. }
            | Instr::Strb { off, .. } => {
                if (0..=124).contains(off) {
                    2
                } else {
                    4
                }
            }
            _ => 2,
        }
    }

    /// True for instructions introduced by the What's Next architecture.
    pub fn is_wn_extension(&self) -> bool {
        matches!(
            self,
            Instr::MulAsp { .. } | Instr::AddAsv { .. } | Instr::SubAsv { .. } | Instr::Skm { .. }
        )
    }

    /// True for memory accesses (loads and stores).
    pub fn is_memory(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// True for load instructions.
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            Instr::Ldr { .. }
                | Instr::LdrReg { .. }
                | Instr::Ldrh { .. }
                | Instr::LdrhReg { .. }
                | Instr::LdrshReg { .. }
                | Instr::Ldrb { .. }
                | Instr::LdrbReg { .. }
        )
    }

    /// True for store instructions.
    pub fn is_store(&self) -> bool {
        matches!(
            self,
            Instr::Str { .. }
                | Instr::StrReg { .. }
                | Instr::Strh { .. }
                | Instr::StrhReg { .. }
                | Instr::Strb { .. }
                | Instr::StrbReg { .. }
        )
    }

    /// True for control-flow instructions (branches).
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Instr::B { .. } | Instr::BCond { .. } | Instr::Bl { .. } | Instr::Bx { .. }
        )
    }

    /// The static branch target, if this instruction has one.
    pub fn branch_target(&self) -> Option<u32> {
        match self {
            Instr::B { target }
            | Instr::BCond { target, .. }
            | Instr::Bl { target }
            | Instr::Skm { target } => Some(*target),
            _ => None,
        }
    }

    /// Rewrites the static branch target, if this instruction has one.
    pub(crate) fn set_branch_target(&mut self, new: u32) {
        match self {
            Instr::B { target }
            | Instr::BCond { target, .. }
            | Instr::Bl { target }
            | Instr::Skm { target } => *target = new,
            _ => {}
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::MovImm { rd, imm } => write!(f, "MOV {rd}, #{imm}"),
            Instr::Mov { rd, rm } => write!(f, "MOV {rd}, {rm}"),
            Instr::Mvn { rd, rm } => write!(f, "MVN {rd}, {rm}"),
            Instr::Add { rd, rn, rm } => write!(f, "ADD {rd}, {rn}, {rm}"),
            Instr::AddImm { rd, rn, imm } => write!(f, "ADD {rd}, {rn}, #{imm}"),
            Instr::Sub { rd, rn, rm } => write!(f, "SUB {rd}, {rn}, {rm}"),
            Instr::SubImm { rd, rn, imm } => write!(f, "SUB {rd}, {rn}, #{imm}"),
            Instr::Rsb { rd, rn } => write!(f, "RSB {rd}, {rn}"),
            Instr::Mul { rd, rn, rm } => write!(f, "MUL {rd}, {rn}, {rm}"),
            Instr::MulAsp {
                rd,
                rn,
                rm,
                bits,
                shift,
            } => {
                write!(f, "MUL_ASP{bits} {rd}, {rn}, {rm}, #{shift}")
            }
            Instr::AddAsv { rd, rn, rm, lanes } => write!(f, "ADD_ASV{lanes} {rd}, {rn}, {rm}"),
            Instr::SubAsv { rd, rn, rm, lanes } => write!(f, "SUB_ASV{lanes} {rd}, {rn}, {rm}"),
            Instr::And { rd, rn, rm } => write!(f, "AND {rd}, {rn}, {rm}"),
            Instr::Orr { rd, rn, rm } => write!(f, "ORR {rd}, {rn}, {rm}"),
            Instr::Eor { rd, rn, rm } => write!(f, "EOR {rd}, {rn}, {rm}"),
            Instr::Bic { rd, rn, rm } => write!(f, "BIC {rd}, {rn}, {rm}"),
            Instr::AndImm { rd, rn, imm } => write!(f, "AND {rd}, {rn}, #{imm}"),
            Instr::LslImm { rd, rn, sh } => write!(f, "LSL {rd}, {rn}, #{sh}"),
            Instr::LsrImm { rd, rn, sh } => write!(f, "LSR {rd}, {rn}, #{sh}"),
            Instr::AsrImm { rd, rn, sh } => write!(f, "ASR {rd}, {rn}, #{sh}"),
            Instr::LslReg { rd, rn, rm } => write!(f, "LSL {rd}, {rn}, {rm}"),
            Instr::LsrReg { rd, rn, rm } => write!(f, "LSR {rd}, {rn}, {rm}"),
            Instr::AsrReg { rd, rn, rm } => write!(f, "ASR {rd}, {rn}, {rm}"),
            Instr::Cmp { rn, rm } => write!(f, "CMP {rn}, {rm}"),
            Instr::CmpImm { rn, imm } => write!(f, "CMP {rn}, #{imm}"),
            Instr::Tst { rn, rm } => write!(f, "TST {rn}, {rm}"),
            Instr::Ldr { rt, rn, off } => write!(f, "LDR {rt}, [{rn}, #{off}]"),
            Instr::LdrReg { rt, rn, rm } => write!(f, "LDR {rt}, [{rn}, {rm}]"),
            Instr::Ldrh { rt, rn, off } => write!(f, "LDRH {rt}, [{rn}, #{off}]"),
            Instr::LdrhReg { rt, rn, rm } => write!(f, "LDRH {rt}, [{rn}, {rm}]"),
            Instr::LdrshReg { rt, rn, rm } => write!(f, "LDRSH {rt}, [{rn}, {rm}]"),
            Instr::Ldrb { rt, rn, off } => write!(f, "LDRB {rt}, [{rn}, #{off}]"),
            Instr::LdrbReg { rt, rn, rm } => write!(f, "LDRB {rt}, [{rn}, {rm}]"),
            Instr::Str { rt, rn, off } => write!(f, "STR {rt}, [{rn}, #{off}]"),
            Instr::StrReg { rt, rn, rm } => write!(f, "STR {rt}, [{rn}, {rm}]"),
            Instr::Strh { rt, rn, off } => write!(f, "STRH {rt}, [{rn}, #{off}]"),
            Instr::StrhReg { rt, rn, rm } => write!(f, "STRH {rt}, [{rn}, {rm}]"),
            Instr::Strb { rt, rn, off } => write!(f, "STRB {rt}, [{rn}, #{off}]"),
            Instr::StrbReg { rt, rn, rm } => write!(f, "STRB {rt}, [{rn}, {rm}]"),
            Instr::B { target } => write!(f, "B {target}"),
            Instr::BCond { cond, target } => {
                let mut name = cond.to_string();
                name.make_ascii_uppercase();
                write!(f, "B{name} {target}")
            }
            Instr::Bl { target } => write!(f, "BL {target}"),
            Instr::Bx { rm } => write!(f, "BX {rm}"),
            Instr::Skm { target } => write!(f, "SKM {target}"),
            Instr::Nop => write!(f, "NOP"),
            Instr::Halt => write!(f, "HALT"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_width_arithmetic() {
        assert_eq!(LaneWidth::W4.lanes(), 8);
        assert_eq!(LaneWidth::W8.lanes(), 4);
        assert_eq!(LaneWidth::W16.lanes(), 2);
        for lw in LaneWidth::ALL {
            assert_eq!(lw.bits() * lw.lanes(), 32);
            assert_eq!(LaneWidth::from_bits(lw.bits() as u8), Some(lw));
        }
        assert_eq!(LaneWidth::from_bits(5), None);
    }

    #[test]
    fn classification() {
        let mul_asp = Instr::MulAsp {
            rd: Reg::R0,
            rn: Reg::R1,
            rm: Reg::R2,
            bits: 8,
            shift: 8,
        };
        assert!(mul_asp.is_wn_extension());
        assert!(!mul_asp.is_memory());

        let ldr = Instr::Ldr {
            rt: Reg::R0,
            rn: Reg::R1,
            off: 0,
        };
        assert!(ldr.is_load() && ldr.is_memory() && !ldr.is_store());

        let strb = Instr::Strb {
            rt: Reg::R0,
            rn: Reg::R1,
            off: 4,
        };
        assert!(strb.is_store() && strb.is_memory() && !strb.is_load());

        let b = Instr::B { target: 3 };
        assert!(b.is_branch());
        assert_eq!(b.branch_target(), Some(3));

        let skm = Instr::Skm { target: 9 };
        assert!(skm.is_wn_extension());
        assert_eq!(skm.branch_target(), Some(9));
        assert!(!skm.is_branch());
    }

    #[test]
    fn size_accounting() {
        assert_eq!(Instr::Nop.size_bytes(), 2);
        assert_eq!(
            Instr::MovImm {
                rd: Reg::R0,
                imm: 200
            }
            .size_bytes(),
            2
        );
        assert_eq!(
            Instr::MovImm {
                rd: Reg::R0,
                imm: 70000
            }
            .size_bytes(),
            4
        );
        assert_eq!(
            Instr::MovImm {
                rd: Reg::R0,
                imm: -1
            }
            .size_bytes(),
            4
        );
        assert_eq!(Instr::Skm { target: 0 }.size_bytes(), 4);
        assert_eq!(
            Instr::Ldr {
                rt: Reg::R0,
                rn: Reg::R1,
                off: 64
            }
            .size_bytes(),
            2
        );
        assert_eq!(
            Instr::Ldr {
                rt: Reg::R0,
                rn: Reg::R1,
                off: 1024
            }
            .size_bytes(),
            4
        );
        assert_eq!(
            Instr::Str {
                rt: Reg::R0,
                rn: Reg::R1,
                off: -8
            }
            .size_bytes(),
            4
        );
        assert_eq!(
            Instr::AddAsv {
                rd: Reg::R0,
                rn: Reg::R1,
                rm: Reg::R2,
                lanes: LaneWidth::W8
            }
            .size_bytes(),
            4
        );
    }

    #[test]
    fn retarget() {
        let mut b = Instr::BCond {
            cond: Cond::Ne,
            target: 1,
        };
        b.set_branch_target(42);
        assert_eq!(b.branch_target(), Some(42));

        let mut add = Instr::Add {
            rd: Reg::R0,
            rn: Reg::R0,
            rm: Reg::R0,
        };
        add.set_branch_target(42); // no-op
        assert_eq!(add.branch_target(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Instr::MulAsp {
                rd: Reg::R4,
                rn: Reg::R4,
                rm: Reg::R5,
                bits: 8,
                shift: 8
            }
            .to_string(),
            "MUL_ASP8 r4, r4, r5, #8"
        );
        assert_eq!(
            Instr::AddAsv {
                rd: Reg::R3,
                rn: Reg::R3,
                rm: Reg::R4,
                lanes: LaneWidth::W8
            }
            .to_string(),
            "ADD_ASV8 r3, r3, r4"
        );
        assert_eq!(Instr::Skm { target: 17 }.to_string(), "SKM 17");
        assert_eq!(
            Instr::BCond {
                cond: Cond::Lt,
                target: 2
            }
            .to_string(),
            "BLT 2"
        );
    }
}
