//! Error metrics between a golden output and an approximate output.

/// Root mean square error between `golden` and `approx`.
///
/// Returns `None` when the slices are empty or of different lengths.
pub fn rmse(golden: &[f64], approx: &[f64]) -> Option<f64> {
    if golden.is_empty() || golden.len() != approx.len() {
        return None;
    }
    let sum_sq: f64 = golden
        .iter()
        .zip(approx)
        .map(|(g, a)| {
            let d = g - a;
            d * d
        })
        .sum();
    Some((sum_sq / golden.len() as f64).sqrt())
}

/// Normalized RMSE as a percentage — the paper's quality metric (§IV).
///
/// Normalization is by the *range* of the golden output
/// (`max − min`). When the golden output is constant its range is zero,
/// so no normalization exists: exact agreement is still 0 %, but any
/// disagreement is unnormalizable and reported as `None` rather than an
/// arbitrary flat percentage that would hide the disagreement's
/// magnitude (a degenerate case the benchmarks never hit).
///
/// Returns `None` when the slices are empty, of different lengths, or a
/// constant golden output disagrees with the approximation.
///
/// ```
/// use wn_quality::metrics::nrmse_percent;
/// let golden = [0.0, 100.0];
/// let approx = [0.0, 90.0];
/// // RMSE = sqrt(100/2) ≈ 7.07, range = 100 → ≈ 7.07 %
/// let e = nrmse_percent(&golden, &approx).unwrap();
/// assert!((e - 7.0710678).abs() < 1e-6);
/// ```
pub fn nrmse_percent(golden: &[f64], approx: &[f64]) -> Option<f64> {
    let rmse = rmse(golden, approx)?;
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &g in golden {
        min = min.min(g);
        max = max.max(g);
    }
    let range = max - min;
    if range == 0.0 {
        // Constant golden: 0 % on exact agreement, otherwise there is
        // no scale to normalize by — unnormalizable, not "100 %".
        return if rmse == 0.0 { Some(0.0) } else { None };
    }
    Some(100.0 * rmse / range)
}

/// Mean absolute error.
///
/// Returns `None` when the slices are empty or of different lengths.
pub fn mae(golden: &[f64], approx: &[f64]) -> Option<f64> {
    if golden.is_empty() || golden.len() != approx.len() {
        return None;
    }
    let sum: f64 = golden.iter().zip(approx).map(|(g, a)| (g - a).abs()).sum();
    Some(sum / golden.len() as f64)
}

/// Maximum absolute error.
///
/// Returns `None` when the slices are empty or of different lengths.
pub fn max_abs_error(golden: &[f64], approx: &[f64]) -> Option<f64> {
    if golden.is_empty() || golden.len() != approx.len() {
        return None;
    }
    golden
        .iter()
        .zip(approx)
        .map(|(g, a)| (g - a).abs())
        .fold(None, |acc: Option<f64>, d| {
            Some(acc.map_or(d, |m| m.max(d)))
        })
}

/// Mean absolute *percentage* error relative to the golden values, used
/// for the glucose case study (the paper reports "average error of only
/// 7.5 %" against readings, §II). Golden zeros are skipped.
///
/// Returns `None` when the slices are empty, of different lengths, or all
/// golden values are zero.
pub fn mape_percent(golden: &[f64], approx: &[f64]) -> Option<f64> {
    if golden.is_empty() || golden.len() != approx.len() {
        return None;
    }
    let mut sum = 0.0;
    let mut n = 0usize;
    for (g, a) in golden.iter().zip(approx) {
        if *g != 0.0 {
            sum += ((g - a) / g).abs();
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(100.0 * sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_outputs_have_zero_error() {
        let v = [1.0, 2.0, 3.5, -7.0];
        assert_eq!(rmse(&v, &v), Some(0.0));
        assert_eq!(nrmse_percent(&v, &v), Some(0.0));
        assert_eq!(mae(&v, &v), Some(0.0));
        assert_eq!(max_abs_error(&v, &v), Some(0.0));
    }

    #[test]
    fn mismatched_lengths_are_none() {
        assert_eq!(rmse(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(nrmse_percent(&[], &[]), None);
        assert_eq!(mae(&[1.0], &[]), None);
        assert_eq!(max_abs_error(&[], &[1.0]), None);
        assert_eq!(mape_percent(&[1.0], &[]), None);
    }

    #[test]
    fn rmse_known_value() {
        // errors: 3, 4 → rmse = sqrt((9+16)/2) = sqrt(12.5)
        let e = rmse(&[0.0, 0.0], &[3.0, 4.0]).unwrap();
        assert!((e - 12.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn nrmse_constant_golden() {
        // Exact agreement on a constant golden is a clean 0 %…
        assert_eq!(nrmse_percent(&[5.0, 5.0], &[5.0, 5.0]), Some(0.0));
        // …but disagreement has no range to normalize by: `None`, and
        // independent of the disagreement's magnitude.
        assert_eq!(nrmse_percent(&[5.0, 5.0], &[5.0, 6.0]), None);
        assert_eq!(nrmse_percent(&[5.0, 5.0], &[5.0, 1e9]), None);
    }

    #[test]
    fn max_abs_error_finds_worst() {
        let e = max_abs_error(&[0.0, 0.0, 0.0], &[1.0, -5.0, 2.0]).unwrap();
        assert_eq!(e, 5.0);
    }

    #[test]
    fn mape_skips_zero_golden() {
        let e = mape_percent(&[0.0, 100.0], &[50.0, 90.0]).unwrap();
        assert!((e - 10.0).abs() < 1e-12);
        assert_eq!(mape_percent(&[0.0], &[1.0]), None);
    }

    proptest! {
        #[test]
        fn nrmse_nonnegative_and_scale_invariant(
            golden in proptest::collection::vec(-1000.0f64..1000.0, 2..50),
            noise in proptest::collection::vec(-10.0f64..10.0, 2..50),
            scale in 0.5f64..10.0,
        ) {
            let n = golden.len().min(noise.len());
            let golden = &golden[..n];
            let approx: Vec<f64> = golden.iter().zip(&noise[..n]).map(|(g, e)| g + e).collect();
            if let Some(err) = nrmse_percent(golden, &approx) {
                prop_assert!(err >= 0.0);
                // Scaling both signals leaves NRMSE unchanged (range scales
                // with RMSE).
                let g2: Vec<f64> = golden.iter().map(|g| g * scale).collect();
                let a2: Vec<f64> = approx.iter().map(|a| a * scale).collect();
                if let Some(err2) = nrmse_percent(&g2, &a2) {
                    prop_assert!((err - err2).abs() < 1e-6, "{err} vs {err2}");
                }
            }
        }

        #[test]
        fn rmse_at_least_mae(
            pairs in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..40)
        ) {
            let golden: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let approx: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let r = rmse(&golden, &approx).unwrap();
            let m = mae(&golden, &approx).unwrap();
            let mx = max_abs_error(&golden, &approx).unwrap();
            prop_assert!(r + 1e-12 >= m, "rmse {r} < mae {m}");
            prop_assert!(mx + 1e-12 >= r, "max {mx} < rmse {r}");
        }
    }
}
