//! Runtime–quality curves (paper Fig. 9).

use std::fmt;

/// One sample of a runtime–quality curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Cycles elapsed when the output was sampled.
    pub cycles: u64,
    /// Runtime normalized to the precise baseline (x-axis of Fig. 9).
    pub normalized_runtime: f64,
    /// Output NRMSE in percent at that moment (y-axis of Fig. 9).
    pub nrmse_percent: f64,
}

/// A runtime–quality trade-off curve: output error sampled over the course
/// of an anytime execution.
///
/// The y-value at time *t* answers: *"what would the error be if a power
/// outage halted the application at this moment and the result were taken
/// as-is?"* (paper §V-A).
///
/// ```
/// use wn_quality::QualityCurve;
/// let mut curve = QualityCurve::new("matadd-8bit");
/// curve.push(100, 0.5, 12.0);
/// curve.push(200, 1.0, 0.0);
/// assert_eq!(curve.final_error(), Some(0.0));
/// assert!(curve.earliest_at_most(1.0).is_some());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QualityCurve {
    label: String,
    points: Vec<CurvePoint>,
}

impl QualityCurve {
    /// Creates an empty curve with a display label.
    pub fn new(label: impl Into<String>) -> QualityCurve {
        QualityCurve {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// The curve's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends a sample. Samples must be pushed in nondecreasing cycle
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` goes backwards.
    pub fn push(&mut self, cycles: u64, normalized_runtime: f64, nrmse_percent: f64) {
        if let Some(last) = self.points.last() {
            assert!(cycles >= last.cycles, "curve samples must be time-ordered");
        }
        self.points.push(CurvePoint {
            cycles,
            normalized_runtime,
            nrmse_percent,
        });
    }

    /// All samples in time order.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the curve has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Error of the last sample (the error at completion).
    pub fn final_error(&self) -> Option<f64> {
        self.points.last().map(|p| p.nrmse_percent)
    }

    /// Normalized runtime of the last sample (total overhead to reach the
    /// precise result, ≥ 1 for WN variants).
    pub fn final_runtime(&self) -> Option<f64> {
        self.points.last().map(|p| p.normalized_runtime)
    }

    /// The earliest sample whose error is at most `target_percent` — "how
    /// soon is an acceptable output available?".
    pub fn earliest_at_most(&self, target_percent: f64) -> Option<CurvePoint> {
        self.points
            .iter()
            .copied()
            .find(|p| p.nrmse_percent <= target_percent)
    }

    /// The error if execution were halted after `cycles` — the error of
    /// the most recent sample at or before that time (100 % before any
    /// sample exists).
    pub fn error_at_cycles(&self, cycles: u64) -> f64 {
        let mut err = 100.0;
        for p in &self.points {
            if p.cycles <= cycles {
                err = p.nrmse_percent;
            } else {
                break;
            }
        }
        err
    }

    /// True when error never increases from sample to sample (a property
    /// of provisioned/SWP curves at subword boundaries).
    pub fn is_monotone_nonincreasing(&self) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].nrmse_percent <= w[0].nrmse_percent + 1e-9)
    }

    /// Renders the curve as CSV (`cycles,normalized_runtime,nrmse_percent`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cycles,normalized_runtime,nrmse_percent\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{:.6},{:.6}\n",
                p.cycles, p.normalized_runtime, p.nrmse_percent
            ));
        }
        out
    }
}

impl fmt::Display for QualityCurve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "quality curve `{}` ({} points)",
            self.label,
            self.points.len()
        )?;
        for p in &self.points {
            writeln!(
                f,
                "  t={:>12} cycles  x={:>6.3}  err={:>9.4}%",
                p.cycles, p.normalized_runtime, p.nrmse_percent
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_curve() -> QualityCurve {
        let mut c = QualityCurve::new("test");
        c.push(100, 0.25, 20.0);
        c.push(200, 0.50, 5.0);
        c.push(400, 1.00, 1.0);
        c.push(800, 2.00, 0.0);
        c
    }

    #[test]
    fn final_values() {
        let c = sample_curve();
        assert_eq!(c.final_error(), Some(0.0));
        assert_eq!(c.final_runtime(), Some(2.0));
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }

    #[test]
    fn earliest_at_most() {
        let c = sample_curve();
        assert_eq!(c.earliest_at_most(10.0).unwrap().cycles, 200);
        assert_eq!(c.earliest_at_most(0.0).unwrap().cycles, 800);
        assert_eq!(c.earliest_at_most(100.0).unwrap().cycles, 100);
        assert!(c.earliest_at_most(-1.0).is_none());
    }

    #[test]
    fn error_at_cycles_steps() {
        let c = sample_curve();
        assert_eq!(c.error_at_cycles(50), 100.0, "no output yet");
        assert_eq!(c.error_at_cycles(100), 20.0);
        assert_eq!(c.error_at_cycles(399), 5.0);
        assert_eq!(c.error_at_cycles(10_000), 0.0);
    }

    #[test]
    fn monotonicity_check() {
        assert!(sample_curve().is_monotone_nonincreasing());
        let mut c = QualityCurve::new("bumpy");
        c.push(1, 0.1, 1.0);
        c.push(2, 0.2, 3.0);
        assert!(!c.is_monotone_nonincreasing());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_time_travel() {
        let mut c = QualityCurve::new("bad");
        c.push(10, 0.1, 1.0);
        c.push(5, 0.05, 1.0);
    }

    #[test]
    fn csv_and_display() {
        let c = sample_curve();
        let csv = c.to_csv();
        assert!(csv.starts_with("cycles,"));
        assert_eq!(csv.lines().count(), 5);
        let text = c.to_string();
        assert!(text.contains("test"));
        assert!(text.contains("err="));
    }

    #[test]
    fn empty_curve() {
        let c = QualityCurve::new("empty");
        assert!(c.is_empty());
        assert_eq!(c.final_error(), None);
        assert_eq!(c.error_at_cycles(100), 100.0);
        assert!(c.is_monotone_nonincreasing());
    }
}
