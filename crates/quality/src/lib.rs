//! # wn-quality — output-quality metrics and runtime–quality curves
//!
//! The paper's quality metric is **Normalized Root Mean Square Error**
//! (NRMSE, §IV), reported as a percentage and plotted against normalized
//! runtime to form the runtime–quality trade-off curves of Fig. 9. This
//! crate implements NRMSE and companion metrics ([`metrics`]) and the
//! [`QualityCurve`] container used by every experiment.
//!
//! ```
//! use wn_quality::metrics::nrmse_percent;
//! let golden = [10.0, 20.0, 30.0];
//! let approx = [10.0, 20.0, 30.0];
//! assert_eq!(nrmse_percent(&golden, &approx), Some(0.0));
//! ```

pub mod curve;
pub mod metrics;

pub use curve::{CurvePoint, QualityCurve};
pub use metrics::{mae, max_abs_error, nrmse_percent, rmse};
