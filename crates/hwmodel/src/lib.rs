//! # wn-hwmodel — analytical area, timing and power models (paper §V-D)
//!
//! The paper synthesizes its modified adder with Synopsys DC at TSMC 65 nm
//! and reports four headline numbers:
//!
//! * adder **Fmax = 1.12 GHz** — orders of magnitude above the 24 MHz
//!   core clock, so the carry-chain muxes cost no performance,
//! * **+0.02 %** core area for the SWV muxes,
//! * **+4 %** adder power,
//! * the 16-entry memo table occupies **40.5 %** of a 16×16 multiplier
//!   (CACTI).
//!
//! Without the proprietary tool flow we provide a transparent gate-level
//! analytical model: unit areas/delays/energies for a generic 65 nm
//! standard-cell library ([`GateLibrary`]), structural models of the
//! ripple-carry SWV adder ([`SwvAdderModel`]), the iterative multiplier
//! and the memo table ([`MemoTableModel`]), and a report
//! ([`AreaPowerReport`]) producing the same four quantities. The library
//! constants are calibrated so the defaults land near the paper's numbers
//! — the *model structure* (what scales with what) is the contribution,
//! and every constant is documented and overridable.

use std::fmt;

/// Unit characteristics of a generic 65 nm standard-cell library.
///
/// One *gate equivalent* (GE) is the area of a 2-input NAND.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateLibrary {
    /// Area of one gate equivalent in µm² (65 nm: ≈1.44 µm²).
    pub ge_um2: f64,
    /// Full-adder cell: area in GE.
    pub full_adder_ge: f64,
    /// Full-adder carry path delay in ps.
    pub full_adder_delay_ps: f64,
    /// 2:1 mux: area in GE.
    pub mux2_ge: f64,
    /// 2:1 mux delay in ps.
    pub mux2_delay_ps: f64,
    /// Switching energy per GE per toggle, in femtojoules.
    pub fj_per_ge_toggle: f64,
    /// SRAM bit-cell area in GE (6T cell ≈ 0.6 GE of logic area with
    /// array efficiency folded in).
    pub sram_bit_ge: f64,
}

impl Default for GateLibrary {
    fn default() -> GateLibrary {
        GateLibrary {
            ge_um2: 1.44,
            full_adder_ge: 4.5,
            full_adder_delay_ps: 24.0,
            mux2_ge: 2.2,
            mux2_delay_ps: 18.0,
            fj_per_ge_toggle: 0.8,
            sram_bit_ge: 0.6,
        }
    }
}

/// Structural model of the 32-bit ripple adder with SWV carry-chain muxes
/// (paper Fig. 8: one mux after every four full adders — 7 muxes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwvAdderModel {
    /// The cell library.
    pub lib: GateLibrary,
    /// Adder width in bits.
    pub width: u32,
    /// Full adders between mux insertion points (4 in the paper).
    pub mux_spacing: u32,
    /// Fraction of cycles in which a mux output toggles, relative to the
    /// adder's own switching activity. Muxes sit on the carry chain and
    /// only a fraction of carries cross lane boundaries each cycle.
    pub mux_activity: f64,
    /// Area of the whole Cortex-M0+-class core in GE (core + NVM
    /// controller + peripherals), the denominator of the paper's 0.02 %.
    pub core_ge: f64,
}

impl Default for SwvAdderModel {
    fn default() -> SwvAdderModel {
        SwvAdderModel {
            lib: GateLibrary::default(),
            width: 32,
            mux_spacing: 4,
            mux_activity: 0.33,
            core_ge: 80_000.0,
        }
    }
}

impl SwvAdderModel {
    /// Number of carry-chain muxes (7 for a 32-bit adder with spacing 4).
    pub fn mux_count(&self) -> u32 {
        self.width / self.mux_spacing - 1
    }

    /// Worst-case carry-path delay in picoseconds (full ripple through
    /// every adder and mux).
    pub fn critical_path_ps(&self) -> f64 {
        self.width as f64 * self.lib.full_adder_delay_ps
            + self.mux_count() as f64 * self.lib.mux2_delay_ps
    }

    /// Maximum operating frequency in GHz.
    pub fn fmax_ghz(&self) -> f64 {
        1000.0 / self.critical_path_ps()
    }

    /// Base adder area in GE (without muxes).
    pub fn adder_ge(&self) -> f64 {
        self.width as f64 * self.lib.full_adder_ge
    }

    /// Mux area in GE.
    pub fn mux_ge(&self) -> f64 {
        self.mux_count() as f64 * self.lib.mux2_ge
    }

    /// Area overhead of the muxes relative to the whole core, in percent
    /// (the paper's 0.02 %).
    pub fn core_area_overhead_percent(&self) -> f64 {
        100.0 * self.mux_ge() / self.core_ge
    }

    /// Power overhead of the muxes relative to the unmodified adder, in
    /// percent (the paper's 4 %): area ratio weighted by mux switching
    /// activity.
    pub fn adder_power_overhead_percent(&self) -> f64 {
        100.0 * (self.mux_ge() * self.mux_activity) / self.adder_ge()
    }

    /// Dynamic energy per 32-bit addition in femtojoules (adder + active
    /// muxes; activity factor 0.5 on the adder cells).
    pub fn energy_per_add_fj(&self) -> f64 {
        let adder = self.adder_ge() * 0.5;
        let mux = self.mux_ge() * self.mux_activity;
        (adder + mux) * self.lib.fj_per_ge_toggle
    }
}

/// Structural model of the iterative multiplier and its memoization table
/// (§V-E: the 16-entry table occupies 40.5 % of a 16×16 multiplier).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoTableModel {
    /// The cell library.
    pub lib: GateLibrary,
    /// Table entries (16 in the paper).
    pub entries: u32,
    /// Tag bits per entry (paper: concatenated upper operand bits — 28
    /// for the 16-bit case).
    pub tag_bits: u32,
    /// Data bits per entry (the 32-bit product).
    pub data_bits: u32,
    /// Comparator + decoder logic per entry, in GE.
    pub control_ge_per_entry: f64,
}

impl Default for MemoTableModel {
    fn default() -> MemoTableModel {
        MemoTableModel {
            lib: GateLibrary::default(),
            entries: 16,
            tag_bits: 28,
            data_bits: 32,
            control_ge_per_entry: 12.0,
        }
    }
}

impl MemoTableModel {
    /// Table area in GE (storage + per-entry control).
    pub fn area_ge(&self) -> f64 {
        let bits = self.entries as f64 * (self.tag_bits + self.data_bits) as f64;
        bits * self.lib.sram_bit_ge + self.entries as f64 * self.control_ge_per_entry
    }

    /// Area of a combinational 16×16 array multiplier in GE — the
    /// reference the paper sizes the table against (a 16×16 array has
    /// 256 partial-product AND gates and ≈240 full adders, plus wiring
    /// overhead).
    pub fn multiplier_ge(&self) -> f64 {
        let ands = 256.0 * 1.5;
        let adders = 240.0 * self.lib.full_adder_ge;
        1.3 * (ands + adders)
    }

    /// Table area as a fraction of the multiplier, in percent (the
    /// paper's 40.5 %).
    pub fn area_vs_multiplier_percent(&self) -> f64 {
        100.0 * self.area_ge() / self.multiplier_ge()
    }
}

/// The §V-D report: every quantity the paper states, with the paper's
/// value alongside for the experiment log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaPowerReport {
    /// Modeled adder Fmax in GHz (paper: 1.12 GHz).
    pub fmax_ghz: f64,
    /// Mux area overhead vs the core in percent (paper: 0.02 %).
    pub core_area_overhead_percent: f64,
    /// Mux power overhead vs the adder in percent (paper: 4 %).
    pub adder_power_overhead_percent: f64,
    /// Memo table area vs a 16×16 multiplier in percent (paper: 40.5 %).
    pub memo_vs_multiplier_percent: f64,
}

impl AreaPowerReport {
    /// Builds the report from the default models.
    pub fn from_defaults() -> AreaPowerReport {
        AreaPowerReport::build(&SwvAdderModel::default(), &MemoTableModel::default())
    }

    /// Builds the report from explicit models.
    pub fn build(adder: &SwvAdderModel, memo: &MemoTableModel) -> AreaPowerReport {
        AreaPowerReport {
            fmax_ghz: adder.fmax_ghz(),
            core_area_overhead_percent: adder.core_area_overhead_percent(),
            adder_power_overhead_percent: adder.adder_power_overhead_percent(),
            memo_vs_multiplier_percent: memo.area_vs_multiplier_percent(),
        }
    }

    /// The paper's reported values, for side-by-side comparison.
    pub fn paper_values() -> AreaPowerReport {
        AreaPowerReport {
            fmax_ghz: 1.12,
            core_area_overhead_percent: 0.02,
            adder_power_overhead_percent: 4.0,
            memo_vs_multiplier_percent: 40.5,
        }
    }
}

impl fmt::Display for AreaPowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "adder Fmax:                {:>7.2} GHz", self.fmax_ghz)?;
        writeln!(
            f,
            "mux area vs core:          {:>7.3} %",
            self.core_area_overhead_percent
        )?;
        writeln!(
            f,
            "mux power vs adder:        {:>7.2} %",
            self.adder_power_overhead_percent
        )?;
        writeln!(
            f,
            "memo table vs multiplier:  {:>7.1} %",
            self.memo_vs_multiplier_percent
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mux_count_matches_fig8() {
        let m = SwvAdderModel::default();
        assert_eq!(m.mux_count(), 7, "Fig. 8: a total of 7 muxes");
    }

    #[test]
    fn fmax_far_above_core_clock() {
        let m = SwvAdderModel::default();
        let fmax = m.fmax_ghz();
        // Within a factor ~1.3 of the paper's 1.12 GHz and vastly above
        // 24 MHz.
        assert!(fmax > 0.8 && fmax < 1.5, "fmax = {fmax}");
        assert!(fmax * 1000.0 > 24.0 * 10.0);
    }

    #[test]
    fn area_overhead_matches_magnitude() {
        let m = SwvAdderModel::default();
        let pct = m.core_area_overhead_percent();
        assert!(pct > 0.005 && pct < 0.08, "area overhead = {pct}%");
    }

    #[test]
    fn power_overhead_near_four_percent() {
        let m = SwvAdderModel::default();
        let pct = m.adder_power_overhead_percent();
        assert!(pct > 2.0 && pct < 6.0, "power overhead = {pct}%");
    }

    #[test]
    fn memo_table_near_forty_percent_of_multiplier() {
        let m = MemoTableModel::default();
        let pct = m.area_vs_multiplier_percent();
        assert!(pct > 30.0 && pct < 55.0, "memo area = {pct}%");
    }

    #[test]
    fn memo_area_scales_with_entries() {
        let small = MemoTableModel {
            entries: 16,
            ..MemoTableModel::default()
        };
        let big = MemoTableModel {
            entries: 64,
            ..MemoTableModel::default()
        };
        assert!(big.area_ge() > 3.0 * small.area_ge());
    }

    #[test]
    fn report_builds_and_displays() {
        let r = AreaPowerReport::from_defaults();
        let text = r.to_string();
        assert!(text.contains("Fmax"));
        let p = AreaPowerReport::paper_values();
        assert!((p.fmax_ghz - 1.12).abs() < 1e-9);
    }

    #[test]
    fn wider_spacing_fewer_muxes_faster() {
        let fine = SwvAdderModel {
            mux_spacing: 4,
            ..SwvAdderModel::default()
        };
        let coarse = SwvAdderModel {
            mux_spacing: 8,
            ..SwvAdderModel::default()
        };
        assert!(coarse.mux_count() < fine.mux_count());
        assert!(coarse.fmax_ghz() > fine.fmax_ghz());
        assert!(coarse.energy_per_add_fj() < fine.energy_per_add_fj());
    }
}
